// FigPool cells for the sshd and pop3 workloads: the gatepool scaling
// experiment applied to the other two application studies. Each cell
// serves `total` sessions with `conns` concurrent clients, exactly like
// the httpd cell, so the three apps' ladders are comparable: mono (no
// isolation), the per-connection partitioned build (one worker sthread
// plus per-connection gate instantiations), and the pooled build (zero
// sthread creations on the serving path).

package bench

import (
	"bytes"
	"crypto/rsa"
	"fmt"
	"sort"
	"sync"
	"time"

	"wedge/internal/dnsd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/pop3"
	"wedge/internal/serve"
	"wedge/internal/sshd"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// CellStats is one cell's measurement: throughput plus the latency
// distribution of the sessions behind it. Throughput alone hides tail
// collapse — a variant can hold its rate while its slowest sessions
// degrade by an order of magnitude — so every cell reports p50/p99 too.
type CellStats struct {
	RPS float64
	P50 time.Duration // median session latency
	P99 time.Duration // tail session latency
}

// percentile is the nearest-rank percentile of a sorted sample.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// pooledRuntime is the serve-runtime surface every pooled server
// delegates; the cells use it to apply the PoolOpts knobs uniformly.
type pooledRuntime interface {
	Serve(*netsim.Listener) error
	Drain()
	Undrain()
	Snapshot() serve.Snapshot
	SetQueue(int)
	SetAutoSlots(bool)
	Close() error
}

// pooledCellServer wires a pooled server into the harness: the runtime
// owns the accept loop, the -queue and -autoslots knobs are applied
// before serving, and when opts.Drain is set a drain/undrain cycle runs
// at teardown, verified quiescent via *drainErr (the close hook cannot
// return an error).
func pooledCellServer(srv pooledRuntime, opts PoolOpts, drainErr *error) cellServer {
	if opts.Queue != 0 {
		srv.SetQueue(opts.Queue)
	}
	if opts.AutoSlots {
		srv.SetAutoSlots(true)
	}
	return cellServer{
		loop: func(l *netsim.Listener) { srv.Serve(l) },
		close: func() {
			if opts.Drain {
				srv.Drain()
				if s := srv.Snapshot(); s.State != serve.StateDraining || s.Inflight != 0 || s.Pool.Busy != 0 {
					*drainErr = fmt.Errorf("drain left %s state=%v inflight=%d busy=%d",
						s.App, s.State, s.Inflight, s.Pool.Busy)
				}
				srv.Undrain()
			}
			srv.Close()
		},
	}
}

// cellServer is what a cell's build function hands the harness: a
// per-connection entry (driven by the harness's default accept loop) or
// a loop that owns accepting itself (the pooled variants hand the
// listener to serve.Runtime.Serve), plus optional teardown.
type cellServer struct {
	serve func(*netsim.Conn) error // per-connection entry (default loop)
	loop  func(*netsim.Listener)   // optional: the server owns the accept loop
	close func()                   // optional teardown
}

// benchPremain installs the realistic pre-main image (figPoolImage
// touched pages) on a booted app.
func benchPremain(app *sthread.App) {
	app.Premain(func(init *kernel.Task) {
		base, err := init.Mmap(figPoolImage, vm.PermRW)
		if err != nil {
			panic(err)
		}
		for off := 0; off < figPoolImage; off += vm.PageSize {
			init.AS.Store64(base+vm.Addr(off), uint64(off))
		}
	})
}

// driveCell is the load phase shared by the stream and packet
// harnesses: conns client goroutines drive total sessions, retrying
// failures as a load generator would (so transient shedding charges the
// variant's throughput instead of aborting the experiment), timing each
// session end-to-end including its retries — the latency the client
// experienced, not the latency of the attempt that happened to succeed.
func driveCell(k *kernel.Kernel, request func(k *kernel.Kernel) error,
	conns, total int) (CellStats, error) {
	perClient := total / conns
	errs := make(chan error, conns)
	lats := make([][]time.Duration, conns)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		lats[c] = make([]time.Duration, 0, perClient)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				err := request(k)
				for retry := 0; err != nil && retry < 8; retry++ {
					err = request(k)
				}
				if err != nil {
					errs <- err
					return
				}
				lats[c] = append(lats[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return CellStats{}, err
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return CellStats{
		RPS: float64(total) / elapsed.Seconds(),
		P50: percentile(all, 0.50),
		P99: percentile(all, 0.99),
	}, nil
}

// poolCellHarness runs one concurrently-dispatching server cell: boot a
// kernel with the realistic pre-main image, serve connections until the
// drivers are done, and drive total sessions with conns retrying
// clients, returning sessions/second and latency percentiles. The
// accept loop runs until the listener is closed (after every client
// finishes) rather than counting accepts: retried sessions consume
// extra accepts, and a fixed accept budget would strand the retry — and
// hang the cell — whenever any accepted session failed.
func poolCellHarness(setup func(k *kernel.Kernel) error,
	build func(root *sthread.Sthread) (cellServer, error),
	addr string, request func(k *kernel.Kernel) error,
	conns, total int) (CellStats, error) {
	k := kernel.New()
	if err := setup(k); err != nil {
		return CellStats{}, err
	}
	app := sthread.Boot(k)
	benchPremain(app)

	ready := make(chan *netsim.Listener, 1)
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := build(root)
			if err != nil {
				panic(err)
			}
			if srv.close != nil {
				defer srv.close()
			}
			l, err := root.Task.Listen(addr)
			if err != nil {
				panic(err)
			}
			ready <- l
			if srv.loop != nil {
				srv.loop(l) // e.g. serve.Runtime.Serve: returns at close
				return
			}
			var wg sync.WaitGroup
			for {
				c, err := l.Accept()
				if err != nil {
					break // listener closed: the drivers are done
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					srv.serve(c)
				}()
			}
			wg.Wait()
		})
	}()
	l := <-ready

	stats, derr := driveCell(k, request, conns, total)
	l.Close()
	if derr != nil {
		return CellStats{}, derr
	}
	if err := <-done; err != nil {
		return CellStats{}, err
	}
	return stats, nil
}

// packetCellServer is the datagram analogue of cellServer: datagram
// servers always own their packet loop (there is no accept to
// dispatch), so only the loop and teardown vary.
type packetCellServer struct {
	loop  func(*netsim.PacketConn)
	close func()
}

// packetPoolCellHarness is poolCellHarness for datagram cells: the
// server binds a packet socket instead of a listener, and the loop runs
// until the socket closes.
func packetPoolCellHarness(build func(root *sthread.Sthread) (packetCellServer, error),
	addr string, request func(k *kernel.Kernel) error,
	conns, total int) (CellStats, error) {
	k := kernel.New()
	app := sthread.Boot(k)
	benchPremain(app)

	ready := make(chan *netsim.PacketConn, 1)
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := build(root)
			if err != nil {
				panic(err)
			}
			if srv.close != nil {
				defer srv.close()
			}
			pc, err := root.Task.ListenPacket(addr)
			if err != nil {
				panic(err)
			}
			ready <- pc
			srv.loop(pc)
		})
	}()
	pc := <-ready

	stats, derr := driveCell(k, request, conns, total)
	pc.Close()
	if derr != nil {
		return CellStats{}, derr
	}
	if err := <-done; err != nil {
		return CellStats{}, err
	}
	return stats, nil
}

// sshdPoolCell measures one sshd variant: a session is the host-key
// handshake (one RSA signature — the load the pool spreads), a password
// login, and exit.
func sshdPoolCell(variant string, conns, total, poolSlots int, opts PoolOpts) (CellStats, error) {
	hostKey, err := minissl.GenerateServerKey()
	if err != nil {
		return CellStats{}, err
	}
	users := []sshd.User{{Name: "alice", Password: "sesame", UID: 1000}}
	cfg := sshd.ServerConfig{HostKey: hostKey}

	var drainErr error
	stats, err := poolCellHarness(
		func(k *kernel.Kernel) error { return sshd.SetupUsers(k, users) },
		func(root *sthread.Sthread) (cellServer, error) {
			switch variant {
			case "mono":
				return cellServer{serve: sshd.NewMonolithic(root, cfg, sshd.MonoHooks{}).ServeConn}, nil
			case "wedge":
				srv, err := sshd.NewWedge(root, cfg, sshd.WedgeHooks{})
				if err != nil {
					return cellServer{}, err
				}
				return cellServer{serve: srv.ServeConn}, nil
			case "pooled":
				srv, err := sshd.NewPooledWedge(root, cfg, poolSlots, sshd.WedgeHooks{})
				if err != nil {
					return cellServer{}, err
				}
				return pooledCellServer(srv, opts, &drainErr), nil
			}
			return cellServer{}, fmt.Errorf("unknown sshd variant %q", variant)
		},
		"sshd:22",
		func(k *kernel.Kernel) error {
			conn, err := k.Net.Dial("sshd:22")
			if err != nil {
				return err
			}
			defer conn.Close()
			c, err := sshd.NewClient(conn, &hostKey.PublicKey)
			if err != nil {
				return err
			}
			if err := c.AuthPassword("alice", "sesame"); err != nil {
				return err
			}
			return c.Exit()
		},
		conns, total)
	if err == nil {
		err = drainErr
	}
	if err != nil {
		return CellStats{}, fmt.Errorf("sshd %s c=%d: %w", variant, conns, err)
	}
	return stats, nil
}

// privsepPoolCell measures one privilege-separation build: a session is
// the host-key handshake, a password login, and exit — the same work as
// the sshd cell, so the §5.2 contrast (fork-per-connection monitor vs
// pooled monitor gates) is directly comparable to the Wedge ladder. The
// "privsep" variant forks one slave per connection and serves monitor
// requests over channel IPC; "pooled" runs the monitor interface as
// pooled recycled gates under the serve runtime.
func privsepPoolCell(variant string, conns, total, poolSlots int, opts PoolOpts) (CellStats, error) {
	hostKey, err := minissl.GenerateServerKey()
	if err != nil {
		return CellStats{}, err
	}
	users := []sshd.User{{Name: "alice", Password: "sesame", UID: 1000}}
	cfg := sshd.ServerConfig{HostKey: hostKey}

	var drainErr error
	stats, err := poolCellHarness(
		func(k *kernel.Kernel) error { return sshd.SetupUsers(k, users) },
		func(root *sthread.Sthread) (cellServer, error) {
			switch variant {
			case "privsep":
				srv, err := sshd.NewPrivsep(root, cfg, "", sshd.PrivsepHooks{})
				if err != nil {
					return cellServer{}, err
				}
				return cellServer{serve: srv.ServeConn}, nil
			case "pooled":
				srv, err := sshd.NewPooledPrivsep(root, cfg, poolSlots, sshd.WedgeHooks{})
				if err != nil {
					return cellServer{}, err
				}
				return pooledCellServer(srv, opts, &drainErr), nil
			}
			return cellServer{}, fmt.Errorf("unknown privsep variant %q", variant)
		},
		"sshd:22",
		func(k *kernel.Kernel) error {
			conn, err := k.Net.Dial("sshd:22")
			if err != nil {
				return err
			}
			defer conn.Close()
			c, err := sshd.NewClient(conn, &hostKey.PublicKey)
			if err != nil {
				return err
			}
			if err := c.AuthPassword("alice", "sesame"); err != nil {
				return err
			}
			return c.Exit()
		},
		conns, total)
	if err == nil {
		err = drainErr
	}
	if err != nil {
		return CellStats{}, fmt.Errorf("privsep %s c=%d: %w", variant, conns, err)
	}
	return stats, nil
}

// pop3PoolCell measures one pop3 variant: a session is login, one
// retrieval, and quit. No RSA is involved, so the cell isolates the pure
// partitioning overhead (sthread and gate creations per session) that
// the pool amortizes.
func pop3PoolCell(variant string, conns, total, poolSlots int, opts PoolOpts) (CellStats, error) {
	boxes := []pop3.Mailbox{
		{User: "alice", Password: "sesame", UID: 1000,
			Messages: []string{"From: bench\n\nmessage one", "From: bench\n\nmessage two"}},
	}

	var drainErr error
	stats, err := poolCellHarness(
		func(k *kernel.Kernel) error { return nil },
		func(root *sthread.Sthread) (cellServer, error) {
			switch variant {
			case "mono":
				srv, err := pop3.NewMonolithic(root, boxes, pop3.Hooks{})
				if err != nil {
					return cellServer{}, err
				}
				return cellServer{serve: srv.ServeConn}, nil
			case "wedge":
				srv, err := pop3.New(root, boxes, pop3.Hooks{})
				if err != nil {
					return cellServer{}, err
				}
				return cellServer{serve: srv.ServeConn}, nil
			case "pooled":
				srv, err := pop3.NewPooled(root, boxes, poolSlots, pop3.Hooks{})
				if err != nil {
					return cellServer{}, err
				}
				return pooledCellServer(srv, opts, &drainErr), nil
			}
			return cellServer{}, fmt.Errorf("unknown pop3 variant %q", variant)
		},
		"pop3:110",
		func(k *kernel.Kernel) error { return pop3BenchSession(k) },
		conns, total)
	if err == nil {
		err = drainErr
	}
	if err != nil {
		return CellStats{}, fmt.Errorf("pop3 %s c=%d: %w", variant, conns, err)
	}
	return stats, nil
}

// dnsdBenchIdle is the pooled dnsd cell's flow-expiry window. Datagram
// flows give their slots back only by idle expiry — there is no FIN —
// so the window is short enough that slots recycle under the cell's
// per-query principals, but long enough to be several wheel ticks.
const dnsdBenchIdle = 10 * time.Millisecond

// settlePacket waits for a packet runtime's last flows to expire:
// quiescence lags the final client by up to the idle window, and
// judging the drain check before the wheel has run would charge the
// variant a spurious failure.
func settlePacket(snap func() serve.Snapshot) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := snap()
		if s.Flows == 0 && s.Inflight == 0 && s.Pool.Busy == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("packet cell not quiescent: flows=%d inflight=%d busy=%d",
				s.Flows, s.Inflight, s.Pool.Busy)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// dnsdPoolCell measures one dnsd variant: a session is one signed query
// resolving a known name and verifying the signature. The "pooled"
// cell's sessions are fresh-source (every query a new principal, so the
// pooled build admits a new flow each time): its flows return their
// slots only by idle expiry, so that cell is exactly the datagram
// runtime's worst case — admission, worker invocation, gate call, and
// wheel-driven slot recycling all on the serving path — against the
// mono baseline that answers from one loop. The "pooled-reuse" cell is
// the complement: each client keeps one packet socket — one returning
// principal — for its whole run, so after the first query every session
// lands on a live flow lease (no admission, no scrub, no recycling) and
// consecutive same-principal ring entries take the scrub-skip path.
func dnsdPoolCell(variant string, conns, total, poolSlots int, opts PoolOpts) (CellStats, error) {
	key, err := minissl.GenerateServerKey()
	if err != nil {
		return CellStats{}, err
	}
	zone := []dnsd.Record{{Name: "www.example", Value: "192.0.2.80"}}

	var drainErr error
	stats, err := packetPoolCellHarness(
		func(root *sthread.Sthread) (packetCellServer, error) {
			switch variant {
			case "mono":
				srv, err := dnsd.NewMonolithic(key, zone)
				if err != nil {
					return packetCellServer{}, err
				}
				return packetCellServer{loop: func(pc *netsim.PacketConn) { srv.ServePackets(pc) }}, nil
			case "pooled", "pooled-reuse":
				slots := poolSlots
				autoSlots := opts.AutoSlots
				if variant == "pooled-reuse" {
					// A flow pins its slot for its lifetime, and a reuse
					// client's flow never idles: fewer slots than persistent
					// principals would park the surplus flows in Acquire
					// behind leases that never release. One slot per client,
					// and no AutoSlots resync to shrink it underneath them.
					slots = conns
					autoSlots = false
				}
				srv, err := dnsd.NewPooled(root, key, zone, dnsd.Config{
					Slots:       slots,
					IdleTimeout: dnsdBenchIdle,
				})
				if err != nil {
					return packetCellServer{}, err
				}
				if opts.Queue != 0 {
					srv.SetQueue(opts.Queue)
				}
				if autoSlots {
					srv.SetAutoSlots(true)
				}
				return packetCellServer{
					loop: func(pc *netsim.PacketConn) { srv.ServePackets(pc) },
					close: func() {
						if err := settlePacket(srv.Snapshot); err != nil {
							drainErr = err
						} else if opts.Drain {
							srv.Drain()
							if s := srv.Snapshot(); s.State != serve.StateDraining || s.Inflight != 0 || s.Pool.Busy != 0 {
								drainErr = fmt.Errorf("drain left %s state=%v inflight=%d busy=%d",
									s.App, s.State, s.Inflight, s.Pool.Busy)
							}
							srv.Undrain()
						}
						srv.Close()
					},
				}, nil
			}
			return packetCellServer{}, fmt.Errorf("unknown dnsd variant %q", variant)
		},
		"dns:53",
		dnsdBenchQuery(variant == "pooled-reuse", conns, &key.PublicKey),
		conns, total)
	if err == nil {
		err = drainErr
	}
	if err != nil {
		return CellStats{}, fmt.Errorf("dnsd %s c=%d: %w", variant, conns, err)
	}
	return stats, nil
}

// dnsdBenchQuery builds the per-session request for the dnsd cells: one
// signed query, answer verified. Fresh-principal cells dial a new packet
// socket per session; the reuse cell circulates up to conns sockets
// through a handoff channel, so every session after a socket's first
// arrives from a principal the server already holds a live flow for. A
// failed session's socket is closed, not recirculated — a datagram lost
// mid-exchange would desync the next session on that socket.
func dnsdBenchQuery(reuse bool, conns int, pub *rsa.PublicKey) func(k *kernel.Kernel) error {
	var idle chan *netsim.PacketConn
	if reuse {
		idle = make(chan *netsim.PacketConn, conns)
	}
	return func(k *kernel.Kernel) error {
		var pc *netsim.PacketConn
		if reuse {
			select {
			case pc = <-idle:
			default:
			}
		}
		if pc == nil {
			var err error
			if pc, err = k.Net.DialPacket(); err != nil {
				return err
			}
		}
		a, err := dnsd.Query(pc, "dns:53", "www.example")
		if err == nil && a.Status != dnsd.StatusNoError {
			err = fmt.Errorf("dnsd status %d, want NOERROR", a.Status)
		}
		if err == nil {
			err = a.Verify(pub)
		}
		if err != nil || !reuse {
			pc.Close()
			return err
		}
		idle <- pc
		return nil
	}
}

// pop3BenchSession drives one full POP3 session as a load-generator
// client.
func pop3BenchSession(k *kernel.Kernel) error {
	conn, err := k.Net.Dial("pop3:110")
	if err != nil {
		return err
	}
	return pop3SessionConn(conn)
}

// pop3SessionConn drives the same full session over an established
// connection (the cluster cells dial a front network rather than a
// kernel's own), closing it.
func pop3SessionConn(conn *netsim.Conn) error {
	defer conn.Close()
	r := newLineReader(conn)
	expect := func(prefix string) error {
		line, err := r.line()
		if err != nil {
			return err
		}
		if len(line) < len(prefix) || line[:len(prefix)] != prefix {
			return fmt.Errorf("pop3 bench: got %q, want %s...", line, prefix)
		}
		return nil
	}
	send := func(cmd string) error {
		_, err := conn.Write([]byte(cmd + "\r\n"))
		return err
	}
	if err := expect("+OK"); err != nil {
		return err
	}
	if err := send("USER alice"); err != nil {
		return err
	}
	if err := expect("+OK"); err != nil {
		return err
	}
	if err := send("PASS sesame"); err != nil {
		return err
	}
	if err := expect("+OK"); err != nil {
		return err
	}
	if err := send("RETR 1"); err != nil {
		return err
	}
	if err := expect("+OK"); err != nil {
		return err
	}
	// Read the message body through the terminating ".".
	for {
		line, err := r.line()
		if err != nil {
			return err
		}
		if line == "." {
			break
		}
	}
	if err := send("QUIT"); err != nil {
		return err
	}
	return expect("+OK")
}

// lineReader is a minimal CRLF line reader over a netsim connection.
// Unconsumed bytes live in buf[off:]; reads land in the buffer's spare
// capacity, so a steady request/response exchange costs one buffer for
// the life of the connection instead of an allocation per read.
type lineReader struct {
	conn *netsim.Conn
	buf  []byte
	off  int
}

func newLineReader(conn *netsim.Conn) *lineReader {
	return &lineReader{conn: conn, buf: make([]byte, 0, 512)}
}

func (l *lineReader) line() (string, error) {
	for {
		if i := bytes.IndexByte(l.buf[l.off:], '\n'); i >= 0 {
			line := l.buf[l.off : l.off+i]
			l.off += i + 1
			if n := len(line); n > 0 && line[n-1] == '\r' {
				line = line[:n-1]
			}
			return string(line), nil
		}
		if l.off > 0 {
			l.buf = l.buf[:copy(l.buf, l.buf[l.off:])]
			l.off = 0
		}
		if len(l.buf) == cap(l.buf) {
			grown := make([]byte, len(l.buf), 2*cap(l.buf))
			copy(grown, l.buf)
			l.buf = grown
		}
		n, err := l.conn.Read(l.buf[len(l.buf):cap(l.buf)])
		if err != nil {
			return "", err
		}
		l.buf = l.buf[:len(l.buf)+n]
	}
}
