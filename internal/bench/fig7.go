// Figure 7: the cost of creating and running each primitive, measured as
// the paper measures it — "the time elapsed between requesting the
// creation of an sthread whose code immediately calls exit and the
// continuation of execution in the sthread's parent", with the
// originating process of minimal size.
//
// The paper's shape: pthread cheapest; recycled callgates close to
// pthreads (two futex operations); sthread, callgate and fork clustered
// together, roughly 8x a pthread; recycled roughly 8x cheaper than a full
// callgate.

package bench

import (
	"wedge/internal/kernel"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// Fig7Iters is the default measurement iteration count.
const Fig7Iters = 300

// Fig7 measures the five bars.
func Fig7(iters int) ([]Result, error) {
	if iters <= 0 {
		iters = Fig7Iters
	}
	var results []Result
	app := sthread.Boot(kernel.New())
	// Give the process a realistic pre-main image: the pristine snapshot
	// of a dynamically linked server holds loader and library state, and
	// duplicating its page-table entries is precisely the cost Figure 7
	// charges to sthread creation and fork (§4.1). An empty image would
	// make sthreads artificially cheap.
	app.Premain(func(init *kernel.Task) {
		base, err := init.Mmap(1<<20, vm.PermRW)
		if err != nil {
			panic(err)
		}
		for off := 0; off < 1<<20; off += vm.PageSize {
			init.AS.Store64(base+vm.Addr(off), uint64(off)) // touch every page
		}
	})
	err := app.Main(func(root *sthread.Sthread) {
		noopBody := func(*sthread.Sthread, vm.Addr) vm.Addr { return 0 }
		noopGate := sthread.GateFunc(func(*sthread.Sthread, vm.Addr, vm.Addr) vm.Addr { return 0 })

		// pthread: shared address space, no resource copying.
		d := timeOp(iters, func() {
			t, err := root.Task.SpawnPthread(func(*kernel.Task) {})
			if err != nil {
				panic(err)
			}
			t.Wait()
		})
		results = append(results, Result{
			Experiment: "fig7", Name: "pthread", Value: us(d), Unit: "us",
			PaperValue: 8, PaperUnit: "us",
		})

		// recycled callgate: one futex round trip per call.
		rec, err := root.NewRecycled("noop", policy.New(), noopGate, 0)
		if err != nil {
			panic(err)
		}
		d = timeOp(iters, func() {
			if _, err := rec.Call(root, 0); err != nil {
				panic(err)
			}
		})
		rec.Close()
		results = append(results, Result{
			Experiment: "fig7", Name: "recycled", Value: us(d), Unit: "us",
			PaperValue: 8, PaperUnit: "us",
		})

		// sthread: pristine COW clone plus policy-driven grants.
		d = timeOp(iters, func() {
			c, err := root.Create(policy.New(), noopBody, 0)
			if err != nil {
				panic(err)
			}
			root.Join(c)
		})
		results = append(results, Result{
			Experiment: "fig7", Name: "sthread", Value: us(d), Unit: "us",
			PaperValue: 65, PaperUnit: "us",
		})

		// callgate: sthread creation per invocation, measured from a
		// caller sthread that holds the gate.
		callerSC := policy.New()
		callerSC.GateAdd(noopGate, policy.New(), 0, "noop")
		spec := callerSC.Gates[0]
		var perCall vm.Addr
		caller, err := root.Create(callerSC, func(s *sthread.Sthread, _ vm.Addr) vm.Addr {
			d := timeOp(iters, func() {
				if _, err := s.CallGate(spec, nil, 0); err != nil {
					panic(err)
				}
			})
			return vm.Addr(d.Nanoseconds())
		}, 0)
		if err != nil {
			panic(err)
		}
		perCall, fault := root.Join(caller)
		if fault != nil {
			panic(fault)
		}
		results = append(results, Result{
			Experiment: "fig7", Name: "callgate", Value: float64(perCall) / 1e3, Unit: "us",
			PaperValue: 65, PaperUnit: "us",
		})

		// fork: full page-table and descriptor-table duplication.
		d = timeOp(iters, func() {
			t, err := root.Task.Fork(func(*kernel.Task) {})
			if err != nil {
				panic(err)
			}
			t.Wait()
		})
		results = append(results, Result{
			Experiment: "fig7", Name: "fork", Value: us(d), Unit: "us",
			PaperValue: 65, PaperUnit: "us",
		})
	})
	return results, err
}
