package bench

import (
	"fmt"
	"strings"
	"testing"
)

// TestFig7Shape asserts the orderings Figure 7 reports: pthread and
// recycled callgates are the cheap pair; sthread, callgate, and fork the
// expensive cluster; recycled is several times cheaper than a full
// callgate.
func TestFig7Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing shape distorted by race-detector instrumentation")
	}
	results, err := Fig7(100)
	if err != nil {
		t.Fatal(err)
	}
	v := map[string]float64{}
	for _, r := range results {
		v[r.Name] = r.Value
	}
	for _, name := range []string{"pthread", "recycled", "sthread", "callgate", "fork"} {
		if v[name] <= 0 {
			t.Fatalf("%s not measured: %v", name, v)
		}
	}
	if !(v["pthread"] < v["sthread"]) {
		t.Errorf("pthread (%f) !< sthread (%f)", v["pthread"], v["sthread"])
	}
	if !(v["recycled"] < v["callgate"]) {
		t.Errorf("recycled (%f) !< callgate (%f)", v["recycled"], v["callgate"])
	}
	// The paper's recycled gates are ~8x cheaper than callgates; insist on
	// at least 2x under simulation noise.
	if v["callgate"]/v["recycled"] < 2 {
		t.Errorf("callgate/recycled ratio = %.2f, want >= 2", v["callgate"]/v["recycled"])
	}
	// sthread, callgate and fork are one cluster: within ~4x of each other.
	cluster := []float64{v["sthread"], v["callgate"], v["fork"]}
	min, max := cluster[0], cluster[0]
	for _, x := range cluster {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if max/min > 6 {
		t.Errorf("sthread/callgate/fork spread %.1fx too wide: %v", max/min, cluster)
	}
}

// TestFig8Shape: malloc < tag_new(warm) < mmap, and cold tag_new costs at
// least as much as warm.
func TestFig8Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing shape distorted by race-detector instrumentation")
	}
	results, err := Fig8(500)
	if err != nil {
		t.Fatal(err)
	}
	v := map[string]float64{}
	for _, r := range results {
		v[r.Name] = r.Value
	}
	if !(v["malloc"] < v["tag_new (reuse)"]) {
		t.Errorf("malloc (%f) !< warm tag_new (%f)", v["malloc"], v["tag_new (reuse)"])
	}
	if !(v["tag_new (reuse)"] < v["mmap"]) {
		t.Errorf("warm tag_new (%f) !< mmap (%f)", v["tag_new (reuse)"], v["mmap"])
	}
	if !(v["tag_new (reuse)"] < v["tag_new (cold)"]) {
		t.Errorf("warm tag_new (%f) !< cold tag_new (%f)", v["tag_new (reuse)"], v["tag_new (cold)"])
	}
}

// TestFig9Shape: native < pin < cblog for every workload; ssh has the
// smallest cb-log/Pin ratio and h264ref the largest.
func TestFig9Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing shape distorted by race-detector instrumentation")
	}
	if testing.Short() {
		t.Skip("fig9 takes seconds")
	}
	rows, results, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 || len(results) != 36 {
		t.Fatalf("rows=%d results=%d", len(rows), len(results))
	}
	ratios := map[string]float64{}
	for _, row := range rows {
		if !(row.Native < row.CBLog) {
			t.Errorf("%s: native (%v) !< cblog (%v)", row.Workload, row.Native, row.CBLog)
		}
		if !(row.Pin < row.CBLog) {
			t.Errorf("%s: pin (%v) !< cblog (%v)", row.Workload, row.Pin, row.CBLog)
		}
		if row.TraceRecords == 0 {
			t.Errorf("%s: empty trace", row.Workload)
		}
		ratios[row.Workload] = row.Ratio
	}
	// The paper's class separation: call-diverse protocol and playout
	// code (ssh 2.4x, gobmk 8.7x, apache 8.8x in the paper) sits well
	// below the dense compute kernels (quantum 29x ... h264ref 90x).
	// Within-class ordering depends on per-access microarchitectural
	// costs the simulator flattens, so only the class gap is asserted;
	// see EXPERIMENTS.md.
	low := []string{"ssh", "gobmk"}
	high := []string{"quantum", "hmmer", "sjeng", "bzip2", "h264ref"}
	for _, l := range low {
		for _, h := range high {
			if ratios[l] >= ratios[h] {
				t.Errorf("%s ratio %.1f >= %s ratio %.1f; class separation broken",
					l, ratios[l], h, ratios[h])
			}
		}
	}
	// apache and mcf land between the two classes' floors.
	for _, mid := range []string{"apache", "mcf"} {
		if ratios[mid] <= ratios["gobmk"]*0.9 {
			t.Errorf("%s ratio %.1f below gobmk %.1f", mid, ratios[mid], ratios["gobmk"])
		}
	}
	// The global minimum is protocol-shaped code, as in the paper.
	for name, r := range ratios {
		if name == "ssh" || name == "gobmk" {
			continue
		}
		if r <= ratios["ssh"] || r <= ratios["gobmk"] {
			t.Errorf("%s ratio %.1f not above the protocol class (ssh %.1f, gobmk %.1f)",
				name, r, ratios["ssh"], ratios["gobmk"])
		}
	}
}

// TestTable2ApacheShape: vanilla beats wedge; recycled beats wedge; and
// the wedge-vs-vanilla gap is wider on the cached workload than the
// uncached one (the paper's 19%-vs-53% asymmetry).
func TestTable2ApacheShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 takes seconds")
	}
	// Each cell is the best across interleaved rounds of 40 connections.
	// The cells complete in single-digit milliseconds, so scheduler noise
	// — including CPU contention from other test packages when the whole
	// module runs in parallel — is a large fraction of one run.
	// Interleaving the cells round-robin spreads any contention across
	// all variants, and best-of-N recovers the underlying rate; the
	// assertion retries once against a fresh measurement before failing.
	measure := func() (map[string]float64, error) {
		cells := map[string]float64{}
		for round := 0; round < 3; round++ {
			for _, variant := range []string{"vanilla", "wedge", "recycled"} {
				for _, cached := range []bool{true, false} {
					rps, err := Table2Apache(variant, cached, 40)
					if err != nil {
						return nil, fmt.Errorf("%s cached=%v: %w", variant, cached, err)
					}
					key := variant
					if cached {
						key += "+cache"
					}
					if rps > cells[key] {
						cells[key] = rps
					}
				}
			}
		}
		return cells, nil
	}
	check := func(cells map[string]float64) error {
		if !(cells["vanilla+cache"] > cells["wedge+cache"]) {
			return fmt.Errorf("vanilla cached (%f) !> wedge cached (%f)", cells["vanilla+cache"], cells["wedge+cache"])
		}
		if !(cells["vanilla"] > cells["wedge"]) {
			return fmt.Errorf("vanilla uncached (%f) !> wedge uncached (%f)", cells["vanilla"], cells["wedge"])
		}
		if !(cells["recycled+cache"] > cells["wedge+cache"]) {
			return fmt.Errorf("recycled cached (%f) !> wedge cached (%f)", cells["recycled+cache"], cells["wedge+cache"])
		}
		// The asymmetry: wedge/vanilla is worse (smaller) with caching
		// than without.
		cachedFrac := cells["wedge+cache"] / cells["vanilla+cache"]
		uncachedFrac := cells["wedge"] / cells["vanilla"]
		if !(cachedFrac < uncachedFrac) {
			return fmt.Errorf("cached fraction %.2f !< uncached fraction %.2f (paper: 0.19 vs 0.53)",
				cachedFrac, uncachedFrac)
		}
		return nil
	}
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var cells map[string]float64
		cells, err = measure()
		if err != nil {
			t.Fatal(err)
		}
		if err = check(cells); err == nil {
			return
		}
		t.Logf("attempt %d: %v (retrying; likely CPU contention)", attempt, err)
	}
	t.Error(err)
}

// TestTable2SSHShape: the wedge partitioning adds negligible latency —
// within 3x on login (paper: 2%) and within 2x on a bulk transfer under
// simulator noise.
func TestTable2SSHShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 takes seconds")
	}
	vLogin, vScp, err := Table2SSH("vanilla", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	wLogin, wScp, err := Table2SSH("wedge", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if wLogin > 5*vLogin && wLogin-vLogin > 50e6 {
		t.Errorf("wedge login %v vs vanilla %v: not negligible", wLogin, vLogin)
	}
	if wScp > 3*vScp && wScp-vScp > 100e6 {
		t.Errorf("wedge scp %v vs vanilla %v: not negligible", wScp, vScp)
	}
}

func TestMetrics(t *testing.T) {
	metrics, results, err := Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != 2 {
		t.Fatalf("metrics = %v", metrics)
	}
	for _, m := range metrics {
		if m.CallgateLines <= 0 || m.SthreadLines <= 0 {
			t.Fatalf("%s: zero line counts: %+v", m.App, m)
		}
		// The reproducible claim: privileged code is the minority.
		if m.PrivilegedPercent >= 60 {
			t.Errorf("%s: %.0f%% of partitioned code is privileged; expected a minority",
				m.App, m.PrivilegedPercent)
		}
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
}

func TestObjectCensus(t *testing.T) {
	results, err := ObjectCensus()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Name] = r.Value
	}
	if byName["apache trace heap objects"] < 1 || byName["apache trace globals"] < 1 {
		t.Fatalf("census too small: %v", byName)
	}
	if byName["apache request-path items"] < 2 {
		t.Fatalf("request path touches %v items", byName["apache request-path items"])
	}
}

func TestFormat(t *testing.T) {
	out := Format([]Result{
		{Experiment: "fig7", Name: "pthread", Value: 1.5, Unit: "us", PaperValue: 8, PaperUnit: "us"},
		{Experiment: "fig8", Name: "malloc", Value: 100, Unit: "ns"},
	})
	for _, want := range []string{"== fig7 ==", "pthread", "(paper: 8 us)", "== fig8 ==", "malloc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}
