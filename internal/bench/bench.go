// Package bench regenerates every figure and table of the paper's
// evaluation (§6) against the simulated substrate:
//
//	Figure 7 — creation/invocation latency of pthread, recycled callgate,
//	           sthread, callgate, and fork;
//	Figure 8 — malloc vs tag_new (warm and cold) vs mmap;
//	Figure 9 — native vs Pin vs cb-log run time for nine workloads;
//	Table 2  — Apache throughput (vanilla / Wedge / recycled callgates,
//	           with and without session caching) and OpenSSH latency
//	           (login and a 10 MB scp), vanilla vs Wedge;
//	§5 notes — partitioning metrics (privileged vs unprivileged code).
//
// Absolute numbers differ from the paper's 2008 testbed — the substrate
// is a simulator — but each experiment preserves the mechanical source of
// its result, so the orderings, ratios, and crossovers are comparable.
// EXPERIMENTS.md records paper-vs-measured for every row.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Result is one measured value.
type Result struct {
	Experiment string  `json:"experiment"` // "fig7", "fig8", "fig9", "table2", "metrics", "figpool"
	Name       string  `json:"name"`       // row/bar label
	Value      float64 `json:"value"`      // measured value
	Unit       string  `json:"unit"`       // "us", "ns", "ms", "req/s", "s", "lines", "ratio"
	// PaperValue is the figure the paper reports for the same label, for
	// side-by-side display. Zero when the paper gives no number.
	PaperValue float64 `json:"paper_value,omitempty"`
	PaperUnit  string  `json:"paper_unit,omitempty"`

	// Structured identity for machine consumers (the -json output CI
	// tracks trends from). Populated by experiments with a natural
	// app/variant/concurrency shape (FigPool); zero otherwise.
	App     string `json:"app,omitempty"`
	Variant string `json:"variant,omitempty"`
	Conns   int    `json:"conns,omitempty"` // concurrent connections
	// Metric distinguishes the rows a single cell emits: "rps"
	// (throughput), "p50", "p99" (session-latency percentiles —
	// throughput-only numbers hide tail collapse). Empty on experiments
	// that emit one row per label.
	Metric string `json:"metric,omitempty"`
	// Note marks a row as a recorded trajectory point rather than a live
	// benchmark: Compare ignores noted rows entirely (no ratio check, no
	// vanished-row flag) and Rebaseline preserves them verbatim. This is
	// how historical before/after pairs stay checked into BENCH_pool.json
	// without shaping the CI regression gate, whose runs use different
	// ladder shapes than the one-off measurements the notes record.
	Note string `json:"note,omitempty"`
}

func (r Result) String() string {
	s := fmt.Sprintf("%-10s %-28s %12.3f %-6s", r.Experiment, r.Name, r.Value, r.Unit)
	if r.PaperValue != 0 {
		s += fmt.Sprintf("   (paper: %g %s)", r.PaperValue, r.PaperUnit)
	}
	return s
}

// Format renders a result set as an aligned table, grouped by experiment.
func Format(results []Result) string {
	sorted := append([]Result(nil), results...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Experiment < sorted[j].Experiment })
	var b strings.Builder
	last := ""
	for _, r := range sorted {
		if r.Experiment != last {
			if last != "" {
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "== %s ==\n", r.Experiment)
			last = r.Experiment
		}
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteJSON renders a result set as machine-readable JSON — one object
// per measured value, in measurement order (no re-sorting: consumers
// diff runs, and a stable order keeps diffs small). This is the format
// behind `wedgebench -json`, which CI uploads per run for trend
// tracking.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// timeOp runs op n times and returns the per-iteration duration.
func timeOp(n int, op func()) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		op()
	}
	return time.Since(start) / time.Duration(n)
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// us converts a duration to float microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// ns converts a duration to float nanoseconds.
func ns(d time.Duration) float64 { return float64(d.Nanoseconds()) }
