package bench

import "testing"

// TestFigPoolPooledBeatsRecycled is the acceptance property of the
// gatepool subsystem: PooledServer throughput at least matches
// RecycledServer with a single connection and exceeds it under
// concurrency. Timing on a loaded host is noisy, so the comparison gets
// three attempts; the property must hold within one attempt.
func TestFigPoolPooledBeatsRecycled(t *testing.T) {
	if testing.Short() {
		t.Skip("timing benchmark")
	}
	if raceEnabled {
		t.Skip("timing shape distorted by race-detector instrumentation")
	}
	var lastErr string
	for attempt := 0; attempt < 3; attempt++ {
		rows, _, err := FigPool(64, []int{1, 8}, 0)
		if err != nil {
			t.Fatal(err)
		}
		rps := make(map[string]float64)
		for _, r := range rows {
			rps[r.Variant+"@"+itoa(r.Conns)] = r.RPS
		}
		switch {
		case rps["pooled@1"] < rps["recycled@1"]:
			lastErr = "pooled below recycled at c=1"
		case rps["pooled@8"] <= rps["recycled@8"]:
			lastErr = "pooled not above recycled at c=8"
		default:
			t.Logf("c=1: pooled %.0f vs recycled %.0f req/s; c=8: pooled %.0f vs recycled %.0f req/s",
				rps["pooled@1"], rps["recycled@1"], rps["pooled@8"], rps["recycled@8"])
			return
		}
		t.Logf("attempt %d: %s (pooled@1=%.0f recycled@1=%.0f pooled@8=%.0f recycled@8=%.0f)",
			attempt, lastErr, rps["pooled@1"], rps["recycled@1"], rps["pooled@8"], rps["recycled@8"])
	}
	t.Fatalf("after 3 attempts: %s", lastErr)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestFigPoolShape: a cheap smoke test (also run under -short via
// FigPool's own machinery being exercised above): every variant reports a
// positive rate and the row set is complete.
func TestFigPoolShape(t *testing.T) {
	rows, results, err := FigPool(8, []int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three Results per cell: rps plus the p50/p99 latency rows.
	if len(rows) != 4 || len(results) != 12 {
		t.Fatalf("rows=%d results=%d, want 4/12", len(rows), len(results))
	}
	for _, r := range rows {
		if r.RPS <= 0 {
			t.Fatalf("%s c=%d: non-positive rate %f", r.Variant, r.Conns, r.RPS)
		}
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Fatalf("%s c=%d: implausible latencies p50=%v p99=%v", r.Variant, r.Conns, r.P50, r.P99)
		}
	}
	for _, r := range results {
		switch r.Metric {
		case "rps", "p50", "p99":
		default:
			t.Fatalf("result %q: metric %q", r.Name, r.Metric)
		}
	}
}

// TestFigPoolAppsShape: the sshd, pop3, privsep, and dnsd ladders
// report a complete, positive row set for every variant.
func TestFigPoolAppsShape(t *testing.T) {
	for _, app := range []string{"sshd", "pop3", "privsep", "dnsd"} {
		t.Run(app, func(t *testing.T) {
			variants, err := FigPoolVariants(app)
			if err != nil {
				t.Fatal(err)
			}
			rows, results, err := FigPoolApp(app, 6, []int{2}, PoolOpts{Slots: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != len(variants) || len(results) != 3*len(variants) {
				t.Fatalf("rows=%d results=%d, want %d/%d", len(rows), len(results), len(variants), 3*len(variants))
			}
			for _, r := range rows {
				if r.RPS <= 0 {
					t.Fatalf("%s %s c=%d: non-positive rate %f", app, r.Variant, r.Conns, r.RPS)
				}
			}
		})
	}
}

// TestFigPoolAppsCoverAll: the five-way comparison list names exactly the
// apps FigPoolVariants accepts (beyond the implicit "" default), so
// `wedgebench -pool -app all` cannot silently drop one.
func TestFigPoolAppsCoverAll(t *testing.T) {
	if len(FigPoolApps) != 5 {
		t.Fatalf("FigPoolApps = %v, want the five-way comparison", FigPoolApps)
	}
	for _, app := range FigPoolApps {
		if _, err := FigPoolVariants(app); err != nil {
			t.Fatalf("FigPoolApps entry %q rejected: %v", app, err)
		}
	}
}

// TestFigPoolUnknownApp: the app argument is validated, not silently
// treated as httpd.
func TestFigPoolUnknownApp(t *testing.T) {
	if _, _, err := FigPoolApp("imap", 4, []int{1}, PoolOpts{Slots: 1}); err == nil {
		t.Fatal("unknown app accepted")
	}
}
