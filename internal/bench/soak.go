// The soak harness: hundreds of thousands of simulated principals
// churning connect/auth/disconnect through the pooled apps for a
// bounded run, with leak accounting at the end. Where the FigPool cells
// measure steady-state throughput at fixed concurrency, the soak
// measures what a million-principal deployment actually stresses: the
// conn-table's churn path (every session registers and deregisters a
// demux entry under a fresh principal), the idle reaper (a fraction of
// stream sessions park silent and must be reaped, every datagram flow
// ends by expiry), and the bookkeeping that must come back to exactly
// zero afterwards — task count, live tag set, and conn-table occupancy.
// A soak that "passes" with a leaked task per ten thousand sessions is
// a server that dies in production a week later, so Soak returns an
// error — not a number — when any residue survives the run.

package bench

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wedge/internal/dnsd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/pop3"
	"wedge/internal/serve"
	"wedge/internal/sthread"
)

// SoakOpts configures a soak run. The zero value is the full default
// soak: both apps, 100k principals each.
type SoakOpts struct {
	// App selects the workload: "pop3" (stream sessions), "dnsd"
	// (datagram flows), or "all"/"" for both.
	App string
	// Principals is the number of simulated principal churns per app
	// (default 100_000). Every session dials fresh, so netsim mints a
	// distinct principal for each.
	Principals int
	// Conc is the number of concurrent driver clients (default 32).
	Conc int
	// Idle is the stream apps' idle-reap window (default 25ms). Silent
	// sessions must be reaped within roughly this bound for the soak to
	// sustain its rate.
	Idle time.Duration
	// SilentEvery parks every Nth pop3 session after authentication —
	// no QUIT, no further bytes — so the run exercises the idle reaper
	// under churn, not just the clean path (default 16; negative
	// disables).
	SilentEvery int
	// Slots is the stream pool size (0 = one slot per driver, so the
	// run measures churn and reaping rather than admission shedding —
	// with fewer slots than drivers, a burst of parked silent sessions
	// can back the queue up past the idle window, and the reaper sheds
	// the queued connections; the FigPool cells cover contention).
	Slots int
}

// soakFlowIdle is the datagram soak's flow-expiry window. A datagram
// flow pins its slot until expiry (there is no FIN), so the sustainable
// churn rate is slots/idle — the window is kept short and the flow pool
// wide (soakFlowSlots) so a 100k-principal run stays bounded while the
// expiry sweep still runs at full tilt.
const soakFlowIdle = 4 * time.Millisecond

// soakFlowSlots is the datagram soak's pool width; see soakFlowIdle.
const soakFlowSlots = 256

// SoakRow is one app's soak outcome.
type SoakRow struct {
	App        string
	Principals int // clean, timed churns
	Conc       int
	Stats      CellStats
	Reaped     uint64 // idle-reaped sessions (stream) or expired flows (packet)
	PeakConns  int    // peak conn-table occupancy observed during the run
	PeakShard  int    // peak single-shard depth observed during the run
	Shards     int    // conn-table shard count
}

func (o *SoakOpts) defaults() {
	if o.App == "" {
		o.App = "all"
	}
	if o.Principals <= 0 {
		o.Principals = 100_000
	}
	if o.Conc <= 0 {
		o.Conc = 32
	}
	if o.Idle <= 0 {
		o.Idle = 25 * time.Millisecond
	}
	if o.SilentEvery == 0 {
		o.SilentEvery = 16
	} else if o.SilentEvery < 0 {
		o.SilentEvery = 0
	}
}

// Soak runs the selected soak workloads and returns their rows plus the
// JSON result rows (experiment "soak": rps/p50/p99 per app, keyed by
// concurrency — not by principal count, so bounded CI runs compare
// against the same baseline rows as full runs). Any leak — a task or
// tag that outlives the churn, a conn-table entry left registered, a
// silent session the reaper missed — is an error.
func Soak(opts SoakOpts) ([]SoakRow, []Result, error) {
	opts.defaults()
	var apps []string
	switch opts.App {
	case "all":
		apps = []string{"pop3", "dnsd"}
	case "pop3", "dnsd":
		apps = []string{opts.App}
	default:
		return nil, nil, fmt.Errorf("bench: unknown soak app %q (want pop3, dnsd or all)", opts.App)
	}
	var rows []SoakRow
	var results []Result
	for _, app := range apps {
		var row SoakRow
		var err error
		switch app {
		case "pop3":
			row, err = soakPop3(opts)
		case "dnsd":
			row, err = soakDnsd(opts)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("soak %s: %w", app, err)
		}
		rows = append(rows, row)
		results = append(results,
			Result{
				Experiment: "soak",
				Name:       fmt.Sprintf("%s soak c=%d", app, opts.Conc),
				Value:      row.Stats.RPS,
				Unit:       "req/s",
				App:        app,
				Variant:    "soak",
				Conns:      opts.Conc,
				Metric:     "rps",
			},
			Result{
				Experiment: "soak",
				Name:       fmt.Sprintf("%s soak c=%d p50", app, opts.Conc),
				Value:      ms(row.Stats.P50),
				Unit:       "ms",
				App:        app,
				Variant:    "soak",
				Conns:      opts.Conc,
				Metric:     "p50",
			},
			Result{
				Experiment: "soak",
				Name:       fmt.Sprintf("%s soak c=%d p99", app, opts.Conc),
				Value:      ms(row.Stats.P99),
				Unit:       "ms",
				App:        app,
				Variant:    "soak",
				Conns:      opts.Conc,
				Metric:     "p99",
			})
	}
	return rows, results, nil
}

// soakBaseline is the residue accounting shared by both soaks: the task
// count and live tag set are recorded at a settled moment before the
// measured churn, and must read exactly the same at the next settled
// moment after it. (The pre-churn warmup has already forced every lazy
// allocation — wheel task, session scratch, autosized buffers — so a
// difference here is a per-session leak, not a first-use artifact.)
type soakBaseline struct {
	tasks int
	tags  int
}

func takeBaseline(k *kernel.Kernel, app *sthread.App) soakBaseline {
	return soakBaseline{tasks: k.TaskCount(), tags: len(app.Tags.Tags())}
}

func (b soakBaseline) check(k *kernel.Kernel, app *sthread.App, churned int) error {
	if got := k.TaskCount(); got != b.tasks {
		return fmt.Errorf("task leak: %d tasks after %d churns, baseline %d", got, churned, b.tasks)
	}
	if got := len(app.Tags.Tags()); got != b.tags {
		return fmt.Errorf("tag leak: %d live tags after %d churns, baseline %d", got, churned, b.tags)
	}
	return nil
}

// soakSettle waits for the runtime to go fully quiet: nothing in
// flight, no busy slot, no live flow, and — the sharded-table soak's
// whole point — a conn table drained back to zero entries.
func soakSettle(snap func() serve.Snapshot, when string) (serve.Snapshot, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		s := snap()
		if s.Inflight == 0 && s.Pool.Busy == 0 && s.Flows == 0 && s.Conns.Entries == 0 {
			return s, nil
		}
		if time.Now().After(deadline) {
			if os.Getenv("WEDGE_SOAK_DUMP") != "" {
				buf := make([]byte, 1<<22)
				n := runtime.Stack(buf, true)
				os.Stderr.Write(buf[:n])
			}
			return s, fmt.Errorf("%s: not quiescent: inflight=%d busy=%d flows=%d conn-entries=%d",
				when, s.Inflight, s.Pool.Busy, s.Flows, s.Conns.Entries)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// soakSampler polls Snapshot while the churn runs, recording peak
// conn-table occupancy and peak single-shard depth — the counters that
// show whether load actually spread across shards or piled onto one.
type soakSampler struct {
	stop      chan struct{}
	done      chan struct{}
	peakConns int
	peakShard int
	shards    int
}

func startSampler(snap func() serve.Snapshot) *soakSampler {
	sm := &soakSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(sm.done)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sm.stop:
				return
			case <-tick.C:
				s := snap()
				if s.Conns.Entries > sm.peakConns {
					sm.peakConns = s.Conns.Entries
				}
				if s.Conns.MaxShard > sm.peakShard {
					sm.peakShard = s.Conns.MaxShard
				}
				sm.shards = s.Conns.Shards
			}
		}
	}()
	return sm
}

func (sm *soakSampler) finish() { close(sm.stop); <-sm.done }

// soakDrive fans opts.Conc drivers over n sessions of run, timing each
// clean session end-to-end and collecting the latency distribution.
// Failed sessions retry a few times — a load generator's behavior —
// before aborting the run.
func soakDrive(n, conc int, run func(seq int) (timed bool, err error)) (CellStats, error) {
	return churnDrive(n, conc, 8, run)
}

// churnDrive is soakDrive with the retry budget explicit. The cluster
// rolling-drain cells run it with zero retries: there, any stream
// error is a client-visible failure the drain was supposed to prevent,
// and a retry would hide exactly the defect being measured.
func churnDrive(n, conc, retries int, run func(seq int) (timed bool, err error)) (CellStats, error) {
	per := n / conc
	if per == 0 {
		per = 1
	}
	lats := make([][]time.Duration, conc)
	errs := make(chan error, conc)
	var seq atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		lats[c] = make([]time.Duration, 0, per)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s := int(seq.Add(1))
				t0 := time.Now()
				timed, err := run(s)
				for retry := 0; err != nil && retry < retries; retry++ {
					timed, err = run(s)
				}
				if err != nil {
					errs <- fmt.Errorf("session %d: %w", s, err)
					return
				}
				if timed {
					lats[c] = append(lats[c], time.Since(t0))
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return CellStats{}, err
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return CellStats{
		RPS: float64(per*conc) / elapsed.Seconds(),
		P50: percentile(all, 0.50),
		P99: percentile(all, 0.99),
	}, nil
}

// soakPop3 churns stream sessions: every session dials fresh (a new
// netsim principal), authenticates, retrieves one message, and quits —
// except every SilentEvery-th, which parks after authentication and is
// closed by the idle reaper (the client waits for the reap, so a missed
// reap hangs a driver instead of passing silently).
func soakPop3(opts SoakOpts) (SoakRow, error) {
	boxes := []pop3.Mailbox{
		{User: "alice", Password: "sesame", UID: 1000,
			Messages: []string{"From: soak\n\nmessage one"}},
	}
	k := kernel.New()
	app := sthread.Boot(k)
	benchPremain(app)

	type built struct {
		srv *pop3.PooledServer
		l   *netsim.Listener
	}
	ready := make(chan built, 1)
	quit := make(chan struct{})
	done := make(chan error, 1)
	slots := opts.Slots
	if slots <= 0 {
		slots = opts.Conc // see SoakOpts.Slots
	}
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := pop3.NewPooledConfig(root, boxes, pop3.PoolConfig{
				Slots:       slots,
				IdleTimeout: opts.Idle,
			}, pop3.Hooks{})
			if err != nil {
				panic(err)
			}
			defer srv.Close()
			l, err := root.Task.Listen("pop3:110")
			if err != nil {
				panic(err)
			}
			ready <- built{srv, l}
			srv.Serve(l)
			<-quit
		})
	}()
	b := <-ready

	session := func(seq int) (bool, error) {
		silent := opts.SilentEvery > 0 && seq%opts.SilentEvery == 0
		if !silent {
			return true, pop3BenchSession(k)
		}
		return false, soakSilentPop3(k, opts.Idle)
	}

	// Warmup: one round per driver (including a silent one when enabled)
	// forces every lazy allocation before the baseline is taken.
	if _, err := soakDrive(opts.Conc, opts.Conc, session); err != nil {
		return SoakRow{}, fmt.Errorf("warmup: %w", err)
	}
	if _, err := soakSettle(b.srv.Snapshot, "after warmup"); err != nil {
		return SoakRow{}, err
	}
	base := takeBaseline(k, app)
	reaped0 := b.srv.Snapshot().IdleReaped

	sm := startSampler(b.srv.Snapshot)
	stats, derr := soakDrive(opts.Principals, opts.Conc, session)
	sm.finish()
	if derr != nil {
		return SoakRow{}, derr
	}
	snap, err := soakSettle(b.srv.Snapshot, "after churn")
	if err != nil {
		return SoakRow{}, err
	}
	if err := base.check(k, app, opts.Principals); err != nil {
		return SoakRow{}, err
	}
	reaped := snap.IdleReaped - reaped0
	if opts.SilentEvery > 0 && reaped == 0 {
		return SoakRow{}, fmt.Errorf("no sessions idle-reaped with SilentEvery=%d", opts.SilentEvery)
	}

	b.l.Close()
	close(quit)
	if err := <-done; err != nil {
		return SoakRow{}, err
	}
	return SoakRow{
		App: "pop3", Principals: opts.Principals, Conc: opts.Conc,
		Stats: stats, Reaped: reaped,
		PeakConns: sm.peakConns, PeakShard: sm.peakShard, Shards: sm.shards,
	}, nil
}

// soakSilentPop3 authenticates and then goes quiet; the reaper must
// close the connection. The read-until-error is the assertion: a
// connection the reaper misses blocks here until the settle deadline
// fails the run.
func soakSilentPop3(k *kernel.Kernel, idle time.Duration) error {
	conn, err := k.Net.Dial("pop3:110")
	if err != nil {
		return err
	}
	defer conn.Close()
	r := newLineReader(conn)
	for _, cmd := range []string{"", "USER alice", "PASS sesame"} {
		if cmd != "" {
			if _, err := conn.Write([]byte(cmd + "\r\n")); err != nil {
				return err
			}
		}
		line, err := r.line()
		if err != nil {
			return err
		}
		if len(line) < 3 || line[:3] != "+OK" {
			return fmt.Errorf("silent session: got %q, want +OK", line)
		}
	}
	// Authenticated; now park. The next read returns only when the
	// reaper closes the server side.
	for {
		if _, err := r.line(); err != nil {
			return nil
		}
	}
}

// soakDnsd churns datagram flows: every query dials a fresh packet
// socket (a new udp-N principal), so every query admits a new flow that
// gives its slot back only through idle expiry — admission, demux
// registration, wheel-driven expiry, and scrub all on the path, at
// soak scale.
func soakDnsd(opts SoakOpts) (SoakRow, error) {
	key, err := minissl.GenerateServerKey()
	if err != nil {
		return SoakRow{}, err
	}
	zone := []dnsd.Record{{Name: "www.example", Value: "192.0.2.80"}}
	k := kernel.New()
	app := sthread.Boot(k)
	benchPremain(app)

	type built struct {
		srv *dnsd.Resolver
		pc  *netsim.PacketConn
	}
	ready := make(chan built, 1)
	quit := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := dnsd.NewPooled(root, key, zone, dnsd.Config{
				Slots:       soakFlowSlots,
				IdleTimeout: soakFlowIdle,
			})
			if err != nil {
				panic(err)
			}
			defer srv.Close()
			pc, err := root.Task.ListenPacket("dns:53")
			if err != nil {
				panic(err)
			}
			ready <- built{srv, pc}
			srv.ServePackets(pc)
			<-quit
		})
	}()
	b := <-ready

	pub := &key.PublicKey
	query := func(int) (bool, error) {
		pc, err := k.Net.DialPacket()
		if err != nil {
			return true, err
		}
		defer pc.Close()
		// Datagram transports promise nothing: a request or answer can
		// be shed (admission overload, full socket queue) and ReadFrom
		// would then block forever. The client imposes its own timeout —
		// closing the socket unblocks the read with an error, and the
		// driver's retry dials a fresh socket.
		timeout := time.AfterFunc(time.Second, func() { pc.Close() })
		defer timeout.Stop()
		a, err := dnsd.Query(pc, "dns:53", "www.example")
		if err != nil {
			return true, err
		}
		if a.Status != dnsd.StatusNoError {
			return true, fmt.Errorf("dnsd status %d, want NOERROR", a.Status)
		}
		return true, a.Verify(pub)
	}

	if _, err := soakDrive(opts.Conc, opts.Conc, query); err != nil {
		return SoakRow{}, fmt.Errorf("warmup: %w", err)
	}
	if _, err := soakSettle(b.srv.Snapshot, "after warmup"); err != nil {
		return SoakRow{}, err
	}
	base := takeBaseline(k, app)
	expired0 := b.srv.Snapshot().Expired

	sm := startSampler(b.srv.Snapshot)
	stats, derr := soakDrive(opts.Principals, opts.Conc, query)
	sm.finish()
	if derr != nil {
		return SoakRow{}, derr
	}
	snap, err := soakSettle(b.srv.Snapshot, "after churn")
	if err != nil {
		return SoakRow{}, err
	}
	if err := base.check(k, app, opts.Principals); err != nil {
		return SoakRow{}, err
	}
	expired := snap.Expired - expired0
	if expired == 0 {
		return SoakRow{}, fmt.Errorf("no flows expired across %d fresh-principal queries", opts.Principals)
	}

	b.pc.Close()
	close(quit)
	if err := <-done; err != nil {
		return SoakRow{}, err
	}
	return SoakRow{
		App: "dnsd", Principals: opts.Principals, Conc: opts.Conc,
		Stats: stats, Reaped: expired,
		PeakConns: sm.peakConns, PeakShard: sm.peakShard, Shards: sm.shards,
	}, nil
}
