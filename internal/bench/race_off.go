//go:build !race

package bench

// raceEnabled reports whether the race detector is active. Timing-shape
// tests skip themselves under the detector: its per-access
// instrumentation multiplies the cost of small simulated memory
// operations far more than large ones, distorting exactly the cost
// ratios those tests assert.
const raceEnabled = false
