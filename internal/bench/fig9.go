// Figure 9: cb-log overhead. Each workload runs three ways — native,
// under the translation engine alone (Pin), and under full access logging
// (cb-log) — and the figure reports the three times plus the
// cb-log-over-Pin ratio printed above each group of bars in the paper
// (ssh 2.4x ... h264ref 90x).

package bench

import (
	"fmt"
	"time"

	"wedge/internal/crowbar"
	"wedge/internal/pin"
	"wedge/internal/spec"
)

// Fig9Row is the full measurement for one workload.
type Fig9Row struct {
	Workload string
	Native   time.Duration
	Pin      time.Duration
	CBLog    time.Duration
	// Ratio is cb-log over Pin, the number the paper prints above the
	// bars.
	Ratio float64
	// TraceRecords is the number of access records cb-log captured.
	TraceRecords int
}

// paperRatios are the cb-log/Pin ratios printed in the paper's Figure 9.
var paperRatios = map[string]float64{
	"ssh": 2.4, "mcf": 7.1, "gobmk": 8.7, "apache": 8.8, "quantum": 29,
	"hmmer": 42, "sjeng": 51, "bzip2": 53, "h264ref": 90,
}

// Fig9 runs all nine workloads in the three modes.
func Fig9() ([]Fig9Row, []Result, error) {
	var rows []Fig9Row
	var results []Result
	// Each (workload, mode) cell is run several times and the minimum
	// elapsed time kept: the workloads complete in microseconds to
	// milliseconds, where scheduler and allocator noise would otherwise
	// swamp the ratios.
	const reps = 3
	for _, w := range spec.All() {
		row := Fig9Row{Workload: w.Name()}
		var checksums [3]uint64
		for i, mode := range []pin.Mode{pin.ModeNative, pin.ModePin, pin.ModeCBLog} {
			var best time.Duration
			var records int
			var sum uint64
			for rep := 0; rep < reps; rep++ {
				p, err := pin.NewProc(mode)
				if err != nil {
					return nil, nil, err
				}
				var logger *crowbar.Logger
				if mode == pin.ModeCBLog {
					logger = crowbar.NewLogger()
					p.Attach(logger)
				}
				start := time.Now()
				s, err := w.Run(p)
				elapsed := time.Since(start)
				if err != nil {
					return nil, nil, fmt.Errorf("%s under %s: %w", w.Name(), mode, err)
				}
				sum = s
				if rep == 0 || elapsed < best {
					best = elapsed
				}
				if logger != nil {
					records = logger.Trace().Len()
				}
			}
			checksums[i] = sum
			switch mode {
			case pin.ModeNative:
				row.Native = best
			case pin.ModePin:
				row.Pin = best
			case pin.ModeCBLog:
				row.CBLog = best
				row.TraceRecords = records
			}
		}
		if checksums[0] != checksums[1] || checksums[1] != checksums[2] {
			return nil, nil, fmt.Errorf("%s: checksum diverged across modes", w.Name())
		}
		if row.Pin > 0 {
			row.Ratio = float64(row.CBLog) / float64(row.Pin)
		}
		rows = append(rows, row)
		results = append(results,
			Result{Experiment: "fig9", Name: w.Name() + " native", Value: float64(row.Native.Microseconds()) / 1e3, Unit: "ms"},
			Result{Experiment: "fig9", Name: w.Name() + " pin", Value: float64(row.Pin.Microseconds()) / 1e3, Unit: "ms"},
			Result{Experiment: "fig9", Name: w.Name() + " crowbar", Value: float64(row.CBLog.Microseconds()) / 1e3, Unit: "ms"},
			Result{Experiment: "fig9", Name: w.Name() + " ratio", Value: row.Ratio, Unit: "x",
				PaperValue: paperRatios[w.Name()], PaperUnit: "x"},
		)
	}
	return rows, results, nil
}
