package bench

import "testing"

// TestSoakBounded runs a small version of both soak workloads — enough
// churn to cross the conn-table's bucket-growth and reaper paths, small
// enough for the unit-test budget. The harness's own leak accounting is
// the assertion: Soak errors on any task/tag residue, a non-empty conn
// table, a silent session the reaper missed, or a flow that never
// expired.
func TestSoakBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is a multi-second run")
	}
	rows, results, err := Soak(SoakOpts{
		Principals: 2000,
		Conc:       16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (pop3 + dnsd)", len(rows))
	}
	for _, row := range rows {
		if row.Stats.RPS <= 0 {
			t.Errorf("%s: nonpositive throughput %v", row.App, row.Stats.RPS)
		}
		if row.Stats.P99 < row.Stats.P50 {
			t.Errorf("%s: p99 %v < p50 %v", row.App, row.Stats.P99, row.Stats.P50)
		}
		if row.Reaped == 0 {
			t.Errorf("%s: zero reaped/expired sessions", row.App)
		}
		if row.PeakConns == 0 || row.Shards == 0 {
			t.Errorf("%s: sampler saw no occupancy (peak=%d shards=%d)", row.App, row.PeakConns, row.Shards)
		}
	}
	// Three rows per app (rps, p50, p99), keyed by concurrency only —
	// bounded CI runs must produce the same row names as full runs.
	if len(results) != 6 {
		t.Fatalf("got %d result rows, want 6", len(results))
	}
	for _, r := range results {
		if r.Experiment != "soak" {
			t.Errorf("result %q: experiment %q, want soak", r.Name, r.Experiment)
		}
	}
}
