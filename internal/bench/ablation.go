// Ablations for the design choices DESIGN.md calls out.
//
// Tag free-list cache (§4.1): the paper credits caching and reusing
// deleted tags — instead of paying the mmap path on every per-connection
// tag_new — with improving partitioned Apache's throughput by 20%.
// AblationTagCache measures the partitioned server with the cache on and
// off. (The recycled-vs-standard callgate ablation is Table 2 itself:
// compare the "wedge" and "recycled" rows.)
//
// Ephemeral RSA (§5.1.1): the paper sets per-connection RSA keys aside
// because "they are rarely used in practice because of their high
// computational cost". AblationEphemeralRSA puts a number on that cost:
// full-handshake throughput of the monolithic server with a static key
// versus with per-connection ephemeral keys.

package bench

import (
	"fmt"
	"time"

	"wedge/internal/httpd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
)

// AblationTagCache measures MITM-partitioned Apache throughput with the
// deleted-tag cache enabled and disabled, returning (cached, uncachedReqS)
// requests/second.
func AblationTagCache(conns int) (withCache, withoutCache float64, err error) {
	if conns <= 0 {
		conns = Table2Conns
	}
	run := func(cacheEnabled bool) (float64, error) {
		k := kernel.New()
		priv, err := minissl.GenerateServerKey()
		if err != nil {
			return 0, err
		}
		if err := httpd.SetupDocroot(k, "/var/www", 1024); err != nil {
			return 0, err
		}
		app := sthread.Boot(k)
		app.Tags.CacheEnabled = cacheEnabled

		ready := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			done <- app.Main(func(root *sthread.Sthread) {
				srv, err := httpd.NewMITM(root, "/var/www", priv, false, httpd.Hooks{})
				if err != nil {
					panic(err)
				}
				l, err := root.Task.Listen("apache:443")
				if err != nil {
					panic(err)
				}
				close(ready)
				for i := 0; i < conns; i++ {
					c, err := l.Accept()
					if err != nil {
						return
					}
					srv.ServeConn(c)
				}
			})
		}()
		<-ready
		start := time.Now()
		for i := 0; i < conns; i++ {
			conn, err := k.Net.Dial("apache:443")
			if err != nil {
				return 0, err
			}
			cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
			if err != nil {
				return 0, err
			}
			if _, err := cc.Write([]byte("GET /index.html")); err != nil {
				return 0, err
			}
			if _, err := cc.ReadRecord(); err != nil {
				return 0, err
			}
			conn.Close()
		}
		elapsed := time.Since(start)
		if err := <-done; err != nil {
			return 0, err
		}
		return float64(conns) / elapsed.Seconds(), nil
	}
	if withCache, err = run(true); err != nil {
		return 0, 0, fmt.Errorf("cache on: %w", err)
	}
	if withoutCache, err = run(false); err != nil {
		return 0, 0, fmt.Errorf("cache off: %w", err)
	}
	return withCache, withoutCache, nil
}

// AblationEphemeralRSA measures full (uncached) handshakes/second of the
// monolithic SSL server with the long-lived key alone versus with
// ephemeral per-connection keys, quantifying the forward-secrecy cost
// §5.1.1 cites as the reason ephemeral keys were rarely deployed.
func AblationEphemeralRSA(conns int) (static, ephemeral float64, err error) {
	if conns <= 0 {
		conns = Table2Conns
	}
	priv, err := minissl.GenerateServerKey()
	if err != nil {
		return 0, 0, err
	}
	run := func(opts minissl.ServerOpts) (float64, error) {
		net := netsim.New()
		l, err := net.Listen("srv:443")
		if err != nil {
			return 0, err
		}
		done := make(chan error, 1)
		go func() {
			for i := 0; i < conns; i++ {
				c, err := l.Accept()
				if err != nil {
					done <- err
					return
				}
				srv, err := minissl.ServerHandshakeOpts(c, priv, nil, opts)
				if err != nil {
					done <- err
					return
				}
				if _, err := srv.ReadRecord(); err != nil {
					done <- err
					return
				}
				if _, err := srv.Write([]byte("ok")); err != nil {
					done <- err
					return
				}
				c.Close()
			}
			done <- nil
		}()
		start := time.Now()
		for i := 0; i < conns; i++ {
			conn, err := net.Dial("srv:443")
			if err != nil {
				return 0, err
			}
			cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
			if err != nil {
				return 0, err
			}
			if _, err := cc.Write([]byte("GET /")); err != nil {
				return 0, err
			}
			if _, err := cc.ReadRecord(); err != nil {
				return 0, err
			}
			conn.Close()
		}
		elapsed := time.Since(start)
		if err := <-done; err != nil {
			return 0, err
		}
		return float64(conns) / elapsed.Seconds(), nil
	}
	if static, err = run(minissl.ServerOpts{}); err != nil {
		return 0, 0, fmt.Errorf("static key: %w", err)
	}
	if ephemeral, err = run(minissl.ServerOpts{Ephemeral: true}); err != nil {
		return 0, 0, fmt.Errorf("ephemeral keys: %w", err)
	}
	return static, ephemeral, nil
}
