// Figure 8: memory-call costs. The paper's shape: smalloc costs roughly
// the same as malloc; warm tag_new (free-list reuse plus scrub-by-remap)
// is about 4x malloc; mmap — and therefore cold tag_new — is about 22x
// malloc.

package bench

import (
	"wedge/internal/kernel"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// Fig8Iters is the default iteration count.
const Fig8Iters = 2000

// Fig8 measures malloc, tag_new (warm), mmap, and the tag_new cold path
// ablation.
func Fig8(iters int) ([]Result, error) {
	if iters <= 0 {
		iters = Fig8Iters
	}
	var results []Result
	app := sthread.Boot(kernel.New())
	err := app.Main(func(root *sthread.Sthread) {
		// malloc: allocator hit on the private heap.
		d := timeOp(iters, func() {
			a, err := root.Malloc(64)
			if err != nil {
				panic(err)
			}
			root.Free(a)
		})
		results = append(results, Result{
			Experiment: "fig8", Name: "malloc", Value: ns(d), Unit: "ns",
			PaperValue: 50, PaperUnit: "ns",
		})

		// tag_new warm: pop the userland cache, scrub by zero-remap,
		// reseed the header. Prime the cache first.
		reg := root.App().Tags
		tg, err := reg.TagNew(root.Task)
		if err != nil {
			panic(err)
		}
		reg.TagDelete(tg)
		d = timeOp(iters, func() {
			tg, err := reg.TagNew(root.Task)
			if err != nil {
				panic(err)
			}
			reg.TagDelete(tg)
		})
		results = append(results, Result{
			Experiment: "fig8", Name: "tag_new (reuse)", Value: ns(d), Unit: "ns",
			PaperValue: 200, PaperUnit: "ns",
		})

		// mmap: fresh zeroed pages every time.
		d = timeOp(iters, func() {
			a, err := root.Task.Mmap(tags.DefaultRegionSize, vm.PermRW)
			if err != nil {
				panic(err)
			}
			if err := root.Task.Munmap(a, tags.DefaultRegionSize); err != nil {
				panic(err)
			}
		})
		results = append(results, Result{
			Experiment: "fig8", Name: "mmap", Value: ns(d), Unit: "ns",
			PaperValue: 1100, PaperUnit: "ns",
		})

		// tag_new cold (ablation): cache disabled, every tag_new pays
		// the mmap path plus header initialization.
		cold := tags.NewRegistry()
		cold.CacheEnabled = false
		d = timeOp(iters, func() {
			tg, err := cold.TagNew(root.Task)
			if err != nil {
				panic(err)
			}
			cold.TagDelete(tg)
		})
		results = append(results, Result{
			Experiment: "fig8", Name: "tag_new (cold)", Value: ns(d), Unit: "ns",
			PaperValue: 1100, PaperUnit: "ns",
		})
	})
	return results, err
}
