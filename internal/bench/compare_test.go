package bench

import (
	"math"
	"strings"
	"testing"
)

func row(name, unit string, v float64) Result {
	return Result{Experiment: "figpool", Name: name, Unit: unit, Value: v}
}

// TestCompareDirections: a rate that fell and a latency that rose are
// regressions; the opposite movements are improvements and pass no
// matter how large.
func TestCompareDirections(t *testing.T) {
	old := []Result{
		row("httpd pooled c=4", "req/s", 1000),
		row("httpd pooled c=4 p99", "ms", 10),
	}
	worse := []Result{
		row("httpd pooled c=4", "req/s", 400), // -60% throughput
		row("httpd pooled c=4 p99", "ms", 25), // +150% latency
	}
	regs := Compare(old, worse, 0.5)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want both rows flagged", regs)
	}
	for _, r := range regs {
		if r.Delta <= 0.5 {
			t.Fatalf("%s: delta %f not beyond threshold", r.Name, r.Delta)
		}
	}

	better := []Result{
		row("httpd pooled c=4", "req/s", 10000), // 10x faster
		row("httpd pooled c=4 p99", "ms", 0.1),  // 100x lower tail
	}
	if regs := Compare(old, better, 0.5); len(regs) != 0 {
		t.Fatalf("improvements flagged: %v", regs)
	}
}

// TestCompareThreshold: changes inside the noise threshold pass.
func TestCompareThreshold(t *testing.T) {
	old := []Result{row("pop3 mono c=1", "req/s", 1000)}
	new := []Result{row("pop3 mono c=1", "req/s", 700)} // -30%
	if regs := Compare(old, new, 0.5); len(regs) != 0 {
		t.Fatalf("within-threshold change flagged: %v", regs)
	}
	if regs := Compare(old, new, 0.2); len(regs) != 1 {
		t.Fatalf("beyond-threshold change not flagged: %v", regs)
	}
}

// TestCompareMissingRow: a baseline row absent from the new run is
// flagged — a shrunk benchmark must not read as a pass — while rows
// only the new run has (a grown benchmark) are fine.
func TestCompareMissingRow(t *testing.T) {
	old := []Result{row("sshd pooled c=4", "req/s", 500)}
	new := []Result{row("dnsd pooled c=4", "req/s", 800)}
	regs := Compare(old, new, 0.5)
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("regressions = %v, want one missing-row flag", regs)
	}
	if !strings.Contains(regs[0].String(), "missing") {
		t.Fatalf("missing-row rendering: %q", regs[0].String())
	}
}

// TestCompareCollapse: a rate that fell to zero is flagged no matter
// how wide the threshold — the subtractive "100% worse" cap must not
// hide it.
func TestCompareCollapse(t *testing.T) {
	old := []Result{row("httpd pooled c=4", "req/s", 1000)}
	new := []Result{row("httpd pooled c=4", "req/s", 0)}
	regs := Compare(old, new, 100)
	if len(regs) != 1 || !math.IsInf(regs[0].Delta, 1) {
		t.Fatalf("regressions = %v, want one infinite-delta collapse", regs)
	}
}

// TestCompareSkips: directionless units and zero baselines produce no
// verdict.
func TestCompareSkips(t *testing.T) {
	old := []Result{
		row("partitioning", "lines", 100),
		row("dead cell", "req/s", 0),
	}
	new := []Result{
		row("partitioning", "lines", 1),
	}
	if regs := Compare(old, new, 0.5); len(regs) != 0 {
		t.Fatalf("skippable rows flagged: %v", regs)
	}
}

// TestCompareSkipsNotedRows: a noted row is a recorded trajectory
// point, not a live benchmark — it is never ratio-checked and never
// flagged as vanished, no matter how the run moved.
func TestCompareSkipsNotedRows(t *testing.T) {
	noted := row("pop3 pooled c=64", "req/s", 52038)
	noted.Note = "pre-batching trajectory point"
	old := []Result{noted, row("pop3 pooled c=1", "req/s", 1000)}
	new := []Result{row("pop3 pooled c=1", "req/s", 900)} // no c=64 row at all
	if regs := Compare(old, new, 0.5); len(regs) != 0 {
		t.Fatalf("noted row flagged: %v", regs)
	}
	if imps := Improvements(old, new, 0.5); len(imps) != 0 {
		t.Fatalf("noted row reported as improvement: %v", imps)
	}
}

// TestImprovements: direction-aware betterness beyond the threshold is
// reported (rate up, latency down); within-threshold moves, regressions,
// and rows missing from the run are not.
func TestImprovements(t *testing.T) {
	old := []Result{
		row("pop3 pooled c=64", "req/s", 52038),
		row("pop3 pooled c=64 p99", "ms", 1.873),
		row("pop3 mono c=64", "req/s", 100000),   // barely moves
		row("pop3 wedge c=64", "req/s", 5400),    // regresses
		row("pop3 wedge c=64 p50", "ms", 11.320), // missing from run
	}
	new := []Result{
		row("pop3 pooled c=64", "req/s", 101179), // 1.94x up
		row("pop3 pooled c=64 p99", "ms", 1.179), // 1.59x down
		row("pop3 mono c=64", "req/s", 101000),   // noise
		row("pop3 wedge c=64", "req/s", 2000),    // worse, not better
	}
	imps := Improvements(old, new, 0.5)
	if len(imps) != 2 {
		t.Fatalf("improvements = %v, want the pooled rps and p99 rows", imps)
	}
	for _, i := range imps {
		if i.Factor <= 1.5 {
			t.Fatalf("%s: factor %f not beyond threshold", i.Name, i.Factor)
		}
		if !strings.Contains(i.String(), "better by") {
			t.Fatalf("improvement rendering: %q", i.String())
		}
	}
	if regs := Compare(old, new, 0.5); len(regs) != 2 {
		t.Fatalf("regressions = %v, want the wedge collapse and the vanished p50", regs)
	}
}

// TestRebaseline: matched rows take the run's values in baseline order,
// noted rows survive verbatim, run-only rows are appended, and rows the
// run dropped disappear.
func TestRebaseline(t *testing.T) {
	noted := row("pop3 pooled c=64", "req/s", 52038)
	noted.Note = "pre-batching trajectory point"
	old := []Result{
		row("pop3 pooled c=1", "req/s", 15603),
		noted,
		row("pop3 pooled c=4", "req/s", 38582), // dropped by the run
	}
	new := []Result{
		row("pop3 pooled c=1", "req/s", 48000),
		row("pop3 pooled c=8", "req/s", 70000), // grown benchmark
	}
	got := Rebaseline(old, new)
	if len(got) != 3 {
		t.Fatalf("rebaseline = %v, want 3 rows", got)
	}
	if got[0].Value != 48000 {
		t.Fatalf("matched row not refreshed: %v", got[0])
	}
	if got[1].Note == "" || got[1].Value != 52038 {
		t.Fatalf("noted row not preserved: %v", got[1])
	}
	if got[2].Name != "pop3 pooled c=8" {
		t.Fatalf("run-only row not appended: %v", got[2])
	}
}

// TestCompareKeyIncludesExperiment: same name under different
// experiments are different rows.
func TestCompareKeyIncludesExperiment(t *testing.T) {
	old := []Result{{Experiment: "table2", Name: "apache", Unit: "req/s", Value: 100}}
	new := []Result{{Experiment: "figpool", Name: "apache", Unit: "req/s", Value: 100}}
	regs := Compare(old, new, 0.5)
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("regressions = %v, want the table2 row reported missing", regs)
	}
}
