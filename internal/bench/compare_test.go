package bench

import (
	"math"
	"strings"
	"testing"
)

func row(name, unit string, v float64) Result {
	return Result{Experiment: "figpool", Name: name, Unit: unit, Value: v}
}

// TestCompareDirections: a rate that fell and a latency that rose are
// regressions; the opposite movements are improvements and pass no
// matter how large.
func TestCompareDirections(t *testing.T) {
	old := []Result{
		row("httpd pooled c=4", "req/s", 1000),
		row("httpd pooled c=4 p99", "ms", 10),
	}
	worse := []Result{
		row("httpd pooled c=4", "req/s", 400), // -60% throughput
		row("httpd pooled c=4 p99", "ms", 25), // +150% latency
	}
	regs := Compare(old, worse, 0.5)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want both rows flagged", regs)
	}
	for _, r := range regs {
		if r.Delta <= 0.5 {
			t.Fatalf("%s: delta %f not beyond threshold", r.Name, r.Delta)
		}
	}

	better := []Result{
		row("httpd pooled c=4", "req/s", 10000), // 10x faster
		row("httpd pooled c=4 p99", "ms", 0.1),  // 100x lower tail
	}
	if regs := Compare(old, better, 0.5); len(regs) != 0 {
		t.Fatalf("improvements flagged: %v", regs)
	}
}

// TestCompareThreshold: changes inside the noise threshold pass.
func TestCompareThreshold(t *testing.T) {
	old := []Result{row("pop3 mono c=1", "req/s", 1000)}
	new := []Result{row("pop3 mono c=1", "req/s", 700)} // -30%
	if regs := Compare(old, new, 0.5); len(regs) != 0 {
		t.Fatalf("within-threshold change flagged: %v", regs)
	}
	if regs := Compare(old, new, 0.2); len(regs) != 1 {
		t.Fatalf("beyond-threshold change not flagged: %v", regs)
	}
}

// TestCompareMissingRow: a baseline row absent from the new run is
// flagged — a shrunk benchmark must not read as a pass — while rows
// only the new run has (a grown benchmark) are fine.
func TestCompareMissingRow(t *testing.T) {
	old := []Result{row("sshd pooled c=4", "req/s", 500)}
	new := []Result{row("dnsd pooled c=4", "req/s", 800)}
	regs := Compare(old, new, 0.5)
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("regressions = %v, want one missing-row flag", regs)
	}
	if !strings.Contains(regs[0].String(), "missing") {
		t.Fatalf("missing-row rendering: %q", regs[0].String())
	}
}

// TestCompareCollapse: a rate that fell to zero is flagged no matter
// how wide the threshold — the subtractive "100% worse" cap must not
// hide it.
func TestCompareCollapse(t *testing.T) {
	old := []Result{row("httpd pooled c=4", "req/s", 1000)}
	new := []Result{row("httpd pooled c=4", "req/s", 0)}
	regs := Compare(old, new, 100)
	if len(regs) != 1 || !math.IsInf(regs[0].Delta, 1) {
		t.Fatalf("regressions = %v, want one infinite-delta collapse", regs)
	}
}

// TestCompareSkips: directionless units and zero baselines produce no
// verdict.
func TestCompareSkips(t *testing.T) {
	old := []Result{
		row("partitioning", "lines", 100),
		row("dead cell", "req/s", 0),
	}
	new := []Result{
		row("partitioning", "lines", 1),
	}
	if regs := Compare(old, new, 0.5); len(regs) != 0 {
		t.Fatalf("skippable rows flagged: %v", regs)
	}
}

// TestCompareKeyIncludesExperiment: same name under different
// experiments are different rows.
func TestCompareKeyIncludesExperiment(t *testing.T) {
	old := []Result{{Experiment: "table2", Name: "apache", Unit: "req/s", Value: 100}}
	new := []Result{{Experiment: "figpool", Name: "apache", Unit: "req/s", Value: 100}}
	regs := Compare(old, new, 0.5)
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("regressions = %v, want the table2 row reported missing", regs)
	}
}
