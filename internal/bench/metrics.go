// Partitioning metrics (§5.1 and §5.2): how much code runs privileged
// (inside callgates) versus unprivileged (inside sthreads), and how many
// distinct memory objects sit on the compartment boundaries.
//
// The paper reports, for Apache/OpenSSL: ≈16K lines in callgates vs ≈45K
// in sthreads (trusted code down by just under two-thirds), and 222 heap
// objects + 389 globals on the worker/master boundary; for OpenSSH: ≈3.3K
// vs ≈14K lines (privileged code down by over 75%).
//
// Here the code-size metric is computed from this repository's own
// sources with go/parser: functions whose code executes inside callgates
// are the privileged set; worker/handler bodies and the protocol code
// they call are the unprivileged set. The absolute line counts are those
// of the reimplementation, but the *fraction* — most code ends up
// unprivileged — is the reproducible claim. The object census comes from
// Crowbar traces of the instrumented Apache workload.

package bench

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"strings"

	"wedge/internal/crowbar"
	"wedge/internal/pin"
	"wedge/internal/spec"
)

// privilegedFuncs names the functions whose bodies execute inside
// callgates, per application.
var privilegedFuncs = map[string][]string{
	"httpd": {
		"makeSetupGate", "setupOps", "makeRecvFinished", "makeSendFinished",
		"makeSSLRead", "makeSSLWrite", "gateBody", "installSession",
	},
	"sshd": {
		"signGate", "passwordGate", "pubkeyGate", "skeyGate", "promote",
		"pamCheck", "readShadow", "readSKeyDB", "writeSKeyDB",
	},
}

// unprivilegedFuncs names the functions whose bodies execute inside
// worker/handler sthreads.
var unprivilegedFuncs = map[string][]string{
	"httpd": {
		"httpdWorkerBody", "handshakeBody", "handlerBody",
		"ServeStatic", "Stream",
	},
	"sshd": {
		"workerBody", "slaveBody", "serveSession",
		"WriteFrame", "ReadFrame", "ExpectFrame",
	},
}

// unprivilegedPkgs names whole protocol packages whose bulk executes in
// the unprivileged compartments, attributed to the sthread column as the
// paper attributes OpenSSL's bulk to Apache's worker (a few functions —
// premaster decryption, key derivation — execute in gates too; they are
// a rounding error at this granularity).
var unprivilegedPkgs = map[string][]string{
	"httpd": {"minissl"},
}

// countPackageLines sums the line counts of every function in a package.
func countPackageLines(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		for name, file := range pkg.Files {
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				total += fset.Position(fn.End()).Line - fset.Position(fn.Pos()).Line + 1
			}
		}
	}
	return total, nil
}

// CodeMetrics is the §5 partitioning summary for one application.
type CodeMetrics struct {
	App               string
	CallgateLines     int
	SthreadLines      int
	PrivilegedPercent float64
}

// sourceDir locates a sibling internal package's directory from this
// file's compiled location.
func sourceDir(pkg string) (string, error) {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("bench: cannot locate source tree")
	}
	return filepath.Join(filepath.Dir(filepath.Dir(thisFile)), pkg), nil
}

// countFuncLines parses every file of a package directory and returns the
// line counts of the named functions (methods match by name regardless of
// receiver).
func countFuncLines(dir string, names []string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		return 0, err
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	total := 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !want[fn.Name.Name] {
					continue
				}
				start := fset.Position(fn.Pos()).Line
				end := fset.Position(fn.End()).Line
				total += end - start + 1
			}
		}
	}
	return total, nil
}

// Metrics computes the code-size split for both applications.
func Metrics() ([]CodeMetrics, []Result, error) {
	var out []CodeMetrics
	var results []Result
	paperPriv := map[string]float64{"httpd": 16000.0 / (16000 + 45000) * 100, "sshd": 3300.0 / (3300 + 14000) * 100}
	for _, app := range []string{"httpd", "sshd"} {
		dir, err := sourceDir(app)
		if err != nil {
			return nil, nil, err
		}
		priv, err := countFuncLines(dir, privilegedFuncs[app])
		if err != nil {
			return nil, nil, err
		}
		unpriv, err := countFuncLines(dir, unprivilegedFuncs[app])
		if err != nil {
			return nil, nil, err
		}
		for _, pkg := range unprivilegedPkgs[app] {
			pdir, err := sourceDir(pkg)
			if err != nil {
				return nil, nil, err
			}
			n, err := countPackageLines(pdir)
			if err != nil {
				return nil, nil, err
			}
			unpriv += n
		}
		if priv == 0 || unpriv == 0 {
			return nil, nil, fmt.Errorf("bench: metric functions not found in %s", app)
		}
		m := CodeMetrics{
			App:               app,
			CallgateLines:     priv,
			SthreadLines:      unpriv,
			PrivilegedPercent: float64(priv) / float64(priv+unpriv) * 100,
		}
		out = append(out, m)
		results = append(results,
			Result{Experiment: "metrics", Name: app + " callgate lines", Value: float64(priv), Unit: "lines"},
			Result{Experiment: "metrics", Name: app + " sthread lines", Value: float64(unpriv), Unit: "lines"},
			Result{Experiment: "metrics", Name: app + " privileged %", Value: m.PrivilegedPercent, Unit: "%",
				PaperValue: paperPriv[app], PaperUnit: "%"},
		)
	}
	return out, results, nil
}

// ObjectCensus runs the instrumented Apache workload under cb-log and
// reports how many distinct memory items of each kind sit in the trace —
// the counterpart of the paper's "222 heap objects and 389 globals"
// observation about why Crowbar is indispensable.
func ObjectCensus() ([]Result, error) {
	p, err := pin.NewProc(pin.ModeCBLog)
	if err != nil {
		return nil, err
	}
	logger := crowbar.NewLogger()
	p.Attach(logger)
	w, err := spec.ByName("apache")
	if err != nil {
		return nil, err
	}
	if _, err := w.Run(p); err != nil {
		return nil, err
	}
	counts := logger.Trace().ItemCount()
	var results []Result
	for kind, label := range map[pin.SegKind]string{
		pin.SegGlobal: "globals", pin.SegHeap: "heap objects", pin.SegStack: "stack frames",
	} {
		results = append(results, Result{
			Experiment: "metrics", Name: "apache trace " + label,
			Value: float64(counts[kind]), Unit: "items",
		})
	}
	// The boundary enumeration the programmer would have to do by hand:
	// every item the request path touches.
	acc := logger.Trace().AccessedBy("ap_process_request")
	results = append(results, Result{
		Experiment: "metrics", Name: "apache request-path items",
		Value: float64(len(acc)), Unit: "items",
	})
	return results, nil
}
