package netsim

import (
	"fmt"
	"sync"
)

// Datagram is one packet in flight: a payload copy plus the sender's
// address label. Message boundaries are preserved — one WriteTo on the
// sending side is one ReadFrom on the receiving side.
type Datagram struct {
	From    string
	Payload []byte
}

// maxPacketQueue bounds a socket's receive queue. Datagrams arriving at
// a full queue are dropped silently, like UDP under a slow consumer.
const maxPacketQueue = 256

// PacketConn is a bound datagram socket. Unlike Conn there is no peer:
// every WriteTo names a destination and every ReadFrom reports a source,
// which is exactly what lets a serve runtime demultiplex principals
// per-packet instead of per-accept.
type PacketConn struct {
	net  *Network
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Datagram
	closed bool
}

// ListenPacket binds addr as a datagram socket. Stream and packet
// addresses share one namespace, mirroring a host where a port is a port.
func (n *Network) ListenPacket(addr string) (*PacketConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.packets[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	pc := &PacketConn{net: n, addr: addr}
	pc.cond = sync.NewCond(&pc.mu)
	if n.packets == nil {
		n.packets = make(map[string]*PacketConn)
	}
	n.packets[addr] = pc
	return pc, nil
}

// DialPacket binds an ephemeral client socket ("udp-<n>"): the datagram
// analogue of Dial's fresh "client-<n>" address, so each dial is a fresh
// principal from the server's point of view.
func (n *Network) DialPacket() (*PacketConn, error) {
	n.mu.Lock()
	n.dialSeq++
	addr := fmt.Sprintf("udp-%d", n.dialSeq)
	n.mu.Unlock()
	return n.ListenPacket(addr)
}

// Addr returns the bound address.
func (pc *PacketConn) Addr() string { return pc.addr }

// WriteTo sends one datagram to the socket bound at addr. Undeliverable
// packets (no such socket, closed socket, full queue) are dropped
// silently: datagram transports promise nothing, and the apps above must
// survive loss anyway. The payload is copied, so the caller may reuse b.
func (pc *PacketConn) WriteTo(b []byte, addr string) (int, error) {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return 0, ErrClosed
	}
	pc.mu.Unlock()

	pc.net.mu.Lock()
	dst := pc.net.packets[addr]
	pc.net.mu.Unlock()
	if dst == nil {
		return len(b), nil
	}
	dst.mu.Lock()
	if !dst.closed && len(dst.queue) < maxPacketQueue {
		dst.queue = append(dst.queue, Datagram{From: pc.addr, Payload: append([]byte(nil), b...)})
		dst.cond.Broadcast()
	}
	dst.mu.Unlock()
	return len(b), nil
}

// ReadFrom blocks for the next datagram and copies its payload into b,
// reporting the byte count and the sender's address. A payload longer
// than b is truncated, UDP-style — the rest of that datagram is lost,
// not carried over to the next read.
func (pc *PacketConn) ReadFrom(b []byte) (int, string, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for len(pc.queue) == 0 {
		if pc.closed {
			return 0, "", ErrClosed
		}
		pc.cond.Wait()
	}
	d := pc.queue[0]
	pc.queue = pc.queue[1:]
	return copy(b, d.Payload), d.From, nil
}

// Close unbinds the socket and wakes blocked readers with ErrClosed.
// Queued-but-unread datagrams are discarded.
func (pc *PacketConn) Close() error {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return nil
	}
	pc.closed = true
	pc.queue = nil
	pc.cond.Broadcast()
	pc.mu.Unlock()

	pc.net.mu.Lock()
	if pc.net.packets[pc.addr] == pc {
		delete(pc.net.packets, pc.addr)
	}
	pc.net.mu.Unlock()
	return nil
}
