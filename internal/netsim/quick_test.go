// Property-based tests over the simulated network: stream integrity under
// arbitrary chunkings, tap completeness, and close semantics.

package netsim

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"testing/quick"
)

// TestStreamIntegrityProperty: bytes written as arbitrary chunks on one
// end arrive intact, in order, and exactly once on the other end,
// regardless of chunk boundaries — both directions at once.
func TestStreamIntegrityProperty(t *testing.T) {
	prop := func(c2s, s2c [][]byte) bool {
		net := New()
		l, err := net.Listen("peer:1")
		if err != nil {
			return false
		}
		defer l.Close()

		accepted := make(chan *Conn, 1)
		go func() {
			c, err := l.Accept()
			if err == nil {
				accepted <- c
			}
		}()
		client, err := net.Dial("peer:1")
		if err != nil {
			return false
		}
		server := <-accepted

		var want1, want2 bytes.Buffer
		for _, c := range c2s {
			want1.Write(c)
		}
		for _, c := range s2c {
			want2.Write(c)
		}

		var wg sync.WaitGroup
		var got1, got2 []byte
		var err1, err2 error
		wg.Add(2)
		go func() {
			defer wg.Done()
			for _, chunk := range c2s {
				if _, err := client.Write(chunk); err != nil {
					err1 = err
					return
				}
			}
			client.CloseWrite()
		}()
		go func() {
			defer wg.Done()
			for _, chunk := range s2c {
				if _, err := server.Write(chunk); err != nil {
					err2 = err
					return
				}
			}
			server.CloseWrite()
		}()
		got1, rerr1 := io.ReadAll(server)
		got2, rerr2 := io.ReadAll(client)
		wg.Wait()
		client.Close()
		server.Close()
		return err1 == nil && err2 == nil && rerr1 == nil && rerr2 == nil &&
			bytes.Equal(got1, want1.Bytes()) && bytes.Equal(got2, want2.Bytes())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTapSeesEverythingProperty: a tap installed on the listen address
// observes exactly the bytes each side sent, per direction — the
// eavesdropper premise of §5.1's threat model.
func TestTapSeesEverythingProperty(t *testing.T) {
	prop := func(c2s, s2c []byte) bool {
		net := New()
		l, err := net.Listen("tapped:443")
		if err != nil {
			return false
		}
		defer l.Close()

		var mu sync.Mutex
		var sawC2S, sawS2C bytes.Buffer
		net.Tap("tapped:443", func(dir Direction, data []byte) {
			mu.Lock()
			defer mu.Unlock()
			if dir == ClientToServer {
				sawC2S.Write(data)
			} else {
				sawS2C.Write(data)
			}
		})

		done := make(chan struct{})
		go func() {
			defer close(done)
			c, err := l.Accept()
			if err != nil {
				return
			}
			io.Copy(io.Discard, c) // drain client bytes
			c.Write(s2c)
			c.Close()
		}()
		client, err := net.Dial("tapped:443")
		if err != nil {
			return false
		}
		client.Write(c2s)
		client.CloseWrite()
		io.Copy(io.Discard, client)
		client.Close()
		<-done

		mu.Lock()
		defer mu.Unlock()
		return bytes.Equal(sawC2S.Bytes(), c2s) && bytes.Equal(sawS2C.Bytes(), s2c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReadAfterPeerClose: reads drain buffered data before reporting EOF.
func TestReadAfterPeerClose(t *testing.T) {
	net := New()
	l, err := net.Listen("drain:1")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.Write([]byte("last words"))
		c.Close()
	}()
	client, err := net.Dial("drain:1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "last words" {
		t.Fatalf("drained %q", got)
	}
	if n, err := client.Read(make([]byte, 1)); n != 0 || err != io.EOF {
		t.Fatalf("after drain: n=%d err=%v", n, err)
	}
}

// TestWriteAfterCloseErrors: writing on a closed connection fails rather
// than silently dropping data.
func TestWriteAfterCloseErrors(t *testing.T) {
	net := New()
	l, err := net.Listen("closed:1")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if c, err := l.Accept(); err == nil {
			c.Close()
		}
	}()
	client, err := net.Dial("closed:1")
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if _, err := client.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}
