package netsim

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

func TestDialListen(t *testing.T) {
	n := New()
	l, err := n.Listen("server:443")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 5)
		if _, err := io.ReadFull(s, buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := s.Write(bytes.ToUpper(buf)); err != nil {
			t.Errorf("server write: %v", err)
		}
		s.Close()
	}()
	c, err := n.Dial("server:443")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "HELLO" {
		t.Fatalf("got %q", got)
	}
	<-done
}

func TestDialRefused(t *testing.T) {
	n := New()
	if _, err := n.Dial("nobody:1"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("want refused, got %v", err)
	}
}

func TestAddrInUse(t *testing.T) {
	n := New()
	if _, err := n.Listen("a:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a:1"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("want in-use, got %v", err)
	}
}

func TestListenerClose(t *testing.T) {
	n := New()
	l, _ := n.Listen("a:1")
	errc := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errc <- err
	}()
	l.Close()
	if err := <-errc; !errors.Is(err, ErrListenerDown) {
		t.Fatalf("accept after close: %v", err)
	}
	// Address is released.
	if _, err := n.Listen("a:1"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	// Double close is fine.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEOFAfterClose(t *testing.T) {
	n := New()
	l, _ := n.Listen("a:1")
	go func() {
		s, _ := l.Accept()
		s.Write([]byte("bye"))
		s.Close()
	}()
	c, err := n.Dial("a:1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "bye" {
		t.Fatalf("got %q", got)
	}
	if _, err := c.Write([]byte("x")); err == nil {
		// Write after peer closed read side: allowed to fail lazily, but
		// a second write must fail once close has propagated.
		c.Close()
		if _, err := c.Write([]byte("y")); err == nil {
			t.Fatal("write after close succeeded")
		}
	}
}

func TestAddrs(t *testing.T) {
	n := New()
	l, _ := n.Listen("srv:80")
	go func() {
		s, _ := l.Accept()
		if s.LocalAddr() != "srv:80" {
			t.Errorf("server local = %q", s.LocalAddr())
		}
		s.Close()
	}()
	c, _ := n.Dial("srv:80")
	if c.RemoteAddr() != "srv:80" {
		t.Fatalf("client remote = %q", c.RemoteAddr())
	}
	c.Close()
}

func TestTapSeesTraffic(t *testing.T) {
	n := New()
	var mu sync.Mutex
	var c2s, s2c []byte
	n.Tap("srv:443", func(dir Direction, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		if dir == ClientToServer {
			c2s = append(c2s, data...)
		} else {
			s2c = append(s2c, data...)
		}
	})
	l, _ := n.Listen("srv:443")
	go func() {
		s, _ := l.Accept()
		buf := make([]byte, 7)
		io.ReadFull(s, buf)
		s.Write([]byte("response"))
		s.Close()
	}()
	c, _ := n.Dial("srv:443")
	c.Write([]byte("request"))
	io.ReadAll(c)
	c.Close()
	mu.Lock()
	defer mu.Unlock()
	if string(c2s) != "request" || string(s2c) != "response" {
		t.Fatalf("tap saw %q / %q", c2s, s2c)
	}
}

func TestPassiveMITMForwardsAndRecords(t *testing.T) {
	n := New()
	l, _ := n.Listen("srv:443")
	go func() {
		for {
			s, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4)
				if _, err := io.ReadFull(s, buf); err == nil {
					s.Write(append([]byte("ok:"), buf...))
				}
				s.Close()
			}()
		}
	}()

	var mu sync.Mutex
	var recorded []byte
	n.Interpose("srv:443", PassiveMITM(func(dir Direction, b []byte) {
		mu.Lock()
		recorded = append(recorded, b...)
		mu.Unlock()
	}))

	c, err := n.Dial("srv:443")
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("ping"))
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok:ping" {
		t.Fatalf("through MITM got %q", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Contains(recorded, []byte("ping")) || !bytes.Contains(recorded, []byte("ok:ping")) {
		t.Fatalf("MITM failed to record traffic: %q", recorded)
	}
}

func TestActiveMITMModifies(t *testing.T) {
	n := New()
	l, _ := n.Listen("srv:80")
	go func() {
		s, _ := l.Accept()
		buf := make([]byte, 5)
		io.ReadFull(s, buf)
		s.Write(buf)
		s.Close()
	}()
	// An interposer that flips the payload to demonstrate injection.
	n.Interpose("srv:80", func(clientLeg *Conn, dialServer func() (*Conn, error)) {
		serverLeg, err := dialServer()
		if err != nil {
			clientLeg.Close()
			return
		}
		go Relay(serverLeg, clientLeg, nil)
		Relay(clientLeg, serverLeg, func(b []byte) []byte {
			return bytes.ToUpper(b)
		})
		clientLeg.Close()
		serverLeg.Close()
	})
	c, _ := n.Dial("srv:80")
	c.Write([]byte("quiet"))
	got := make([]byte, 5)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "QUIET" {
		t.Fatalf("MITM injection not observed: %q", got)
	}
}

func TestInterposeRemoval(t *testing.T) {
	n := New()
	l, _ := n.Listen("srv:80")
	go func() {
		for {
			s, err := l.Accept()
			if err != nil {
				return
			}
			s.Write([]byte("direct"))
			s.Close()
		}
	}()
	n.Interpose("srv:80", PassiveMITM(nil))
	n.Interpose("srv:80", nil) // remove
	c, _ := n.Dial("srv:80")
	got, _ := io.ReadAll(c)
	if string(got) != "direct" {
		t.Fatalf("got %q", got)
	}
}

func TestLargeTransfer(t *testing.T) {
	n := New()
	l, _ := n.Listen("bulk:1")
	const size = 1 << 20
	go func() {
		s, _ := l.Accept()
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i)
		}
		s.Write(data)
		s.Close()
	}()
	c, _ := n.Dial("bulk:1")
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != size {
		t.Fatalf("got %d bytes, want %d", len(got), size)
	}
	for i := 0; i < size; i += 4099 {
		if got[i] != byte(i) {
			t.Fatalf("corrupt byte at %d", i)
		}
	}
}

func TestHalfClose(t *testing.T) {
	n := New()
	l, _ := n.Listen("hc:1")
	go func() {
		s, _ := l.Accept()
		// Echo everything until EOF, then close.
		data, _ := io.ReadAll(s)
		s.Write(data)
		s.Close()
	}()
	c, _ := n.Dial("hc:1")
	c.Write([]byte("all of it"))
	c.CloseWrite()
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "all of it" {
		t.Fatalf("got %q", got)
	}
}
