package netsim

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestPacketRoundTrip(t *testing.T) {
	n := New()
	srv, err := n.ListenPacket("dns-server")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := n.DialPacket()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.WriteTo([]byte("query"), "dns-server"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	got, from, err := srv.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:got]) != "query" || from != cli.Addr() {
		t.Fatalf("ReadFrom = %q from %q, want %q from %q", buf[:got], from, "query", cli.Addr())
	}
	// Reply to the reported source address.
	if _, err := srv.WriteTo([]byte("answer"), from); err != nil {
		t.Fatal(err)
	}
	got, from, err = cli.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:got]) != "answer" || from != "dns-server" {
		t.Fatalf("reply = %q from %q", buf[:got], from)
	}
}

// TestPacketBoundaries: two writes are two reads, never coalesced, and a
// short read buffer truncates the datagram rather than buffering a tail.
func TestPacketBoundaries(t *testing.T) {
	n := New()
	srv, _ := n.ListenPacket("s")
	cli, _ := n.DialPacket()
	cli.WriteTo([]byte("aaaa"), "s")
	cli.WriteTo([]byte("bb"), "s")
	buf := make([]byte, 2)
	got, _, _ := srv.ReadFrom(buf)
	if !bytes.Equal(buf[:got], []byte("aa")) {
		t.Fatalf("first read = %q, want truncated \"aa\"", buf[:got])
	}
	got, _, _ = srv.ReadFrom(buf)
	if !bytes.Equal(buf[:got], []byte("bb")) {
		t.Fatalf("second read = %q, want \"bb\" (no carry-over)", buf[:got])
	}
}

// TestPacketDrop: writes to unbound addresses succeed and vanish.
func TestPacketDrop(t *testing.T) {
	n := New()
	cli, _ := n.DialPacket()
	if _, err := cli.WriteTo([]byte("x"), "nobody-home"); err != nil {
		t.Fatalf("write to unbound addr: %v (want silent drop)", err)
	}
}

// TestPacketClose: Close wakes a blocked reader with ErrClosed, frees
// the address for rebinding, and later writes to the socket fail.
func TestPacketClose(t *testing.T) {
	n := New()
	srv, _ := n.ListenPacket("s")
	done := make(chan error, 1)
	go func() {
		_, _, err := srv.ReadFrom(make([]byte, 8))
		done <- err
	}()
	srv.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked ReadFrom after Close: %v, want ErrClosed", err)
	}
	if _, err := srv.WriteTo([]byte("x"), "s"); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteTo after Close: %v, want ErrClosed", err)
	}
	if _, err := n.ListenPacket("s"); err != nil {
		t.Fatalf("rebind after Close: %v", err)
	}
}

// TestPacketAddrNamespace: stream and packet binds share one namespace.
func TestPacketAddrNamespace(t *testing.T) {
	n := New()
	if _, err := n.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.ListenPacket("a"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("packet bind over stream bind: %v, want ErrAddrInUse", err)
	}
	if _, err := n.ListenPacket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("b"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("stream bind over packet bind: %v, want ErrAddrInUse", err)
	}
}

// TestPacketConcurrent: many senders, one receiver, all datagrams that
// fit the queue arrive intact (race test under -race).
func TestPacketConcurrent(t *testing.T) {
	n := New()
	srv, _ := n.ListenPacket("s")
	const senders, per = 8, 16
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, _ := n.DialPacket()
			for j := 0; j < per; j++ {
				cli.WriteTo([]byte("m"), "s")
			}
		}()
	}
	wg.Wait()
	buf := make([]byte, 8)
	for i := 0; i < senders*per; i++ {
		if _, _, err := srv.ReadFrom(buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}
