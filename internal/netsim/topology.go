// Multi-host topology: named network segments for cluster tests. A
// single Network models one segment's address space; a cluster test
// needs several — each backend runtime listens on its own host, and the
// director is the only component that spans them (it dials backends on
// their hosts while serving clients on the front host). Keeping the
// segments separate is what makes the test honest: a client on the front
// host cannot name a backend address at all, so any byte that reaches a
// backend provably went through the director.

package netsim

import (
	"fmt"
	"sync"
)

// Topology is a set of named hosts, each an isolated Network segment.
// The zero value is not ready; use NewTopology. All methods are safe for
// concurrent use.
type Topology struct {
	mu    sync.Mutex
	hosts map[string]*Network
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{hosts: make(map[string]*Network)}
}

// Host returns the named host's network segment, creating it on first
// use.
func (t *Topology) Host(name string) *Network {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.hosts[name]
	if !ok {
		n = New()
		t.hosts[name] = n
	}
	return n
}

// Dial connects to addr on the named host.
func (t *Topology) Dial(host, addr string) (*Conn, error) {
	t.mu.Lock()
	n, ok := t.hosts[host]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: no host %q", ErrConnRefused, host)
	}
	return n.Dial(addr)
}
