// Package netsim is the simulated network testbed: in-memory, full-duplex,
// stream-oriented connections between named endpoints, with two attacker
// facilities the paper's threat models need (§5.1): passive wire taps
// (eavesdropping entire SSL connections) and active interposition (the
// man-in-the-middle, who can eavesdrop on, forward, and inject messages in
// both directions).
package netsim

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Common errors.
var (
	ErrClosed       = errors.New("netsim: connection closed")
	ErrAddrInUse    = errors.New("netsim: address already in use")
	ErrConnRefused  = errors.New("netsim: connection refused")
	ErrListenerDown = errors.New("netsim: listener closed")
)

// Direction labels traffic for taps.
type Direction int

const (
	// ClientToServer is traffic from the dialing side to the listener.
	ClientToServer Direction = iota
	// ServerToClient is traffic from the listener to the dialing side.
	ServerToClient
)

func (d Direction) String() string {
	if d == ClientToServer {
		return "c->s"
	}
	return "s->c"
}

// pipe is one unidirectional buffered byte stream. Unread bytes live in
// buf[off:]; when a read drains the pipe the buffer rewinds to its base
// so steady-state request/response traffic reuses one allocation instead
// of crawling append's capacity forward on every exchange.
type pipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	off    int
	wclose bool // writer closed: drain then EOF
	rclose bool // reader closed: writes fail
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.off == len(p.buf) {
		if p.rclose {
			return 0, ErrClosed
		}
		if p.wclose {
			return 0, io.EOF
		}
		p.cond.Wait()
	}
	n := copy(b, p.buf[p.off:])
	p.off += n
	if p.off == len(p.buf) {
		p.buf = p.buf[:0]
		p.off = 0
	}
	return n, nil
}

func (p *pipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wclose || p.rclose {
		return 0, ErrClosed
	}
	p.buf = append(p.buf, b...)
	// One waiter is enough: whoever wakes drains the buffer, and every
	// later write signals again. Close paths still broadcast so every
	// blocked reader observes EOF.
	p.cond.Signal()
	return len(b), nil
}

func (p *pipe) closeWrite() {
	p.mu.Lock()
	p.wclose = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *pipe) closeRead() {
	p.mu.Lock()
	p.rclose = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Conn is one endpoint of a simulated full-duplex connection. It satisfies
// the subset of net.Conn the applications use (Read, Write, Close, address
// accessors); deadlines are not modelled.
type Conn struct {
	r, w       *pipe
	local      string
	remote     string
	tap        TapFunc
	dir        Direction // direction of writes from this endpoint
	closeOnce  sync.Once
	onClose    func()
	closedFlag sync.Once
}

// TapFunc observes bytes crossing the wire. It must not retain the slice.
type TapFunc func(dir Direction, data []byte)

// Read reads from the connection.
func (c *Conn) Read(b []byte) (int, error) { return c.r.Read(b) }

// Write writes to the connection, invoking any wire tap first.
func (c *Conn) Write(b []byte) (int, error) {
	if c.tap != nil {
		c.tap(c.dir, b)
	}
	return c.w.Write(b)
}

// Close shuts down both directions.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.w.closeWrite()
		c.r.closeRead()
		if c.onClose != nil {
			c.onClose()
		}
	})
	return nil
}

// CloseWrite half-closes the sending direction (like shutdown(SHUT_WR)).
func (c *Conn) CloseWrite() { c.w.closeWrite() }

// DrainPending returns (and consumes) any bytes already buffered in the
// receive direction, without blocking. After Close, Read reports
// ErrClosed even when buffered bytes remain — the right semantics for a
// dead peer, but a session-handoff relay needs those pipelined bytes:
// they were sent by the client before the pause and belong to the
// session at its new home. Safe concurrently with the peer's writes;
// callers serialize with their own reads.
func (c *Conn) DrainPending() []byte {
	p := c.r
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.off == len(p.buf) {
		return nil
	}
	out := append([]byte(nil), p.buf[p.off:]...)
	p.buf = p.buf[:0]
	p.off = 0
	return out
}

// LocalAddr returns the endpoint's own address label.
func (c *Conn) LocalAddr() string { return c.local }

// RemoteAddr returns the peer's address label.
func (c *Conn) RemoteAddr() string { return c.remote }

// connPair builds two connected endpoints. tap observes all traffic.
func connPair(clientAddr, serverAddr string, tap TapFunc) (client, server *Conn) {
	c2s := newPipe()
	s2c := newPipe()
	client = &Conn{r: s2c, w: c2s, local: clientAddr, remote: serverAddr, tap: tap, dir: ClientToServer}
	server = &Conn{r: c2s, w: s2c, local: serverAddr, remote: clientAddr, tap: tap, dir: ServerToClient}
	return client, server
}

// Pipe builds a connected pair outside any Network — the cluster
// director's tool for splicing a fresh backend leg to a runtime it
// reaches directly rather than through a listener.
func Pipe(clientAddr, serverAddr string) (client, server *Conn) {
	return connPair(clientAddr, serverAddr, nil)
}

// Listener accepts inbound connections for a bound address.
type Listener struct {
	net    *Network
	addr   string
	mu     sync.Mutex
	queue  chan *Conn
	closed bool
}

// Accept blocks for the next inbound connection.
func (l *Listener) Accept() (*Conn, error) {
	c, ok := <-l.queue
	if !ok {
		return nil, ErrListenerDown
	}
	return c, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.addr }

// Close unbinds the address and wakes pending Accepts.
func (l *Listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	close(l.queue)
	l.net.mu.Lock()
	if l.net.listeners[l.addr] == l {
		delete(l.net.listeners, l.addr)
	}
	l.net.mu.Unlock()
	return nil
}

func (l *Listener) deliver(c *Conn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrConnRefused
	}
	l.queue <- c
	return nil
}

// Interposer is an active man-in-the-middle. When installed on an address,
// every new connection to that address is routed to the Interposer instead:
// it receives the client-facing leg and a dialer for the genuine server, so
// it can forward, record, modify, or inject traffic in either direction.
type Interposer func(clientLeg *Conn, dialServer func() (*Conn, error))

// Network is a simulated network segment.
type Network struct {
	mu          sync.Mutex
	listeners   map[string]*Listener
	packets     map[string]*PacketConn
	taps        map[string]TapFunc
	interposers map[string]Interposer
	dialSeq     int
}

// New returns an empty network.
func New() *Network {
	return &Network{
		listeners:   make(map[string]*Listener),
		packets:     make(map[string]*PacketConn),
		taps:        make(map[string]TapFunc),
		interposers: make(map[string]Interposer),
	}
}

// Listen binds addr.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	if _, ok := n.packets[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &Listener{net: n, addr: addr, queue: make(chan *Conn, 64)}
	n.listeners[addr] = l
	return l, nil
}

// Tap installs a passive eavesdropper on all future connections to addr.
// This models the simple threat model of §5.1.1 (attacker "can eavesdrop
// on entire SSL connections").
func (n *Network) Tap(addr string, tap TapFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.taps[addr] = tap
}

// Interpose installs a man-in-the-middle on addr (§5.1.2 threat model).
// Passing nil removes it.
func (n *Network) Interpose(addr string, mitm Interposer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if mitm == nil {
		delete(n.interposers, addr)
		return
	}
	n.interposers[addr] = mitm
}

// Dial connects to addr, returning the client endpoint.
func (n *Network) Dial(addr string) (*Conn, error) {
	n.mu.Lock()
	n.dialSeq++
	clientAddr := fmt.Sprintf("client-%d", n.dialSeq)
	mitm := n.interposers[addr]
	tap := n.taps[addr]
	l := n.listeners[addr]
	n.mu.Unlock()

	if mitm != nil {
		// Hand the client a leg terminated by the interposer; give the
		// interposer a dialer that bypasses interposition (so it can
		// reach the genuine server).
		clientLeg, mitmLeg := connPair(clientAddr, addr, tap)
		dialServer := func() (*Conn, error) { return n.dialDirect(addr) }
		go mitm(mitmLeg, dialServer)
		return clientLeg, nil
	}
	if l == nil {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	client, server := connPair(clientAddr, addr, tap)
	if err := l.deliver(server); err != nil {
		return nil, err
	}
	return client, nil
}

// dialDirect connects to the real listener, ignoring interposers.
func (n *Network) dialDirect(addr string) (*Conn, error) {
	n.mu.Lock()
	n.dialSeq++
	clientAddr := fmt.Sprintf("mitm-%d", n.dialSeq)
	tap := n.taps[addr]
	l := n.listeners[addr]
	n.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	client, server := connPair(clientAddr, addr, tap)
	if err := l.deliver(server); err != nil {
		return nil, err
	}
	return client, nil
}

// Relay copies bytes from src to dst until EOF, optionally passing each
// chunk through transform (which may return a modified copy). It is the
// building block interposers use for forwarding.
func Relay(dst, src *Conn, transform func([]byte) []byte) error {
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if transform != nil {
				chunk = transform(chunk)
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return werr
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				dst.CloseWrite()
				return nil
			}
			return err
		}
	}
}

// PassiveMITM returns an Interposer that forwards traffic unmodified while
// recording it with tap — the "passively passes messages as-is" attack of
// §5.1.2 where the attacker waits for an exploited worker to leak the
// session key.
func PassiveMITM(tap TapFunc) Interposer {
	return func(clientLeg *Conn, dialServer func() (*Conn, error)) {
		serverLeg, err := dialServer()
		if err != nil {
			clientLeg.Close()
			return
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = Relay(serverLeg, clientLeg, func(b []byte) []byte {
				if tap != nil {
					tap(ClientToServer, b)
				}
				return b
			})
		}()
		go func() {
			defer wg.Done()
			_ = Relay(clientLeg, serverLeg, func(b []byte) []byte {
				if tap != nil {
					tap(ServerToClient, b)
				}
				return b
			})
		}()
		wg.Wait()
		clientLeg.Close()
		serverLeg.Close()
	}
}
