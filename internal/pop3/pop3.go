// Package pop3 implements the paper's motivating example (§2, Figure 1):
// a POP3 server split into a client-handler compartment that parses
// untrusted network input, a login callgate with access to the password
// database, and an e-mail retriever callgate that only returns mail for
// the uid the login gate recorded.
//
// Because of this partitioning, "an exploit within the client handler
// cannot reveal any passwords or e-mails, since it has no access to them.
// Authentication cannot be skipped since the e-mail retriever will only
// read e-mails of the user id specified in uid, and this can only be set
// by the login component." Both properties are executable tests here.
//
// A monolithic variant exists for contrast: one compartment, passwords
// and mailboxes in plain reach of the parser.
package pop3

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"wedge/internal/gateabi"
	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// Mailbox is one user's account: credentials plus stored messages.
type Mailbox struct {
	User     string
	Password string
	UID      int
	Messages []string
}

// The shared argument-block schema (client handler <-> gates). The
// layout is computed from these declarations and the typed handles are
// the only way handler and gate code touches the block. p3RetrCap keeps
// the pre-schema wire bound: a message the partitioned server delivers
// is never one the pooled server rejects, and the codec guarantees a
// maximum-size message cannot overwrite the demux words mid-session.
const (
	p3StrCap  = 200  // login credential ("user\x00pass") bound
	p3RetrCap = 1656 // RETR output bound (both builds)
)

var (
	p3SchemaB = gateabi.NewSchema("pop3")

	fStr    = gateabi.Bytes(p3SchemaB, "str", p3StrCap)  // user\x00pass for login
	fMsgNum = gateabi.Word[int](p3SchemaB, "msg_num")    // RETR argument
	fOut    = gateabi.Bytes(p3SchemaB, "out", p3RetrCap) // gate output
	// The demux words register by declaration; the serve runtime reaches
	// them through Schema.ConnIDOff/FDOff, not through handles.
	_        = gateabi.ConnID(p3SchemaB)
	_        = gateabi.FD(p3SchemaB)
	p3Schema = p3SchemaB.Seal()
)

// GateSchema exposes the argument-block schema (for the conformance
// battery and the cross-app FuzzGateABI harness).
func GateSchema() *gateabi.Schema { return p3Schema }

// Stats counts server activity.
type Stats struct {
	Logins    atomic.Uint64
	Fails     atomic.Uint64
	Retrieved atomic.Uint64
}

// Hooks injects exploit code into the client-handler compartment.
type Hooks struct {
	Handler func(s *sthread.Sthread, ctx *ConnContext)
}

// ConnContext is the injected code's knowledge of the process layout.
type ConnContext struct {
	FD        int
	PwdAddr   vm.Addr // password database location (tagged)
	MailAddr  vm.Addr // mail store location (tagged)
	UIDAddr   vm.Addr // the uid cell the login gate writes
	ArgAddr   vm.Addr
	LoginSpec *policy.GateSpec
	StatSpec  *policy.GateSpec
	RetrSpec  *policy.GateSpec
}

// store is the provisioned privileged data shared by the partitioned and
// pooled servers: the password database and the mail store, each in its
// own tag.
type store struct {
	pwdTag  tags.Tag
	pwdAddr vm.Addr
	mailTag tags.Tag
	// mailAddrs maps (uid, msg) to the smalloc'd message address.
	mailAddrs map[int][]vm.Addr
	mailBase  vm.Addr
}

// release retires the store's tags; used when a constructor fails after
// provisioning, so retries do not accumulate stranded tags.
func (st *store) release(root *sthread.Sthread) {
	for _, t := range []tags.Tag{st.pwdTag, st.mailTag} {
		if t != tags.NoTag {
			root.App().Tags.TagDelete(t)
		}
	}
}

// newStore provisions the password database and mail store into tagged
// memory. On failure nothing provisioned survives.
func newStore(root *sthread.Sthread, boxes []Mailbox) (*store, error) {
	st := &store{mailAddrs: make(map[int][]vm.Addr)}
	var err error
	if st.pwdTag, err = root.App().Tags.TagNew(root.Task); err != nil {
		return nil, err
	}
	// Password database: "user:pass:uid\n" lines in one block.
	var db strings.Builder
	for _, b := range boxes {
		fmt.Fprintf(&db, "%s:%s:%d\n", b.User, b.Password, b.UID)
	}
	if st.pwdAddr, err = root.Smalloc(st.pwdTag, 8+db.Len()); err != nil {
		st.release(root)
		return nil, err
	}
	root.Store64(st.pwdAddr, uint64(db.Len()))
	root.Write(st.pwdAddr+8, []byte(db.String()))

	if st.mailTag, err = root.App().Tags.TagNew(root.Task); err != nil {
		st.release(root)
		return nil, err
	}
	for _, b := range boxes {
		for _, msg := range b.Messages {
			addr, err := root.Smalloc(st.mailTag, 8+len(msg))
			if err != nil {
				st.release(root)
				return nil, err
			}
			root.Store64(addr, uint64(len(msg)))
			root.Write(addr+8, []byte(msg))
			st.mailAddrs[b.UID] = append(st.mailAddrs[b.UID], addr)
			if st.mailBase == 0 {
				st.mailBase = addr
			}
		}
	}
	return st, nil
}

// checkLogin validates the credentials in the argument block against the
// password database reachable through the trusted argument, returning the
// authenticated uid. Shared by the per-connection login gate (which
// records the uid in the tagged uid cell) and the pooled login gate
// (which records it in the connection's gate-side state).
func checkLogin(g *sthread.Sthread, arg, trusted vm.Addr, stats *Stats) (int, bool) {
	buf, err := fStr.Load(g, arg)
	if err != nil || len(buf) == 0 {
		return 0, false
	}
	user, pass, ok := strings.Cut(string(buf), "\x00")
	if !ok {
		return 0, false
	}
	dbLen := g.Load64(trusted)
	db := make([]byte, dbLen)
	g.Read(trusted+8, db)
	for _, line := range strings.Split(strings.TrimSpace(string(db)), "\n") {
		f := strings.Split(line, ":")
		if len(f) != 3 || f[0] != user || f[1] != pass {
			continue
		}
		var uid int
		fmt.Sscanf(f[2], "%d", &uid)
		stats.Logins.Add(1)
		return uid, true
	}
	stats.Fails.Add(1)
	return 0, false
}

// pwdCache is a recycled login gate's parse of the password database:
// read once through the gate's own (tagged, PermRead) view and kept in
// the gate's private memory, exactly as a long-lived gate process would
// hold its parsed config. A per-connection gate gains nothing from it —
// it dies after one invocation — so only the pooled build uses one.
type pwdCache struct {
	once  sync.Once
	creds map[string]pwdEntry
}

type pwdEntry struct {
	pass string
	uid  int
}

// checkLoginCached is checkLogin against the gate-held parse.
func (pc *pwdCache) checkLogin(g *sthread.Sthread, arg, trusted vm.Addr, stats *Stats) (int, bool) {
	pc.once.Do(func() {
		pc.creds = make(map[string]pwdEntry)
		dbLen := g.Load64(trusted)
		db := make([]byte, dbLen)
		g.Read(trusted+8, db)
		for _, line := range strings.Split(strings.TrimSpace(string(db)), "\n") {
			f := strings.Split(line, ":")
			if len(f) != 3 {
				continue
			}
			uid, err := strconv.Atoi(f[2])
			if err != nil {
				continue
			}
			pc.creds[f[0]] = pwdEntry{pass: f[1], uid: uid}
		}
	})
	buf, err := fStr.Load(g, arg)
	if err != nil || len(buf) == 0 {
		return 0, false
	}
	user, pass, ok := bytes.Cut(buf, []byte{0})
	if !ok {
		return 0, false
	}
	e, ok := pc.creds[string(user)]
	if !ok || e.pass != string(pass) {
		stats.Fails.Add(1)
		return 0, false
	}
	stats.Logins.Add(1)
	return e.uid, true
}

// statFor returns the message count for the authenticated uid.
func (st *store) statFor(uid int) vm.Addr {
	if uid == 0 {
		return 0
	}
	return vm.Addr(len(st.mailAddrs[uid]))
}

// retrFor copies one message of the authenticated uid into the shared
// output area, refusing anything that would overflow the output field.
// The uid comes from state only the login gate can set — authentication
// cannot be skipped.
func (st *store) retrFor(g *sthread.Sthread, arg vm.Addr, uid int, stats *Stats) vm.Addr {
	if uid == 0 {
		return 0
	}
	num := fMsgNum.Load(g, arg)
	msgs := st.mailAddrs[uid]
	if num < 1 || num > len(msgs) {
		return 0
	}
	addr := msgs[num-1]
	n := g.Load64(addr)
	// Refuse an over-capacity message before copying it — the same bound
	// the codec enforces on Store, checked early so a rejected RETR
	// costs no allocation or read.
	if n > uint64(fOut.Cap()) {
		return 0
	}
	body := make([]byte, n)
	g.Read(addr+8, body)
	if fOut.Store(g, arg, body) != nil {
		return 0
	}
	stats.Retrieved.Add(1)
	return 1
}

// Server is the partitioned POP3 server of Figure 1.
type Server struct {
	Stats Stats

	// HandlerMemPages, when non-zero, caps each client handler's
	// additional memory mappings (policy.SC.MemPages) — the DoS
	// mitigation extending §7: an exploited parser cannot exhaust server
	// memory.
	HandlerMemPages int

	root  *sthread.Sthread
	boxes []Mailbox
	hooks Hooks

	*store
}

// New provisions the password database and mail store into tagged memory.
func New(root *sthread.Sthread, boxes []Mailbox, hooks Hooks) (*Server, error) {
	st, err := newStore(root, boxes)
	if err != nil {
		return nil, err
	}
	return &Server{root: root, boxes: boxes, hooks: hooks, store: st}, nil
}

// loginGate checks credentials against the password database (trusted
// argument) and records the authenticated uid in the uid cell. Only this
// gate can write the cell.
func (s *Server) loginGate(uidCell vm.Addr) sthread.GateFunc {
	stats := &s.Stats
	return func(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
		uid, ok := checkLogin(g, arg, trusted, stats)
		if !ok {
			return 0
		}
		g.Store64(uidCell, uint64(uid))
		return 1
	}
}

// statGate returns the message count for the authenticated uid.
func (s *Server) statGate(uidCell vm.Addr) sthread.GateFunc {
	return func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
		return s.statFor(int(g.Load64(uidCell)))
	}
}

// retrGate copies one message of the authenticated uid into the shared
// output area. The uid comes from the cell only the login gate can set —
// authentication cannot be skipped.
func (s *Server) retrGate(uidCell vm.Addr) sthread.GateFunc {
	stats := &s.Stats
	return func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
		return s.retrFor(g, arg, int(g.Load64(uidCell)), stats)
	}
}

// ServeConn runs one POP3 session in a fresh client-handler sthread.
func (s *Server) ServeConn(conn *netsim.Conn) error {
	root := s.root
	fd := root.Task.InstallFD(conn, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	connTag, err := root.App().Tags.TagNew(root.Task)
	if err != nil {
		return err
	}
	defer root.App().Tags.TagDelete(connTag)
	argBuf, err := root.Smalloc(connTag, p3Schema.Size())
	if err != nil {
		return err
	}

	uidTag, err := root.App().Tags.TagNew(root.Task)
	if err != nil {
		return err
	}
	defer root.App().Tags.TagDelete(uidTag)
	uidCell, err := root.Smalloc(uidTag, 8)
	if err != nil {
		return err
	}
	root.Store64(uidCell, 0)

	loginSC := policy.New().
		MustMemAdd(s.pwdTag, vm.PermRead).
		MustMemAdd(uidTag, vm.PermRW).
		MustMemAdd(connTag, vm.PermRW)
	mailSC := policy.New().
		MustMemAdd(s.mailTag, vm.PermRead).
		MustMemAdd(uidTag, vm.PermRead).
		MustMemAdd(connTag, vm.PermRW)

	chSC := policy.New().
		MustMemAdd(connTag, vm.PermRW).
		FDAdd(fd, kernel.FDRW).
		SetMemPages(s.HandlerMemPages)
	chSC.GateAdd(s.loginGate(uidCell), loginSC, s.pwdAddr, "login")
	chSC.GateAdd(s.statGate(uidCell), mailSC.Clone(), 0, "stat")
	chSC.GateAdd(s.retrGate(uidCell), mailSC.Clone(), 0, "retr")
	loginSpec, statSpec, retrSpec := chSC.Gates[0], chSC.Gates[1], chSC.Gates[2]

	handler, err := root.CreateNamed("client-handler", chSC, func(h *sthread.Sthread, arg vm.Addr) vm.Addr {
		if s.hooks.Handler != nil {
			s.hooks.Handler(h, &ConnContext{
				FD:      fd,
				PwdAddr: s.pwdAddr, MailAddr: s.mailBase, UIDAddr: uidCell,
				ArgAddr:   arg,
				LoginSpec: loginSpec, StatSpec: statSpec, RetrSpec: retrSpec,
			})
		}
		viaGate := func(spec *policy.GateSpec) p3Call {
			return func(h *sthread.Sthread, arg vm.Addr) (vm.Addr, error) {
				return h.CallGate(spec, nil, arg)
			}
		}
		return pop3HandlerBody(h, fd, arg, viaGate(loginSpec), viaGate(statSpec), viaGate(retrSpec))
	}, argBuf)
	if err != nil {
		return err
	}
	_, fault := root.Join(handler)
	return fault
}

// p3Call invokes one of the client handler's privileged entry points: a
// one-shot callgate in the Figure 1 build, a pooled recycled gate in the
// pooled build.
type p3Call func(h *sthread.Sthread, arg vm.Addr) (vm.Addr, error)

// pop3HandlerBody parses POP3 commands (the risky code of §2) and
// mediates every privileged operation through the gates.
func pop3HandlerBody(h *sthread.Sthread, fd int, arg vm.Addr,
	login, stat, retr p3Call) vm.Addr {
	return pop3HandlerSession(h, fd, arg, newP3Session(), &p3Pos{}, login, stat, retr)
}

// p3Pos is a session's protocol position: which one-time steps already
// ran (greeting, authentication) and the pending USER argument. It is
// exactly the state a live cluster handoff must carry to the session's
// new home — everything else the handler touches is either per-command
// scratch or reachable again through the gates.
type p3Pos struct {
	Greeted bool
	Authed  bool
	User    string // pending USER argument, not yet confirmed by PASS
}

// p3Session is the per-connection scratch a handler invocation needs: the
// buffered command reader, a response compose buffer, and RETR payload
// space. The batched worker allocates one and loops every session in its
// ring sweep through it.
type p3Session struct {
	r   *bufio.Reader
	buf []byte // response compose scratch
	out []byte // RETR payload scratch (fOut.Cap bytes)
}

func newP3Session() *p3Session {
	return &p3Session{
		r:   bufio.NewReader(nil),
		buf: make([]byte, 0, p3RetrCap+64), // holds a full RETR response
		out: make([]byte, p3RetrCap),
	}
}

// p3CmdIs reports an ASCII case-insensitive match against an upper-case
// command word, without the allocation strings.ToUpper costs per line.
func p3CmdIs(b []byte, want string) bool {
	if len(b) != len(want) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != want[i] {
			return false
		}
	}
	return true
}

// p3ReadLine reads one command line, falling back to collecting
// fragments only for lines longer than the reader's buffer (which no
// legitimate client sends). The returned slice aliases the reader's
// buffer and is valid until the next read.
func p3ReadLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		full := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			line, err = r.ReadSlice('\n')
			full = append(full, line...)
		}
		line = full
	}
	if err != nil {
		return nil, err
	}
	return bytes.TrimRight(line, "\r\n"), nil
}

// pop3HandlerSession is pop3HandlerBody with caller-owned scratch: the
// batched worker loops sessions through one p3Session instead of
// allocating reader and buffers per connection. pos is the session's
// protocol position — the pooled build passes the connection record's
// own (so a handoff exports the live position), one-shot builds pass a
// throwaway. A resumed session arrives with pos.Greeted already set and
// must not greet again: the client saw the banner at the old home.
func pop3HandlerSession(h *sthread.Sthread, fd int, arg vm.Addr, sess *p3Session,
	pos *p3Pos, login, stat, retr p3Call) vm.Addr {
	raw := fdRW{h, fd}
	r := sess.r
	r.Reset(raw)

	// Responses are composed in the session scratch and sent as one
	// write: every WriteFD is a simulated-kernel crossing plus a reader
	// wakeup, so "+OK", payload and terminator must not be three of them.
	say := func(line string) bool {
		b := append(sess.buf[:0], line...)
		b = append(b, '\r', '\n')
		_, err := raw.Write(b)
		return err == nil
	}
	if !pos.Greeted {
		if !say("+OK minipop3 ready") {
			return 0
		}
		pos.Greeted = true
	}

	for {
		line, err := p3ReadLine(r)
		if err != nil {
			return 1 // client went away
		}
		cmd, rest, _ := bytes.Cut(line, []byte(" "))
		switch {
		case p3CmdIs(cmd, "USER"):
			pos.User = string(rest)
			say("+OK")
		case p3CmdIs(cmd, "PASS"):
			payload := append(sess.buf[:0], pos.User...)
			payload = append(payload, 0)
			payload = append(payload, rest...)
			// The codec bounds the write to the login gate's input cap:
			// an oversized credential line fails authentication with a
			// typed *ArgBoundsError instead of running past the block
			// into memory the inter-principal scrub never reaches (the
			// pooled build's slot arena).
			if fStr.Store(h, arg, payload) != nil {
				say("-ERR auth failed")
				continue
			}
			ret, err := login(h, arg)
			if err == nil && ret == 1 {
				pos.Authed = true
				say("+OK logged in")
			} else {
				say("-ERR auth failed")
			}
		case p3CmdIs(cmd, "STAT"):
			if !pos.Authed {
				say("-ERR not authenticated")
				continue
			}
			n, err := stat(h, arg)
			if err != nil {
				say("-ERR")
				continue
			}
			b := append(sess.buf[:0], "+OK "...)
			b = strconv.AppendUint(b, uint64(n), 10)
			b = append(b, " messages\r\n"...)
			raw.Write(b)
		case p3CmdIs(cmd, "RETR"):
			num, numOK := 0, len(rest) > 0
			for _, c := range rest {
				if c < '0' || c > '9' {
					numOK = false
					break
				}
				num = num*10 + int(c-'0')
			}
			if !numOK {
				num = 0 // same rejection path a garbled argument took before
			}
			fMsgNum.Store(h, arg, num)
			ret, err := retr(h, arg)
			if err != nil || ret != 1 {
				say("-ERR no such message")
				continue
			}
			n, err := fOut.LoadInto(h, arg, sess.out)
			if err != nil {
				say("-ERR no such message")
				continue
			}
			b := append(sess.buf[:0], "+OK "...)
			b = strconv.AppendInt(b, int64(n), 10)
			b = append(b, " octets\r\n"...)
			b = append(b, sess.out[:n]...)
			b = append(b, "\r\n.\r\n"...)
			raw.Write(b)
		case p3CmdIs(cmd, "QUIT"):
			say("+OK bye")
			return 1
		default:
			say("-ERR unknown command")
		}
	}
}

// fdRW adapts a compartment descriptor to io.ReadWriter.
type fdRW struct {
	s  *sthread.Sthread
	fd int
}

func (f fdRW) Read(p []byte) (int, error)  { return f.s.Task.ReadFD(f.fd, p) }
func (f fdRW) Write(p []byte) (int, error) { return f.s.Task.WriteFD(f.fd, p) }

// ---- monolithic contrast ---------------------------------------------------------

// Monolithic serves POP3 with everything in the root compartment: the
// parser, passwords, and mail share one address space.
type Monolithic struct {
	Stats Stats

	root    *sthread.Sthread
	boxes   []Mailbox
	PwdAddr vm.Addr // plain memory, reachable by any exploit
	hooks   Hooks
}

// NewMonolithic provisions the same data without isolation.
func NewMonolithic(root *sthread.Sthread, boxes []Mailbox, hooks Hooks) (*Monolithic, error) {
	m := &Monolithic{root: root, boxes: boxes, hooks: hooks}
	var db strings.Builder
	for _, b := range boxes {
		fmt.Fprintf(&db, "%s:%s:%d\n", b.User, b.Password, b.UID)
	}
	addr, err := root.Malloc(8 + db.Len())
	if err != nil {
		return nil, err
	}
	root.Store64(addr, uint64(db.Len()))
	root.Write(addr+8, []byte(db.String()))
	m.PwdAddr = addr
	return m, nil
}

// ServeConn parses commands in the privileged compartment.
func (m *Monolithic) ServeConn(conn *netsim.Conn) error {
	s := m.root
	fd := s.Task.InstallFD(conn, kernel.FDRW)
	defer s.Task.CloseFD(fd)
	if m.hooks.Handler != nil {
		m.hooks.Handler(s, &ConnContext{FD: fd, PwdAddr: m.PwdAddr})
	}
	raw := fdRW{s, fd}
	r := bufio.NewReader(raw)
	say := func(line string) { raw.Write([]byte(line + "\r\n")) }
	say("+OK minipop3 ready")

	var user string
	var box *Mailbox
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil
		}
		line = strings.TrimRight(line, "\r\n")
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(cmd) {
		case "USER":
			user = rest
			say("+OK")
		case "PASS":
			box = nil
			for i := range m.boxes {
				if m.boxes[i].User == user && m.boxes[i].Password == rest {
					box = &m.boxes[i]
					break
				}
			}
			if box != nil {
				m.Stats.Logins.Add(1)
				say("+OK logged in")
			} else {
				m.Stats.Fails.Add(1)
				say("-ERR auth failed")
			}
		case "STAT":
			if box == nil {
				say("-ERR not authenticated")
				continue
			}
			say(fmt.Sprintf("+OK %d messages", len(box.Messages)))
		case "RETR":
			if box == nil {
				say("-ERR not authenticated")
				continue
			}
			var num int
			fmt.Sscanf(rest, "%d", &num)
			if num < 1 || num > len(box.Messages) {
				say("-ERR no such message")
				continue
			}
			m.Stats.Retrieved.Add(1)
			msg := box.Messages[num-1]
			say(fmt.Sprintf("+OK %d octets", len(msg)))
			raw.Write([]byte(msg))
			raw.Write([]byte("\r\n.\r\n"))
		case "QUIT":
			say("+OK bye")
			return nil
		default:
			say("-ERR unknown command")
		}
	}
}
