package pop3

import (
	"bufio"
	"errors"
	"fmt"
	"strings"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

func testBoxes() []Mailbox {
	return []Mailbox{
		{User: "alice", Password: "sesame", UID: 1000,
			Messages: []string{"From: bob\n\nhi alice", "From: carol\n\nlunch?"}},
		{User: "bob", Password: "hunter2", UID: 1001,
			Messages: []string{"From: alice\n\nhi bob"}},
	}
}

// popClient is a minimal line client.
type popClient struct {
	conn *netsim.Conn
	r    *bufio.Reader
}

func (c *popClient) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := c.conn.Write([]byte(line + "\r\n")); err != nil {
		t.Fatalf("%s: %v", line, err)
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("%s: %v", line, err)
	}
	return strings.TrimRight(resp, "\r\n")
}

func (c *popClient) readBody(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimRight(line, "\r\n") == "." {
			return b.String()
		}
		b.WriteString(line)
	}
}

// serve boots a system running the given variant for nConns connections.
func startServer(t *testing.T, partitioned bool, nConns int, hooks Hooks) (dial func() *popClient, wait func()) {
	t.Helper()
	k := kernel.New()
	app := sthread.Boot(k)
	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			var serveConn func(*netsim.Conn) error
			if partitioned {
				srv, err := New(root, testBoxes(), hooks)
				if err != nil {
					t.Error(err)
					close(ready)
					return
				}
				serveConn = srv.ServeConn
			} else {
				srv, err := NewMonolithic(root, testBoxes(), hooks)
				if err != nil {
					t.Error(err)
					close(ready)
					return
				}
				serveConn = srv.ServeConn
			}
			l, err := root.Task.Listen("pop3:110")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			for i := 0; i < nConns; i++ {
				c, err := l.Accept()
				if err != nil {
					return
				}
				serveConn(c)
			}
		})
	}()
	<-ready
	dial = func() *popClient {
		conn, err := k.Net.Dial("pop3:110")
		if err != nil {
			t.Fatal(err)
		}
		c := &popClient{conn: conn, r: bufio.NewReader(conn)}
		if greet, err := c.r.ReadString('\n'); err != nil || !strings.HasPrefix(greet, "+OK") {
			t.Fatalf("greeting: %q %v", greet, err)
		}
		return c
	}
	wait = func() {
		if err := <-done; err != nil {
			t.Fatalf("server: %v", err)
		}
	}
	return dial, wait
}

func TestSessionBothVariants(t *testing.T) {
	for _, partitioned := range []bool{false, true} {
		name := "monolithic"
		if partitioned {
			name = "partitioned"
		}
		t.Run(name, func(t *testing.T) {
			dial, wait := startServer(t, partitioned, 1, Hooks{})
			c := dial()
			if got := c.cmd(t, "USER alice"); !strings.HasPrefix(got, "+OK") {
				t.Fatal(got)
			}
			if got := c.cmd(t, "PASS sesame"); !strings.HasPrefix(got, "+OK") {
				t.Fatal(got)
			}
			if got := c.cmd(t, "STAT"); got != "+OK 2 messages" {
				t.Fatal(got)
			}
			if got := c.cmd(t, "RETR 1"); !strings.HasPrefix(got, "+OK") {
				t.Fatal(got)
			}
			if body := c.readBody(t); !strings.Contains(body, "hi alice") {
				t.Fatalf("body = %q", body)
			}
			if got := c.cmd(t, "RETR 9"); !strings.HasPrefix(got, "-ERR") {
				t.Fatal(got)
			}
			if got := c.cmd(t, "QUIT"); !strings.HasPrefix(got, "+OK") {
				t.Fatal(got)
			}
			wait()
		})
	}
}

func TestAuthRequiredForMail(t *testing.T) {
	dial, wait := startServer(t, true, 1, Hooks{})
	c := dial()
	if got := c.cmd(t, "STAT"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("STAT before auth: %s", got)
	}
	// RETR before login: the retriever gate sees uid 0 and refuses.
	if got := c.cmd(t, "RETR 1"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("RETR before auth: %s", got)
	}
	if got := c.cmd(t, "USER alice"); !strings.HasPrefix(got, "+OK") {
		t.Fatal(got)
	}
	if got := c.cmd(t, "PASS wrong"); !strings.HasPrefix(got, "-ERR") {
		t.Fatal(got)
	}
	if got := c.cmd(t, "RETR 1"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("RETR after failed auth: %s", got)
	}
	c.cmd(t, "QUIT")
	wait()
}

// TestExploitCannotReadSecrets is Figure 1's security claim: code injected
// into the client handler cannot read passwords or mail directly.
func TestExploitCannotReadSecrets(t *testing.T) {
	probes := make(chan [2]error, 1)
	hooks := Hooks{Handler: func(s *sthread.Sthread, ctx *ConnContext) {
		pwdErr := s.TryRead(ctx.PwdAddr, make([]byte, 8))
		mailErr := s.TryRead(ctx.MailAddr, make([]byte, 8))
		probes <- [2]error{pwdErr, mailErr}
	}}
	dial, wait := startServer(t, true, 1, hooks)
	c := dial()
	c.cmd(t, "QUIT")
	wait()
	got := <-probes
	if got[0] == nil {
		t.Fatal("exploit read the password database")
	}
	if got[1] == nil {
		t.Fatal("exploit read the mail store")
	}
}

// TestExploitMonolithicReadsSecrets is the contrast: the same probe
// succeeds against the monolithic server.
func TestExploitMonolithicReadsSecrets(t *testing.T) {
	probe := make(chan error, 1)
	hooks := Hooks{Handler: func(s *sthread.Sthread, ctx *ConnContext) {
		probe <- s.TryRead(ctx.PwdAddr, make([]byte, 8))
	}}
	dial, wait := startServer(t, false, 1, hooks)
	c := dial()
	c.cmd(t, "QUIT")
	wait()
	if err := <-probe; err != nil {
		t.Fatalf("monolithic probe failed: %v", err)
	}
}

// TestExploitCannotForgeUID: the uid cell is writable only by the login
// gate; an exploited handler cannot set it and then fetch someone's mail.
func TestExploitCannotForgeUID(t *testing.T) {
	result := make(chan error, 1)
	hooks := Hooks{Handler: func(s *sthread.Sthread, ctx *ConnContext) {
		// Try to write uid=1000 directly into the cell.
		err := s.TryWrite(ctx.UIDAddr, []byte{0xE8, 3, 0, 0, 0, 0, 0, 0})
		result <- err
	}}
	dial, wait := startServer(t, true, 1, hooks)
	c := dial()
	// Even after the forgery attempt, unauthenticated RETR must fail.
	if got := c.cmd(t, "RETR 1"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("RETR after uid forgery attempt: %s", got)
	}
	c.cmd(t, "QUIT")
	wait()
	err := <-result
	if err == nil {
		t.Fatal("handler wrote the uid cell directly")
	}
	var f *vm.Fault
	if !errors.As(err, &f) {
		t.Fatalf("forgery failed with %v, want a protection fault", err)
	}
}

// TestUsersIsolated: logging in as bob never yields alice's mail.
func TestUsersIsolated(t *testing.T) {
	dial, wait := startServer(t, true, 1, Hooks{})
	c := dial()
	c.cmd(t, "USER bob")
	if got := c.cmd(t, "PASS hunter2"); !strings.HasPrefix(got, "+OK") {
		t.Fatal(got)
	}
	if got := c.cmd(t, "STAT"); got != "+OK 1 messages" {
		t.Fatal(got)
	}
	c.cmd(t, "RETR 1")
	if body := c.readBody(t); strings.Contains(body, "alice,") || strings.Contains(body, "lunch?") {
		t.Fatalf("bob saw alice's mail: %q", body)
	}
	c.cmd(t, "QUIT")
	wait()
}

// TestHandlerMemQuotaContainsRunawayExploit: the §7 extension in an
// application setting. An exploit in the client handler allocates memory
// in a loop; with HandlerMemPages set, the quota stops it after a bounded
// number of regions, the handler keeps running, and the next connection
// is served normally.
func TestHandlerMemQuotaContainsRunawayExploit(t *testing.T) {
	k := kernel.New()
	app := sthread.Boot(k)
	quotaRegions := 3
	hooks := Hooks{Handler: func(s *sthread.Sthread, ctx *ConnContext) {
		// The exploit: grab memory until the kernel says no.
		n := 0
		for ; n < 1000; n++ {
			if _, err := s.Task.Mmap(tags.DefaultRegionSize, vm.PermRW); err != nil {
				break
			}
		}
		// Exfiltrate the count over the connection (the handler may
		// write its fd); the client reads it in place of the greeting.
		f, err := s.Task.FD(ctx.FD, kernel.FDWrite)
		if err != nil {
			return
		}
		fmt.Fprintf(f, "EXPLOIT %d\r\n", n)
	}}

	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := New(root, testBoxes(), hooks)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			srv.HandlerMemPages = quotaRegions * tags.DefaultRegionSize / vm.PageSize
			l, err := root.Task.Listen("pop3:110")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			for i := 0; i < 2; i++ {
				c, err := l.Accept()
				if err != nil {
					return
				}
				srv.ServeConn(c)
			}
		})
	}()
	<-ready

	conn, err := k.Net.Dial("pop3:110")
	if err != nil {
		t.Fatal(err)
	}
	c := &popClient{conn: conn, r: bufio.NewReader(conn)}
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var got int
	if _, err := fmt.Sscanf(line, "EXPLOIT %d", &got); err != nil {
		t.Fatalf("exploit report = %q: %v", line, err)
	}
	if got != quotaRegions {
		t.Fatalf("exploit mapped %d regions before the quota fired, want %d", got, quotaRegions)
	}
	// The handler survives the denial and serves the session.
	if greet, err := c.r.ReadString('\n'); err != nil || !strings.HasPrefix(greet, "+OK") {
		t.Fatalf("greeting after exploit: %q %v", greet, err)
	}
	if got := c.cmd(t, "QUIT"); !strings.HasPrefix(got, "+OK") {
		t.Fatal(got)
	}
	conn.Close()

	// A second, clean connection gets its own fresh quota and works.
	conn2, err := k.Net.Dial("pop3:110")
	if err != nil {
		t.Fatal(err)
	}
	c2 := &popClient{conn: conn2, r: bufio.NewReader(conn2)}
	if _, err := c2.r.ReadString('\n'); err != nil { // exploit line again (hook runs per conn)
		t.Fatal(err)
	}
	if greet, err := c2.r.ReadString('\n'); err != nil || !strings.HasPrefix(greet, "+OK") {
		t.Fatalf("second connection greeting: %q %v", greet, err)
	}
	if got := c2.cmd(t, "USER alice"); !strings.HasPrefix(got, "+OK") {
		t.Fatal(got)
	}
	if got := c2.cmd(t, "PASS sesame"); !strings.HasPrefix(got, "+OK") {
		t.Fatal(got)
	}
	if got := c2.cmd(t, "STAT"); got != "+OK 2 messages" {
		t.Fatal(got)
	}
	if got := c2.cmd(t, "QUIT"); !strings.HasPrefix(got, "+OK") {
		t.Fatal(got)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}
