package pop3

import (
	"bufio"
	"strings"
	"sync"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// TestServeConnLeaksNothing is the kernel.TaskCount-based leak check
// around Server.ServeConn's exit paths: a failed login, an abrupt
// mid-session disconnect, a handler that faults on an exploit probe, and
// a clean session must all return the kernel task table and the live tag
// set to their pre-connection state. A leaked client-handler sthread
// would accumulate per connection on a production server; a leaked tag
// would pin its arena forever.
func TestServeConnLeaksNothing(t *testing.T) {
	k := kernel.New()
	app := sthread.Boot(k)

	var mu sync.Mutex
	var faultArmed bool
	hooks := Hooks{Handler: func(h *sthread.Sthread, ctx *ConnContext) {
		mu.Lock()
		armed := faultArmed
		faultArmed = false
		mu.Unlock()
		if armed {
			h.Read(vm.Addr(0x10), make([]byte, 8)) // unmapped: handler faults
		}
	}}

	type scenario struct {
		name  string
		arm   bool // arm the faulting hook for this connection
		drive func(t *testing.T, c *popClient)
	}
	scenarios := []scenario{
		{name: "login failure then quit", drive: func(t *testing.T, c *popClient) {
			c.cmd(t, "USER alice")
			if got := c.cmd(t, "PASS wrong"); !strings.HasPrefix(got, "-ERR") {
				t.Errorf("wrong password: %s", got)
			}
			c.cmd(t, "QUIT")
		}},
		{name: "abrupt disconnect before auth", drive: func(t *testing.T, c *popClient) {
			c.conn.Close()
		}},
		{name: "abrupt disconnect mid-session", drive: func(t *testing.T, c *popClient) {
			c.cmd(t, "USER alice")
			c.cmd(t, "PASS sesame")
			c.cmd(t, "STAT")
			c.conn.Close()
		}},
		{name: "handler fault", arm: true, drive: func(t *testing.T, c *popClient) {
			c.conn.Close()
		}},
		{name: "clean session", drive: func(t *testing.T, c *popClient) {
			c.cmd(t, "USER alice")
			c.cmd(t, "PASS sesame")
			if got := c.cmd(t, "RETR 1"); strings.HasPrefix(got, "+OK") {
				c.readBody(t)
			}
			c.cmd(t, "QUIT")
		}},
	}

	ready := make(chan struct{})
	done := make(chan error, 1)
	connDone := make(chan struct{})
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := New(root, testBoxes(), hooks)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			l, err := root.Task.Listen("pop3:110")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			baseTasks := k.TaskCount()
			baseTags := len(app.Tags.Tags())
			for range scenarios {
				c, err := l.Accept()
				if err != nil {
					return
				}
				srv.ServeConn(c) // error returns are scenario-expected
				if got, want := k.TaskCount(), baseTasks; got != want {
					t.Errorf("task count after connection: %d, want %d", got, want)
				}
				if got, want := len(app.Tags.Tags()), baseTags; got != want {
					t.Errorf("live tags after connection: %d, want %d", got, want)
				}
				connDone <- struct{}{}
			}
		})
	}()
	<-ready

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			mu.Lock()
			faultArmed = sc.arm
			mu.Unlock()
			conn, err := k.Net.Dial("pop3:110")
			if err != nil {
				t.Fatal(err)
			}
			c := &popClient{conn: conn, r: bufio.NewReader(conn)}
			if greet, err := c.r.ReadString('\n'); err == nil && !strings.HasPrefix(greet, "+OK") {
				t.Fatalf("greeting: %q", greet)
			}
			sc.drive(t, c)
			<-connDone // server finished ServeConn and ran the leak checks
		})
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}
