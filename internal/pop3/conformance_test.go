package pop3

import (
	"bufio"
	"fmt"
	"strings"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/serve/servetest"
	"wedge/internal/sthread"
)

// TestServeConformance runs the shared serve-app battery against the
// pooled POP3 server. The residue window is the RETR output area at
// the output field — principal A's mailbox bytes, which the pool must
// scrub before
// principal B's handler invocation can observe them (what
// TestPooledResidue used to check by hand).
func TestServeConformance(t *testing.T) {
	servetest.Run(t, conformanceApp())
}

// TestClusterConformance runs the cluster battery: two pooled POP3
// runtimes behind a director, one killed while it holds a greeted
// session mid-protocol. The session's protocol position (greeted, and
// for authed sessions the uid) crosses in the handoff record, so the
// client's transcript stays seamless.
func TestClusterConformance(t *testing.T) {
	servetest.Cluster(t, conformanceApp())
}

type popConn struct {
	conn *netsim.Conn
	r    *bufio.Reader
}

// holdPOP reads the greeting — the handler invocation is then
// provably in flight, parked on the first command.
func holdPOP(k *kernel.Kernel) (*popConn, error) {
	conn, err := k.Net.Dial("pop3:110")
	if err != nil {
		return nil, err
	}
	c := &popConn{conn: conn, r: bufio.NewReader(conn)}
	greet, err := c.r.ReadString('\n')
	if err != nil || !strings.HasPrefix(greet, "+OK") {
		conn.Close()
		return nil, fmt.Errorf("greeting %q: %v", greet, err)
	}
	return c, nil
}

func popCmd(c *popConn, line, wantPrefix string) error {
	if _, err := c.conn.Write([]byte(line + "\r\n")); err != nil {
		return err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if !strings.HasPrefix(resp, wantPrefix) {
		return fmt.Errorf("%s: %q, want %s...", line, resp, wantPrefix)
	}
	return nil
}

func conformanceApp() servetest.App {
	cmd := popCmd
	return servetest.App{
		Name: "pop3",
		Addr: "pop3:110",
		New: func(root *sthread.Sthread, slots int, probe servetest.Probe) (servetest.Runtime, error) {
			hooks := Hooks{}
			if probe != nil {
				hooks.Handler = func(h *sthread.Sthread, ctx *ConnContext) { probe(h, ctx.ArgAddr) }
			}
			return NewPooled(root, testBoxes(), slots, hooks)
		},
		Session: func(k *kernel.Kernel) ([]byte, error) {
			c, err := holdPOP(k)
			if err != nil {
				return nil, err
			}
			defer c.conn.Close()
			if err := cmd(c, "USER alice", "+OK"); err != nil {
				return nil, err
			}
			if err := cmd(c, "PASS sesame", "+OK"); err != nil {
				return nil, err
			}
			if err := cmd(c, "RETR 1", "+OK"); err != nil {
				return nil, err
			}
			for { // read the message body through the terminating "."
				line, err := c.r.ReadString('\n')
				if err != nil {
					return nil, err
				}
				if strings.TrimRight(line, "\r\n") == "." {
					break
				}
			}
			if err := cmd(c, "QUIT", "+OK"); err != nil {
				return nil, err
			}
			return []byte("hi alice"), nil // the retrieved mail's bytes
		},
		Hold: func(k *kernel.Kernel) (*servetest.Held, error) {
			c, err := holdPOP(k)
			if err != nil {
				return nil, err
			}
			return &servetest.Held{
				Finish: func() error {
					defer c.conn.Close()
					return cmd(c, "QUIT", "+OK")
				},
				Abandon: func() error { return c.conn.Close() },
			}, nil
		},
		Schema: p3Schema,
		// The password-database and mail-store tags outlive the runtime.
		StaticTags: 2,
	}
}
