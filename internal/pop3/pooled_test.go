package pop3

import (
	"bufio"
	"strings"
	"sync"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// servePooled boots a system running a PooledServer for nConns
// connections, handing the test the dial helper, the live server, the
// kernel (for leak checks), and the app stats.
func servePooled(t *testing.T, slots, nConns int, hooks Hooks,
	drive func(dial func() *popClient, srv *PooledServer, k *kernel.Kernel, app *sthread.App)) {
	t.Helper()
	k := kernel.New()
	app := sthread.Boot(k)
	ready := make(chan *PooledServer, 1)
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := NewPooled(root, testBoxes(), slots, hooks)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			defer srv.Close()
			l, err := root.Task.Listen("pop3:110")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			ready <- srv
			var wg sync.WaitGroup
			for i := 0; i < nConns; i++ {
				c, err := l.Accept()
				if err != nil {
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					srv.ServeConn(c)
				}()
			}
			wg.Wait()
		})
	}()
	srv := <-ready
	if srv == nil {
		t.FailNow()
	}
	dial := func() *popClient {
		conn, err := k.Net.Dial("pop3:110")
		if err != nil {
			t.Fatal(err)
		}
		c := &popClient{conn: conn, r: bufio.NewReader(conn)}
		if greet, err := c.r.ReadString('\n'); err != nil || !strings.HasPrefix(greet, "+OK") {
			t.Fatalf("greeting: %q %v", greet, err)
		}
		return c
	}
	drive(dial, srv, k, app)
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestPooledSession: a full POP3 session through the pooled build, with
// zero sthread creations on the serving path.
func TestPooledSession(t *testing.T) {
	servePooled(t, 2, 1, Hooks{}, func(dial func() *popClient, srv *PooledServer, k *kernel.Kernel, app *sthread.App) {
		created := app.Stats.SthreadsCreated.Load()
		c := dial()
		if got := c.cmd(t, "USER alice"); !strings.HasPrefix(got, "+OK") {
			t.Fatal(got)
		}
		if got := c.cmd(t, "PASS sesame"); !strings.HasPrefix(got, "+OK") {
			t.Fatal(got)
		}
		if got := c.cmd(t, "STAT"); got != "+OK 2 messages" {
			t.Fatal(got)
		}
		if got := c.cmd(t, "RETR 1"); !strings.HasPrefix(got, "+OK") {
			t.Fatal(got)
		}
		if body := c.readBody(t); !strings.Contains(body, "hi alice") {
			t.Fatalf("body %q", body)
		}
		if got := c.cmd(t, "QUIT"); !strings.HasPrefix(got, "+OK") {
			t.Fatal(got)
		}
		if got := app.Stats.SthreadsCreated.Load() - created; got != 0 {
			t.Fatalf("%d sthreads created on the pooled serving path, want 0", got)
		}
		if srv.Stats.Logins.Load() != 1 || srv.Stats.Retrieved.Load() != 1 {
			t.Fatalf("logins=%d retrieved=%d, want 1/1",
				srv.Stats.Logins.Load(), srv.Stats.Retrieved.Load())
		}
	})
}

// TestPooledAuthRequired: Figure 1's claim survives pooling — STAT/RETR
// before login fail, a wrong password fails, and a successful login on
// one connection does not leak authentication into the next connection on
// the same slot (the uid is per-connection state, not slot state).
func TestPooledAuthRequired(t *testing.T) {
	servePooled(t, 1, 3, Hooks{}, func(dial func() *popClient, srv *PooledServer, k *kernel.Kernel, app *sthread.App) {
		c := dial()
		if got := c.cmd(t, "STAT"); !strings.HasPrefix(got, "-ERR") {
			t.Fatalf("unauthenticated STAT: %s", got)
		}
		if got := c.cmd(t, "RETR 1"); !strings.HasPrefix(got, "-ERR") {
			t.Fatalf("unauthenticated RETR: %s", got)
		}
		c.cmd(t, "USER alice")
		if got := c.cmd(t, "PASS wrong"); !strings.HasPrefix(got, "-ERR") {
			t.Fatalf("wrong password: %s", got)
		}
		c.cmd(t, "QUIT")

		// Authenticate on the slot…
		a := dial()
		a.cmd(t, "USER alice")
		if got := a.cmd(t, "PASS sesame"); !strings.HasPrefix(got, "+OK") {
			t.Fatal(got)
		}
		a.cmd(t, "QUIT")

		// …and the next session on the same slot must start logged out.
		b := dial()
		if got := b.cmd(t, "RETR 1"); !strings.HasPrefix(got, "-ERR") {
			t.Fatalf("slot reuse leaked authentication: %s", got)
		}
		b.cmd(t, "QUIT")
	})
}

// The cross-principal residue scan of the slot's argument block —
// principal A's mailbox bytes in the output field, gone by the time
// principal B's
// handler invocation starts, including after a Resize — lives in the
// shared conformance battery now: see TestServeConformance/Residue
// (conformance_test.go).

// TestPooledOversizedCredentialStaysInBlock: a credential line larger
// than the login gate's cap is rejected by the handler before anything
// is written into the argument block, the session keeps working, and the
// slot arena past the schema's block stays clean (the inter-principal
// scrub never
// reaches there, so a single write would be permanent cross-principal
// residue).
func TestPooledOversizedCredentialStaysInBlock(t *testing.T) {
	var mu sync.Mutex
	var probes [][]byte
	hooks := Hooks{Handler: func(h *sthread.Sthread, ctx *ConnContext) {
		buf := make([]byte, 64)
		h.Read(ctx.ArgAddr+vm.Addr(p3Schema.Size()), buf)
		mu.Lock()
		probes = append(probes, buf)
		mu.Unlock()
	}}
	servePooled(t, 1, 2, hooks, func(dial func() *popClient, srv *PooledServer, k *kernel.Kernel, app *sthread.App) {
		a := dial()
		a.cmd(t, "USER alice")
		if got := a.cmd(t, "PASS "+strings.Repeat("x", 4*p3Schema.Size())); !strings.HasPrefix(got, "-ERR") {
			t.Fatalf("oversized credential accepted: %s", got)
		}
		// The session survives and a legitimate login still works.
		a.cmd(t, "USER alice")
		if got := a.cmd(t, "PASS sesame"); !strings.HasPrefix(got, "+OK") {
			t.Fatalf("login after oversized attempt: %s", got)
		}
		a.cmd(t, "QUIT")

		b := dial()
		b.cmd(t, "QUIT")

		mu.Lock()
		defer mu.Unlock()
		if len(probes) != 2 {
			t.Fatalf("probes = %d, want 2", len(probes))
		}
		for _, p := range probes {
			for j, bb := range p {
				if bb != 0 {
					t.Fatalf("slot arena dirtied past the argument block at +%d (%#x)", j, bb)
				}
			}
		}
	})
}

// TestPooledHandlerCannotReachSecrets: the recycled handler's policy is
// as tight as the one-shot handler's — password database and mail store
// are not granted, so probes fault.
func TestPooledHandlerCannotReachSecrets(t *testing.T) {
	var mu sync.Mutex
	var pwdErr, mailErr error
	probed := false
	hooks := Hooks{Handler: func(h *sthread.Sthread, ctx *ConnContext) {
		mu.Lock()
		defer mu.Unlock()
		if probed {
			return
		}
		probed = true
		buf := make([]byte, 8)
		pwdErr = h.TryRead(ctx.PwdAddr, buf)
		mailErr = h.TryRead(ctx.MailAddr, buf)
	}}
	servePooled(t, 1, 1, hooks, func(dial func() *popClient, srv *PooledServer, k *kernel.Kernel, app *sthread.App) {
		c := dial()
		c.cmd(t, "QUIT")
		mu.Lock()
		defer mu.Unlock()
		if pwdErr == nil {
			t.Fatal("pooled handler read the password database")
		}
		if mailErr == nil {
			t.Fatal("pooled handler read the mail store")
		}
	})
}
