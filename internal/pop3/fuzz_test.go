package pop3

import (
	"sync"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/sthread"
)

// fuzzServer boots one partitioned POP3 server per fuzz process and
// serves connections forever; each fuzz execution dials it. The accept
// loop reports every connection's ServeConn result on results, in dial
// order (executions are sequential within a process), so the fuzz body
// can assert the handler compartment never faulted.
type fuzzServer struct {
	k       *kernel.Kernel
	results chan error
}

var (
	fuzzOnce sync.Once
	fuzzSrv  *fuzzServer
)

func startFuzzServer(f *testing.F) *fuzzServer {
	fuzzOnce.Do(func() {
		k := kernel.New()
		app := sthread.Boot(k)
		fs := &fuzzServer{k: k, results: make(chan error)}
		ready := make(chan struct{})
		go func() {
			err := app.Main(func(root *sthread.Sthread) {
				srv, err := New(root, []Mailbox{
					{User: "alice", Password: "sesame", UID: 1000,
						Messages: []string{"From: fuzz\n\nhello", "From: fuzz\n\nsecond"}},
				}, Hooks{})
				if err != nil {
					panic(err)
				}
				l, err := root.Task.Listen("pop3:110")
				if err != nil {
					panic(err)
				}
				close(ready)
				for {
					c, err := l.Accept()
					if err != nil {
						return
					}
					err = srv.ServeConn(c)
					c.Close()
					fs.results <- err
				}
			})
			if err != nil {
				panic(err)
			}
		}()
		<-ready
		fuzzSrv = fs
	})
	return fuzzSrv
}

// FuzzPOP3Command feeds arbitrary bytes to the real client-handler
// compartment — the "risky code" of §2 that parses untrusted network
// input — through a live partitioned server. The properties fuzzed for:
// the handler compartment never faults (ServeConn returns no fault for
// any byte stream: a parser crash would be an sthread death), every
// response line the server produces is a well-formed +OK/-ERR line or
// message payload, and the session always terminates once the client
// stops sending.
func FuzzPOP3Command(f *testing.F) {
	seeds := []string{
		"USER alice\r\nPASS sesame\r\nSTAT\r\nRETR 1\r\nQUIT\r\n",
		"USER alice\r\nPASS wrong\r\nSTAT\r\n",
		"RETR 1\r\nUSER\r\nPASS\r\nQUIT\r\n",
		"USER alice\r\nPASS sesame\r\nRETR 0\r\nRETR -1\r\nRETR 99\r\nRETR x\r\n",
		"user alice\r\npass sesame\r\nstat\r\n",
		"NOOP\r\nUIDL\r\n \r\n\r\n",
		"USER \x00\xff\x80 weird\r\nPASS \r\n",
		"USER aliceUSER alice",
		"QUIT",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	srv := startFuzzServer(f)
	f.Fuzz(func(t *testing.T, input []byte) {
		conn, err := srv.k.Net.Dial("pop3:110")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if len(input) > 0 {
			if _, err := conn.Write(input); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
		// Half-close: the handler sees EOF after consuming the input, so
		// every session terminates even without a QUIT.
		conn.CloseWrite()
		var out []byte
		buf := make([]byte, 4096)
		for len(out) < 1<<20 {
			n, err := conn.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		if len(out) == 0 {
			t.Fatal("no greeting received")
		}
		if err := <-srv.results; err != nil {
			t.Fatalf("handler compartment died on %q: %v\noutput: %q", input, err, out)
		}
	})
}
