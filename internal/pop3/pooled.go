// The pooled POP3 server: the Figure 1 partitioning with the
// per-connection client-handler sthread and per-connection gate
// instantiations replaced by a gatepool of long-lived recycled
// equivalents — the same amortization httpd.PooledServer and
// sshd.PooledWedge apply.
//
// The server is a serve.App descriptor on the shared wedge-server runtime
// (internal/serve), which owns the pool lifecycle, accept loop, drain,
// admission control, and conn-id demux. This file contributes the four
// gates each slot carries:
//
//   - "handler": the untrusted parser compartment. One invocation serves
//     one session; the connection's descriptor arrives as a
//     per-invocation argument descriptor (CallFD) and is revoked when the
//     invocation completes. It holds nothing but the slot's argument tag.
//   - "login", "stat", "retr": the Figure 1 callgates, recycled, holding
//     the password tag (login) or the mail tag (stat/retr).
//
// The authenticated uid — the cell "only the login component" may set —
// moves from a per-connection tagged memory cell into the runtime's
// gate-side connection record, demultiplexed by the conn id in the slot's
// argument block and pinned to the slot (serve.Runtime.Lookup). The
// handler compartment holds no reference to that state and no memory
// containing it, so the Figure 1 claim is unchanged: an exploited parser
// can neither read mail it has not authenticated for nor forge a login.
// Cross-principal residue in the slot's argument block (retrieved mail
// bytes in the block's output field) is scrubbed by the pool between
// principals.

package pop3

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"wedge/internal/gatepool"
	"wedge/internal/policy"
	"wedge/internal/serve"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// PooledServer serves POP3 sessions with zero sthread creations.
type PooledServer struct {
	Stats Stats

	root     *sthread.Sthread
	boxes    []Mailbox
	hooks    Hooks
	pwd      pwdCache
	sessions sync.Pool

	*store
	// The embedded runtime owns the pool, the accept loop (Serve),
	// lifecycle (Drain/Undrain/Close), admission control (SetQueue),
	// sizing (Resize/SetAutoSlots), observability (Snapshot/PoolStats),
	// and the conn-id demux (Lookup) — all promoted onto the server.
	*serve.Runtime[p3PoolConn]
}

// p3PoolConn is one session's gate-side state. uid is what the tagged uid
// cell held in the per-connection build: written only by the login gate,
// read by stat/retr, never reachable from the handler compartment. pos
// is the session's protocol position, kept on the record (rather than on
// the worker's stack) so a live cluster handoff can export it.
type p3PoolConn struct {
	uid int
	pos p3Pos
}

// PoolConfig tunes the pooled server. The zero value means
// serve.DefaultSlots and no idle reaping.
type PoolConfig struct {
	// Slots is the gatepool size (serve.DefaultSlots if <= 0).
	Slots int
	// IdleTimeout, when nonzero, reaps sessions silent for at least this
	// long — the knob a public-facing deployment needs so parked clients
	// cannot pin slots indefinitely.
	IdleTimeout time.Duration
}

// NewPooled provisions the store and builds the pool with the given
// number of slots (serve.DefaultSlots if slots <= 0) and no idle
// reaping.
func NewPooled(root *sthread.Sthread, boxes []Mailbox, slots int, hooks Hooks) (*PooledServer, error) {
	return NewPooledConfig(root, boxes, PoolConfig{Slots: slots}, hooks)
}

// NewPooledConfig is NewPooled with the full tuning surface.
func NewPooledConfig(root *sthread.Sthread, boxes []Mailbox, cfg PoolConfig, hooks Hooks) (*PooledServer, error) {
	st, err := newStore(root, boxes)
	if err != nil {
		return nil, err
	}
	p := &PooledServer{root: root, boxes: boxes, hooks: hooks, store: st}
	p.sessions.New = func() any { return newP3Session() }
	stats := &p.Stats
	p.Runtime, err = serve.New(root, serve.App[p3PoolConn]{
		Name:        "pop3",
		Slots:       cfg.Slots,
		IdleTimeout: cfg.IdleTimeout,
		Schema:      p3Schema,
		Worker:      "handler",
		Export:      exportP3,
		Import:      p.importP3,
		Gates: []gatepool.GateDef{
			{
				Name:  "handler",
				Entry: p.handlerEntry,
				// The batched dataplane's explicit worker body: drain the
				// slot ring run-to-completion, one session per entry,
				// reusing the command reader across the whole batch
				// instead of allocating one per connection.
				Batch: func(h *sthread.Sthread, b *sthread.Batch, _ vm.Addr) {
					// Session scratch is pooled across sweeps, not
					// allocated per sweep: a lightly loaded ring drains
					// one entry per doorbell, which would make per-sweep
					// scratch per-connection scratch.
					sess := p.sessions.Get().(*p3Session)
					for b.More() {
						b.Complete(p.handlerServe(h, b.Arg(), sess))
					}
					p.sessions.Put(sess)
				},
			},
			{
				Name:    "login",
				SC:      policy.New().MustMemAdd(st.pwdTag, vm.PermRead),
				Trusted: st.pwdAddr,
				// The recycled gate parses the password database once
				// through its own tagged view and serves every later
				// login from that private parse (pwdCache); the
				// per-connection build's gate re-reads it each life.
				Entry: func(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
					c := p.Lookup(g, arg)
					if c == nil {
						return 0
					}
					uid, ok := p.pwd.checkLogin(g, arg, trusted, stats)
					if !ok {
						return 0
					}
					c.State.uid = uid
					return 1
				},
			},
			{
				Name: "stat",
				SC:   policy.New().MustMemAdd(st.mailTag, vm.PermRead),
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					c := p.Lookup(g, arg)
					if c == nil {
						return 0
					}
					return st.statFor(c.State.uid)
				},
			},
			{
				Name: "retr",
				SC:   policy.New().MustMemAdd(st.mailTag, vm.PermRead),
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					c := p.Lookup(g, arg)
					if c == nil {
						return 0
					}
					return st.retrFor(g, arg, c.State.uid, stats)
				},
			},
		},
	})
	if err != nil {
		st.release(root) // a failed runtime build must not strand the store
		return nil, err
	}
	return p, nil
}

// p3ExportVersion versions the pop3 handoff payload.
const p3ExportVersion = 1

// exportP3 serializes a session for cluster handoff: the authenticated
// uid and the protocol position — and nothing else. The password
// database and the mail store never ride a record: the importing runtime
// reaches both through its own gates, and the wire sees only what the
// handler compartment could already name.
func exportP3(c *serve.Conn[p3PoolConn], _ []byte) []byte {
	st := &c.State
	var flags byte
	if st.pos.Greeted {
		flags |= 1
	}
	if st.pos.Authed {
		flags |= 2
	}
	out := make([]byte, 0, 7+len(st.pos.User))
	out = append(out, p3ExportVersion, flags)
	out = binary.LittleEndian.AppendUint32(out, uint32(st.uid))
	u := st.pos.User
	if len(u) > 255 {
		u = u[:255] // a pending USER longer than this cannot authenticate anyway
	}
	out = append(out, byte(len(u)))
	out = append(out, u...)
	return out
}

// importP3 restores a handed-off session. The payload crossed the trust
// boundary, so every field is validated before use — most importantly
// the uid, which is an index into the mailbox store: a forged or stale
// uid must be refused here, not discovered by the stat gate.
func (p *PooledServer) importP3(c *serve.Conn[p3PoolConn], rec *serve.HandoffRecord) error {
	b := rec.State
	if len(b) < 7 {
		return fmt.Errorf("pop3: import: truncated payload (%d bytes)", len(b))
	}
	if b[0] != p3ExportVersion {
		return fmt.Errorf("pop3: import: version %d", b[0])
	}
	flags := b[1]
	uid := int(binary.LittleEndian.Uint32(b[2:]))
	ulen := int(b[6])
	if len(b) != 7+ulen {
		return fmt.Errorf("pop3: import: payload length %d, want %d", len(b), 7+ulen)
	}
	authed := flags&2 != 0
	if authed {
		known := false
		for i := range p.boxes {
			if p.boxes[i].UID == uid && uid != 0 {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("pop3: import: uid %d not in this store", uid)
		}
	}
	if !authed {
		uid = 0
	}
	c.State.uid = uid
	c.State.pos = p3Pos{
		Greeted: flags&1 != 0,
		Authed:  authed,
		User:    string(b[7:]),
	}
	return nil
}

// handlerEntry is the per-slot recycled client handler: one invocation
// per session, running with the slot's argument tag and the
// per-invocation connection descriptor — nothing else.
func (p *PooledServer) handlerEntry(h *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
	return p.handlerServe(h, arg, newP3Session())
}

// handlerServe is one session against caller-owned scratch; the batched
// body shares one p3Session across every entry in a sweep.
func (p *PooledServer) handlerServe(h *sthread.Sthread, arg vm.Addr, sess *p3Session) vm.Addr {
	c := p.Lookup(h, arg)
	if c == nil {
		return 0
	}
	if p.hooks.Handler != nil {
		p.hooks.Handler(h, &ConnContext{
			FD:      c.FD,
			PwdAddr: p.pwdAddr, MailAddr: p.mailBase,
			ArgAddr: arg,
		})
	}
	lease := c.Lease
	viaPool := func(name string) p3Call {
		return func(h *sthread.Sthread, arg vm.Addr) (vm.Addr, error) {
			return lease.Call(name, h, arg)
		}
	}
	return pop3HandlerSession(h, c.FD, arg, sess, &c.State.pos, viaPool("login"), viaPool("stat"), viaPool("retr"))
}
