// The pooled POP3 server: the Figure 1 partitioning with the
// per-connection client-handler sthread and per-connection gate
// instantiations replaced by a gatepool of long-lived recycled
// equivalents — the same amortization httpd.PooledServer and
// sshd.PooledWedge apply.
//
// Each pool slot owns a private argument tag and four recycled sthreads:
//
//   - "handler": the untrusted parser compartment. One invocation serves
//     one session; the connection's descriptor arrives as a
//     per-invocation argument descriptor (CallFD) and is revoked when the
//     invocation completes. It holds nothing but the slot's argument tag.
//   - "login", "stat", "retr": the Figure 1 callgates, recycled, holding
//     the password tag (login) or the mail tag (stat/retr).
//
// The authenticated uid — the cell "only the login component" may set —
// moves from a per-connection tagged memory cell into the connection's
// gate-side state record, demultiplexed by the conn id in the slot's
// argument block and pinned to the slot (state.lease.Arg must equal the
// gate's argument base). The handler compartment holds no reference to
// that state and no memory containing it, so the Figure 1 claim is
// unchanged: an exploited parser can neither read mail it has not
// authenticated for nor forge a login. Cross-principal residue in the
// slot's argument block (retrieved mail bytes at p3Out) is scrubbed by
// the pool between principals.

package pop3

import (
	"fmt"
	"wedge/internal/gatepool"
	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// PooledServer serves POP3 sessions with zero sthread creations.
type PooledServer struct {
	Stats Stats

	root  *sthread.Sthread
	boxes []Mailbox
	hooks Hooks

	*store
	pool *gatepool.Pool

	conns gatepool.ConnTable[*p3PoolConn]
}

// p3PoolConn is one session's gate-side state. uid is what the tagged uid
// cell held in the per-connection build: written only by the login gate,
// read by stat/retr, never reachable from the handler compartment.
type p3PoolConn struct {
	lease *gatepool.Lease
	fd    int
	uid   int
}

// NewPooled provisions the store and builds the pool with the given
// number of slots (gatepool's default of 1 when slots <= 0).
func NewPooled(root *sthread.Sthread, boxes []Mailbox, slots int, hooks Hooks) (*PooledServer, error) {
	st, err := newStore(root, boxes)
	if err != nil {
		return nil, err
	}
	p := &PooledServer{root: root, boxes: boxes, hooks: hooks, store: st}
	stats := &p.Stats
	p.pool, err = gatepool.New(root, gatepool.Config{
		Name:    "pop3",
		Slots:   slots,
		ArgSize: p3Size,
		Gates: []gatepool.GateDef{
			{
				Name:  "handler",
				Entry: p.handlerEntry,
			},
			{
				Name:    "login",
				SC:      policy.New().MustMemAdd(st.pwdTag, vm.PermRead),
				Trusted: st.pwdAddr,
				Entry: func(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
					cs := p.stateFor(g, arg)
					if cs == nil {
						return 0
					}
					uid, ok := checkLogin(g, arg, trusted, stats)
					if !ok {
						return 0
					}
					cs.uid = uid
					return 1
				},
			},
			{
				Name: "stat",
				SC:   policy.New().MustMemAdd(st.mailTag, vm.PermRead),
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					cs := p.stateFor(g, arg)
					if cs == nil {
						return 0
					}
					return st.statFor(cs.uid)
				},
			},
			{
				Name: "retr",
				SC:   policy.New().MustMemAdd(st.mailTag, vm.PermRead),
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					cs := p.stateFor(g, arg)
					if cs == nil {
						return 0
					}
					return st.retrFor(g, arg, cs.uid, p3OutMax, stats)
				},
			},
		},
	})
	if err != nil {
		st.release(root) // a failed pool build must not strand the store
		return nil, err
	}
	return p, nil
}

// Close drains the pool and retires every slot.
func (p *PooledServer) Close() error { return p.pool.Close() }

// Resize grows or shrinks the slot pool (see gatepool.Pool.Resize).
func (p *PooledServer) Resize(slots int) error { return p.pool.Resize(slots) }

// PoolStats snapshots the scheduler counters.
func (p *PooledServer) PoolStats() gatepool.Stats { return p.pool.Stats() }

// stateFor demultiplexes gate-side session state by the conn id in the
// argument block, applying the slot pin gatepool.ConnTable requires: the
// state must anchor at exactly this invocation's argument block, so a
// forged id cannot reach another slot's session.
func (p *PooledServer) stateFor(g *sthread.Sthread, arg vm.Addr) *p3PoolConn {
	cs, ok := p.conns.Get(g.Load64(arg + p3ConnID))
	if !ok || cs.lease.Arg != arg {
		return nil
	}
	return cs
}

// ServeConn handles one session, sharding by the peer's network address.
func (p *PooledServer) ServeConn(conn *netsim.Conn) error {
	return p.ServeConnAs(conn, conn.RemoteAddr())
}

// ServeConnAs is ServeConn with an explicit principal.
func (p *PooledServer) ServeConnAs(conn *netsim.Conn, principal string) error {
	root := p.root
	fd := root.Task.InstallFD(conn, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	lease, err := p.pool.Acquire(principal)
	if err != nil {
		return fmt.Errorf("pop3 pooled: acquire: %w", err)
	}
	defer lease.Release()

	cs := &p3PoolConn{lease: lease, fd: fd}
	connID := p.conns.Put(cs)
	defer p.conns.Delete(connID)

	root.Store64(lease.Arg+p3ConnID, connID)
	root.Store64(lease.Arg+p3PoolFD, uint64(fd))

	// One recycled-handler invocation serves the whole session; no
	// sthread is created on this path.
	_, err = lease.CallFD("handler", root, lease.Arg, fd, kernel.FDRW)
	if err != nil {
		return fmt.Errorf("pop3 pooled: handler: %w", err)
	}
	return nil
}

// handlerEntry is the per-slot recycled client handler: one invocation
// per session, running with the slot's argument tag and the
// per-invocation connection descriptor — nothing else.
func (p *PooledServer) handlerEntry(h *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
	cs := p.stateFor(h, arg)
	if cs == nil {
		return 0
	}
	fd := int(h.Load64(arg + p3PoolFD))
	if cs.fd != fd {
		return 0
	}
	if p.hooks.Handler != nil {
		p.hooks.Handler(h, &ConnContext{
			FD:      fd,
			PwdAddr: p.pwdAddr, MailAddr: p.mailBase,
			ArgAddr: arg,
		})
	}
	lease := cs.lease
	viaPool := func(name string) p3Call {
		return func(h *sthread.Sthread, arg vm.Addr) (vm.Addr, error) {
			return lease.Call(name, h, arg)
		}
	}
	return pop3HandlerBody(h, fd, arg, viaPool("login"), viaPool("stat"), viaPool("retr"))
}
