package httpd

import (
	"crypto/rsa"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

var (
	keyOnce sync.Once
	key     *rsa.PrivateKey
)

func serverKey(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		k, err := minissl.GenerateServerKey()
		if err != nil {
			t.Fatalf("GenerateServerKey: %v", err)
		}
		key = k
	})
	return key
}

// clientResult is what one driven client observed.
type clientResult struct {
	resp    []byte
	session minissl.ClientSession
	resumed bool
	err     error
}

// runVariant boots a system, builds variant inside Main, serves nConns
// connections sequentially, and drives nConns clients. Clients may resume
// by passing a prior session.
func runVariant(t *testing.T, variant string, cached bool, nConns int, hooks Hooks,
	drive func(t *testing.T, dial func(sess *minissl.ClientSession) clientResult)) {
	t.Helper()
	k := kernel.New()
	priv := serverKey(t)
	if err := SetupDocroot(k, "/var/www", 1024); err != nil {
		t.Fatal(err)
	}
	app := sthread.Boot(k)

	ready := make(chan struct{})
	done := make(chan error, 1)

	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			var serveConn func(*netsim.Conn) error
			var closeSrv func()
			switch variant {
			case "mono":
				srv, err := NewMonolithic(root, "/var/www", priv, cached, hooks)
				if err != nil {
					t.Error(err)
					close(ready)
					return
				}
				serveConn = srv.ServeConn
			case "simple":
				srv, err := NewSimple(root, "/var/www", priv, cached, hooks)
				if err != nil {
					t.Error(err)
					close(ready)
					return
				}
				serveConn = srv.ServeConn
			case "mitm":
				srv, err := NewMITM(root, "/var/www", priv, cached, hooks)
				if err != nil {
					t.Error(err)
					close(ready)
					return
				}
				serveConn = srv.ServeConn
			case "recycled":
				srv, err := NewRecycled(root, "/var/www", priv, cached, hooks)
				if err != nil {
					t.Error(err)
					close(ready)
					return
				}
				serveConn = srv.ServeConn
				closeSrv = func() { srv.Close() }
			case "pooled":
				srv, err := NewPooled(root, "/var/www", priv, cached, 2, hooks)
				if err != nil {
					t.Error(err)
					close(ready)
					return
				}
				serveConn = srv.ServeConn
				closeSrv = func() { srv.Close() }
			default:
				t.Errorf("unknown variant %q", variant)
				close(ready)
				return
			}
			if closeSrv != nil {
				defer closeSrv()
			}
			l, err := root.Task.Listen("apache:443")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			for i := 0; i < nConns; i++ {
				c, err := l.Accept()
				if err != nil {
					t.Error(err)
					return
				}
				serveConn(c)
			}
		})
	}()

	<-ready
	dial := func(sess *minissl.ClientSession) clientResult {
		conn, err := k.Net.Dial("apache:443")
		if err != nil {
			return clientResult{err: err}
		}
		defer conn.Close()
		cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{
			ServerPub: &priv.PublicKey,
			Session:   sess,
		})
		if err != nil {
			return clientResult{err: err}
		}
		if _, err := cc.Write([]byte("GET /index.html")); err != nil {
			return clientResult{err: err}
		}
		resp, err := cc.ReadRecord()
		return clientResult{resp: resp, session: cc.Session, resumed: cc.Resumed, err: err}
	}
	drive(t, dial)
	if err := <-done; err != nil {
		t.Fatalf("server main: %v", err)
	}
}

func checkOK(t *testing.T, r clientResult) {
	t.Helper()
	if r.err != nil {
		t.Fatalf("client: %v", r.err)
	}
	if !strings.HasPrefix(string(r.resp), "200 OK\n") {
		t.Fatalf("response = %.40q", r.resp)
	}
	if len(r.resp) != len("200 OK\n")+1024 {
		t.Fatalf("response length = %d", len(r.resp))
	}
}

func TestMonolithicServes(t *testing.T) {
	runVariant(t, "mono", false, 2, Hooks{}, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		checkOK(t, dial(nil))
		checkOK(t, dial(nil))
	})
}

func TestMonolithicSessionCache(t *testing.T) {
	runVariant(t, "mono", true, 2, Hooks{}, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		first := dial(nil)
		checkOK(t, first)
		second := dial(&first.session)
		checkOK(t, second)
		if !second.resumed {
			t.Fatal("second connection did not resume")
		}
	})
}

func TestSimpleServes(t *testing.T) {
	runVariant(t, "simple", false, 2, Hooks{}, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		checkOK(t, dial(nil))
		checkOK(t, dial(nil))
	})
}

func TestSimpleSessionCache(t *testing.T) {
	runVariant(t, "simple", true, 2, Hooks{}, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		first := dial(nil)
		checkOK(t, first)
		second := dial(&first.session)
		checkOK(t, second)
		if !second.resumed {
			t.Fatal("no resumption")
		}
	})
}

func TestMITMServes(t *testing.T) {
	runVariant(t, "mitm", false, 2, Hooks{}, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		checkOK(t, dial(nil))
		checkOK(t, dial(nil))
	})
}

func TestMITMSessionCache(t *testing.T) {
	runVariant(t, "mitm", true, 2, Hooks{}, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		first := dial(nil)
		checkOK(t, first)
		second := dial(&first.session)
		checkOK(t, second)
		if !second.resumed {
			t.Fatal("no resumption")
		}
	})
}

func TestRecycledServes(t *testing.T) {
	runVariant(t, "recycled", false, 3, Hooks{}, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		checkOK(t, dial(nil))
		checkOK(t, dial(nil))
		checkOK(t, dial(nil))
	})
}

func TestRecycledSessionCache(t *testing.T) {
	runVariant(t, "recycled", true, 2, Hooks{}, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		first := dial(nil)
		checkOK(t, first)
		second := dial(&first.session)
		checkOK(t, second)
		if !second.resumed {
			t.Fatal("no resumption")
		}
	})
}

// TestWorkerCannotReadPrivateKey: the §5.1.1 headline claim, for both
// partitioned variants. The injected hook runs with the worker's full
// privileges and tries to read the key; the probe must fail, and the
// connection must still complete (the exploit is a read attempt via
// TryRead, not a crash).
func TestWorkerCannotReadPrivateKey(t *testing.T) {
	for _, variant := range []string{"simple", "mitm", "recycled", "pooled"} {
		t.Run(variant, func(t *testing.T) {
			probed := make(chan error, 1)
			hooks := Hooks{Worker: func(s *sthread.Sthread, c *ConnContext) {
				buf := make([]byte, 16)
				probed <- s.TryRead(c.PrivKeyAddr, buf)
			}}
			runVariant(t, variant, false, 1, hooks, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
				checkOK(t, dial(nil))
			})
			if err := <-probed; err == nil {
				t.Fatal("worker read the private key")
			}
		})
	}
}

// TestMonolithicWorkerReadsPrivateKey is the contrast case: in the
// unpartitioned server the same probe succeeds.
func TestMonolithicWorkerReadsPrivateKey(t *testing.T) {
	probed := make(chan error, 1)
	hooks := Hooks{Worker: func(s *sthread.Sthread, c *ConnContext) {
		buf := make([]byte, 16)
		probed <- s.TryRead(c.PrivKeyAddr, buf)
	}}
	runVariant(t, "mono", false, 1, hooks, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		checkOK(t, dial(nil))
	})
	if err := <-probed; err != nil {
		t.Fatalf("monolithic probe failed (%v); the baseline should be exploitable", err)
	}
}

// TestMITMHandshakeCannotReadSessionKey: the §5.1.2 property separating
// the MITM partitioning from the Simple one. The handshake sthread holds
// no permission on the session-key region.
func TestMITMHandshakeCannotReadSessionKey(t *testing.T) {
	probed := make(chan error, 1)
	hooks := Hooks{Worker: func(s *sthread.Sthread, c *ConnContext) {
		buf := make([]byte, 16)
		probed <- s.TryRead(c.SessionAddr, buf)
	}}
	runVariant(t, "mitm", false, 1, hooks, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		checkOK(t, dial(nil))
	})
	if err := <-probed; err == nil {
		t.Fatal("handshake sthread read the session-key region")
	}
}

// TestMITMPrimitiveBudget checks the per-request primitive counts that
// drive the Table 2 overhead: two sthreads and a fixed number of callgate
// invocations per full-handshake request.
func TestMITMPrimitiveBudget(t *testing.T) {
	runVariant(t, "mitm", false, 1, Hooks{}, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		checkOK(t, dial(nil))
	})
	// The stats live inside the server, which is gone; re-run with a
	// captured server instead.
	k := kernel.New()
	priv := serverKey(t)
	SetupDocroot(k, "/var/www", 1024)
	app := sthread.Boot(k)
	var srv *MITM
	ready := make(chan struct{})
	go func() {
		app.Main(func(root *sthread.Sthread) {
			var err error
			srv, err = NewMITM(root, "/var/www", priv, false, Hooks{})
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			l, err := root.Task.Listen("apache:443")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			c, _ := l.Accept()
			srv.ServeConn(c)
		})
	}()
	<-ready
	conn, err := k.Net.Dial("apache:443")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
	if err != nil {
		t.Fatal(err)
	}
	cc.Write([]byte("GET /about.html"))
	if _, err := cc.ReadRecord(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	if got := srv.Stats.SthreadsHS.Load(); got != 2 {
		t.Fatalf("sthreads per request = %d, want 2 (Figure 3)", got)
	}
	// hello + kex + receive_finished + send_finished + SSL_read + SSL_write.
	if got := srv.Stats.GateCalls.Load(); got != 6 {
		t.Fatalf("gate calls per request = %d, want 6", got)
	}
}

// TestRecycledCrossConnectionResidue demonstrates the isolation trade-off
// the paper warns about for recycled callgates: a later worker can observe
// residue of an earlier connection's key material in the shared argument
// memory, because the gate's shared tag outlives principals.
func TestRecycledCrossConnectionResidue(t *testing.T) {
	var firstMaster []byte
	var residue []byte
	var mu sync.Mutex
	connN := 0
	hooks := Hooks{Worker: func(s *sthread.Sthread, c *ConnContext) {
		mu.Lock()
		defer mu.Unlock()
		connN++
		if connN == 2 {
			// The second worker scans the shared arg block it was
			// handed — same chunk the first connection used.
			buf := make([]byte, 48)
			if err := s.TryRead(c.ArgAddr+fMaster.Off(), buf); err == nil {
				residue = buf
			}
		}
	}}
	runVariant(t, "recycled", false, 2, hooks, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		first := dial(nil)
		checkOK(t, first)
		mu.Lock()
		firstMaster = append([]byte(nil), first.session.Master[:]...)
		mu.Unlock()
		checkOK(t, dial(nil))
	})
	if string(residue) != string(firstMaster) {
		t.Fatalf("expected the shared-tag residue leak the paper describes; residue=%x first=%x",
			residue, firstMaster)
	}
}

func TestServeStaticPathHandling(t *testing.T) {
	k := kernel.New()
	SetupDocroot(k, "/var/www", 64)
	app := sthread.Boot(k)
	err := app.Main(func(root *sthread.Sthread) {
		if got := ServeStatic(root, "/var/www", "GET /index.html"); !strings.HasPrefix(string(got), "200 OK") {
			t.Errorf("index: %.30q", got)
		}
		if got := ServeStatic(root, "/var/www", "GET /missing"); !strings.HasPrefix(string(got), "404") {
			t.Errorf("missing: %.30q", got)
		}
		if got := ServeStatic(root, "/var/www", "GET /../etc/shadow"); !strings.HasPrefix(string(got), "400") {
			t.Errorf("traversal: %.30q", got)
		}
		if got := ServeStatic(root, "/var/www", "POST /"); !strings.HasPrefix(string(got), "400") {
			t.Errorf("bad verb: %.30q", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = vm.PageSize
}

// TestMITMWorkerMemQuota: the §7 DoS extension on the flagship server. An
// exploit in the SSL handshake sthread allocating in a loop is stopped at
// the quota, the handshake still completes, and the callgates (which
// inherit the root's unlimited quota) are unaffected.
func TestMITMWorkerMemQuota(t *testing.T) {
	k := kernel.New()
	priv := serverKey(t)
	if err := SetupDocroot(k, "/var/www", 256); err != nil {
		t.Fatal(err)
	}
	app := sthread.Boot(k)

	var mapped atomic.Int64
	hooks := Hooks{Worker: func(s *sthread.Sthread, _ *ConnContext) {
		n := 0
		for ; n < 1000; n++ {
			if _, err := s.Task.Mmap(tags.DefaultRegionSize, vm.PermRW); err != nil {
				break
			}
		}
		mapped.Store(int64(n))
	}}

	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := NewMITM(root, "/var/www", priv, false, hooks)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			srv.WorkerMemPages = 2 * tags.DefaultRegionSize / vm.PageSize
			l, err := root.Task.Listen("apache:443")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			c, err := l.Accept()
			if err != nil {
				return
			}
			if err := srv.ServeConn(c); err != nil {
				t.Errorf("serve: %v", err)
			}
		})
	}()
	<-ready

	conn, err := k.Net.Dial("apache:443")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
	if err != nil {
		t.Fatalf("handshake with quota-bound worker: %v", err)
	}
	if _, err := cc.Write([]byte("GET /index.html")); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.ReadRecord(); err != nil {
		t.Fatalf("request after exploit: %v", err)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := mapped.Load(); got != 2 {
		t.Fatalf("exploit mapped %d regions before the quota fired, want 2", got)
	}
}
