// The man-in-the-middle-resistant partitioning (Figures 3, 4, 5; §5.1.2).
//
// Phase structure (Figure 3): a per-connection master starts the SSL
// handshake sthread, waits for it to terminate successfully, and only then
// starts the client handler sthread. If the handshake sthread is exploited
// and does not exit, the client handler never runs.
//
// Phase 1 (Figure 4): the handshake sthread reads and writes cleartext
// handshake messages but holds neither read nor write permission on the
// session-key region. The setup_session_key callgate generates the server
// random and derives the master secret and key block directly into the
// session-key tag. The Finished exchange runs through two callgates:
// receive_finished verifies the client's Finished (returning only a binary
// verdict) and deposits the server Finished payload into the
// finished-state tag; send_finished seals that payload and hands back
// ciphertext. Neither gate will encrypt or decrypt caller-chosen data, so
// an exploited handshake sthread gains no oracle.
//
// Phase 2 (Figure 5): the client handler has no network descriptor at all.
// SSL_read (fd read-only) verifies-and-decrypts into the user-data tag;
// SSL_write (fd write-only) encrypts from the user-data tag. Injected
// non-MAC'ed traffic dies inside SSL_read and never reaches handler code.

package httpd

import (
	"crypto/rsa"
	"errors"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// The handshake-phase argument fields beyond those shared with the
// Simple variant — the transcript hash and the sealed Finished record —
// are the fMITMTranscript and fMITMRec fields of the shared argument
// schema (httpd.go).

// MITM is the Figures 3-5 server.
type MITM struct {
	Stats Stats

	// WorkerMemPages, when non-zero, caps the additional memory each
	// network-facing compartment (the SSL handshake sthread and the
	// client handler) may map — the DoS mitigation extending §7. The
	// callgates are unaffected: quotas follow the creator.
	WorkerMemPages int

	root    *sthread.Sthread
	docroot string

	privTag  tags.Tag
	privAddr vm.Addr
	pubTag   tags.Tag
	pubAddr  vm.Addr

	cache *minissl.SessionCache
	hooks Hooks
}

// NewMITM builds the two-phase server.
func NewMITM(root *sthread.Sthread, docroot string, priv *rsa.PrivateKey, cache bool, hooks Hooks) (*MITM, error) {
	m := &MITM{root: root, docroot: docroot, hooks: hooks}
	if cache {
		m.cache = minissl.NewSessionCache()
	}
	var err error
	if m.privTag, m.privAddr, err = placeBlob(root, minissl.MarshalPrivateKey(priv)); err != nil {
		return nil, err
	}
	if m.pubTag, m.pubAddr, err = placeBlob(root, minissl.MarshalPublicKey(&priv.PublicKey)); err != nil {
		return nil, err
	}
	return m, nil
}

// connRegions bundles the per-connection tags and base addresses.
type connRegions struct {
	argTag  tags.Tag
	arg     vm.Addr
	sessTag tags.Tag
	sess    vm.Addr
	finTag  tags.Tag
	fin     vm.Addr
	userTag tags.Tag
	user    vm.Addr
}

func (m *MITM) newConnRegions() (*connRegions, error) {
	root := m.root
	reg := &connRegions{}
	alloc := func(tag *tags.Tag, addr *vm.Addr, size int) error {
		t, err := root.App().Tags.TagNew(root.Task)
		if err != nil {
			return err
		}
		a, err := root.Smalloc(t, size)
		if err != nil {
			return err
		}
		*tag, *addr = t, a
		return nil
	}
	if err := alloc(&reg.argTag, &reg.arg, argSchema.Size()); err != nil {
		return nil, err
	}
	if err := alloc(&reg.sessTag, &reg.sess, sessSchema.Size()); err != nil {
		return nil, err
	}
	if err := alloc(&reg.finTag, &reg.fin, finSchema.Size()); err != nil {
		return nil, err
	}
	if err := alloc(&reg.userTag, &reg.user, userSchema.Size()); err != nil {
		return nil, err
	}
	return reg, nil
}

func (m *MITM) releaseConnRegions(r *connRegions) {
	t := m.root.App().Tags
	t.TagDelete(r.argTag)
	t.TagDelete(r.sessTag)
	t.TagDelete(r.finTag)
	t.TagDelete(r.userTag)
}

// makeSetupGate: like the Simple variant's, but the derived master and
// keys go into the session region; nothing secret is ever written to the
// argument buffer the handshake sthread can read.
func (m *MITM) makeSetupGate(state *setupGateState, sess vm.Addr) sthread.GateFunc {
	cache := m.cache
	return func(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
		switch fOp.Load(g, arg) {
		case opHello:
			fClientRandom.Read(g, arg, state.clientRandom[:])
			sr, err := minissl.NewRandom(cryptoRand{})
			if err != nil {
				return 0
			}
			state.serverRandom = sr
			fServerRandom.Write(g, arg, sr[:])
			fSessClientRandom.Write(g, sess, state.clientRandom[:])
			fSessServerRandom.Write(g, sess, sr[:])

			if id, err := fSessionID.Load(g, arg); cache != nil && err == nil && len(id) == minissl.SessionIDLen {
				if master, ok := cache.Get(id); ok {
					state.resumed = true
					fResumed.Store(g, arg, 1)
					fSessionIDOut.Write(g, arg, id)
					m.installSession(g, sess, master, state)
					return 1
				}
			}
			fResumed.Store(g, arg, 0)
			id, err := minissl.NewSessionID(cryptoRand{})
			if err != nil {
				return 0
			}
			fSessionIDOut.Write(g, arg, id)
			return 1

		case opKex:
			if state.resumed {
				return 0
			}
			priv, err := minissl.UnmarshalPrivateKey(readBlob(g, trusted))
			if err != nil {
				return 0
			}
			ct, err := fData.Load(g, arg)
			if err != nil || len(ct) == 0 {
				return 0
			}
			premaster, err := minissl.DecryptPremaster(priv, ct)
			if err != nil {
				return 0
			}
			master := minissl.DeriveMaster(premaster, state.clientRandom, state.serverRandom)
			m.installSession(g, sess, master, state)
			if cache != nil {
				cache.Put(fSessionIDOut.Bytes(g, arg), master)
			}
			return 1
		}
		return 0
	}
}

// installSession writes the derived secrets into the session region —
// memory the handshake sthread cannot read or write (Figure 4).
func (m *MITM) installSession(g *sthread.Sthread, sess vm.Addr, master [minissl.MasterLen]byte, state *setupGateState) {
	keys := minissl.KeyBlock(master, state.clientRandom, state.serverRandom)
	fSessMaster.Write(g, sess, master[:])
	fSessKeys.Write(g, sess, keys.Marshal())
	fSessReadSeq.Store(g, sess, 0)
	fSessWriteSeq.Store(g, sess, 0)
	fSessEstablished.Store(g, sess, 1)
}

// makeRecvFinished verifies the client's Finished and prepares the server
// Finished payload in the finished-state region. The only value flowing
// back to the handshake sthread is the binary verdict.
func (m *MITM) makeRecvFinished(sess, fin vm.Addr) sthread.GateFunc {
	return func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
		if fSessEstablished.Load(g, sess) != 1 {
			return 0
		}
		var master [minissl.MasterLen]byte
		fSessMaster.Read(g, sess, master[:])
		keys, readSeq, writeSeq, err := loadCoderState(g, sess)
		if err != nil {
			return 0
		}
		rc := minissl.NewRecordCoder(keys, minissl.ServerSide)
		rc.SetSeqs(readSeq, writeSeq)

		var transcript [32]byte
		fMITMTranscript.Read(g, arg, transcript[:])
		sealed, err := fMITMRec.Load(g, arg)
		if err != nil || len(sealed) == 0 {
			return 0
		}

		payload, err := rc.Open(minissl.MsgFinished, sealed)
		if err != nil {
			return 0
		}
		want := minissl.FinishedPayload(master, transcript, "client finished")
		if string(payload) != string(want[:]) {
			return 0
		}
		// Fold the verified cleartext into the transcript and stage the
		// server Finished payload for send_finished.
		t := minissl.ResumeTranscript(transcript)
		t.Add(minissl.MsgFinished, payload)
		sf := minissl.FinishedPayload(master, t.Sum(), "server finished")
		fFinPayload.Write(g, fin, sf[:])
		fFinValid.Store(g, fin, 1)
		fSessReadSeq.Store(g, sess, rc.ReadSeq())
		return 1
	}
}

// makeSendFinished seals the staged server Finished payload and returns
// the ciphertext via the argument buffer. It takes no payload input from
// the caller at all (§5.1.2: "send_finished ... takes no arguments from
// SSL handshake").
func (m *MITM) makeSendFinished(sess, fin vm.Addr) sthread.GateFunc {
	return func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
		if fFinValid.Load(g, fin) != 1 {
			return 0
		}
		var payload [32]byte
		fFinPayload.Read(g, fin, payload[:])
		keys, readSeq, writeSeq, err := loadCoderState(g, sess)
		if err != nil {
			return 0
		}
		rc := minissl.NewRecordCoder(keys, minissl.ServerSide)
		rc.SetSeqs(readSeq, writeSeq)
		sealed, err := rc.Seal(minissl.MsgFinished, payload[:])
		if err != nil {
			return 0
		}
		if err := fMITMRec.Store(g, arg, sealed); err != nil {
			return 0
		}
		fSessWriteSeq.Store(g, sess, rc.WriteSeq())
		return 1
	}
}

// makeSSLRead: phase-2 decryption gate. Reads framed records straight off
// the descriptor (read-only grant), drops anything that fails the MAC, and
// deposits verified plaintext in the user-data region.
func (m *MITM) makeSSLRead(fd int, sess, user vm.Addr) sthread.GateFunc {
	return func(g *sthread.Sthread, _, _ vm.Addr) vm.Addr {
		keys, readSeq, writeSeq, err := loadCoderState(g, sess)
		if err != nil {
			return 0
		}
		rc := minissl.NewRecordCoder(keys, minissl.ServerSide)
		rc.SetSeqs(readSeq, writeSeq)
		stream := Stream(g, fd)
		for {
			body, err := minissl.ExpectMsg(stream, minissl.MsgAppData)
			if err != nil {
				return 0 // EOF or framing garbage: connection over
			}
			plain, err := rc.Open(minissl.MsgAppData, body)
			if err != nil {
				// Injected/tampered record: dropped here, never
				// reaching the client handler (§5.1.2).
				continue
			}
			if err := fUserData.Store(g, user, plain); err != nil {
				return 0
			}
			fSessReadSeq.Store(g, sess, rc.ReadSeq())
			return vm.Addr(len(plain))
		}
	}
}

// makeSSLWrite: phase-2 encryption gate. Write-only descriptor grant; the
// plaintext comes from the user-data region.
func (m *MITM) makeSSLWrite(fd int, sess, user vm.Addr) sthread.GateFunc {
	return func(g *sthread.Sthread, _, _ vm.Addr) vm.Addr {
		plain, err := fUserData.Load(g, user)
		if err != nil || len(plain) == 0 {
			return 0
		}
		keys, readSeq, writeSeq, err := loadCoderState(g, sess)
		if err != nil {
			return 0
		}
		rc := minissl.NewRecordCoder(keys, minissl.ServerSide)
		rc.SetSeqs(readSeq, writeSeq)
		sealed, err := rc.Seal(minissl.MsgAppData, plain)
		if err != nil {
			return 0
		}
		if err := minissl.WriteMsg(Stream(g, fd), minissl.MsgAppData, sealed); err != nil {
			return 0
		}
		fSessWriteSeq.Store(g, sess, rc.WriteSeq())
		return 1
	}
}

// ServeConn runs the full two-phase pipeline for one connection.
func (m *MITM) ServeConn(conn *netsim.Conn) error {
	root := m.root
	fd := root.Task.InstallFD(conn, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	regions, err := m.newConnRegions()
	if err != nil {
		return err
	}
	defer m.releaseConnRegions(regions)

	state := &setupGateState{}

	// Gate policies (Figure 4).
	setupSC := policy.New().
		MustMemAdd(m.privTag, vm.PermRead).
		MustMemAdd(regions.argTag, vm.PermRW).
		MustMemAdd(regions.sessTag, vm.PermRW)
	recvFinSC := policy.New().
		MustMemAdd(regions.argTag, vm.PermRW).
		MustMemAdd(regions.sessTag, vm.PermRW).
		MustMemAdd(regions.finTag, vm.PermRW)
	sendFinSC := policy.New().
		MustMemAdd(regions.argTag, vm.PermRW).
		MustMemAdd(regions.sessTag, vm.PermRW).
		MustMemAdd(regions.finTag, vm.PermRead)

	// Phase 1: the handshake sthread. It may read and write the network,
	// the argument buffer, and the public key — and nothing else.
	hsSC := policy.New().
		MustMemAdd(regions.argTag, vm.PermRW).
		MustMemAdd(m.pubTag, vm.PermRead).
		FDAdd(fd, kernel.FDRW).
		SetMemPages(m.WorkerMemPages)
	hsSC.GateAdd(m.makeSetupGate(state, regions.sess), setupSC, m.privAddr, "setup_session_key")
	hsSC.GateAdd(m.makeRecvFinished(regions.sess, regions.fin), recvFinSC, 0, "receive_finished")
	hsSC.GateAdd(m.makeSendFinished(regions.sess, regions.fin), sendFinSC, 0, "send_finished")
	setupSpec, recvSpec, sendSpec := hsSC.Gates[0], hsSC.Gates[1], hsSC.Gates[2]

	hs, err := root.CreateNamed("ssl-handshake", hsSC, func(h *sthread.Sthread, arg vm.Addr) vm.Addr {
		if m.hooks.Worker != nil {
			m.hooks.Worker(h, &ConnContext{
				FD:          fd,
				PrivKeyAddr: m.privAddr,
				SessionAddr: regions.sess,
				SessionLen:  sessSchema.Size(),
				ArgAddr:     arg,
				Gates: map[string]*GateRef{
					"setup_session_key": {Spec: setupSpec},
					"receive_finished":  {Spec: recvSpec},
					"send_finished":     {Spec: sendSpec},
				},
			})
		}
		return m.handshakeBody(h, fd, arg, setupSpec, recvSpec, sendSpec)
	}, regions.arg)
	if err != nil {
		return err
	}
	m.Stats.SthreadsHS.Add(1)
	hsRet, fault := root.Join(hs)
	if fault != nil {
		m.Stats.Errors.Add(1)
		return fmtErr("mitm", "handshake sthread", fault)
	}
	if hsRet != 1 {
		m.Stats.Errors.Add(1)
		return fmtErr("mitm", "handshake", ErrHandshakeFailed)
	}

	// Phase 2: only now does the master start the client handler
	// (Figure 3). It holds the user-data region and the two record
	// gates; it has no descriptor for the network.
	sslReadSC := policy.New().
		MustMemAdd(regions.sessTag, vm.PermRW).
		MustMemAdd(regions.userTag, vm.PermRW).
		FDAdd(fd, kernel.FDRead)
	sslWriteSC := policy.New().
		MustMemAdd(regions.sessTag, vm.PermRW).
		MustMemAdd(regions.userTag, vm.PermRead).
		FDAdd(fd, kernel.FDWrite)

	chSC := policy.New().MustMemAdd(regions.userTag, vm.PermRW).SetMemPages(m.WorkerMemPages)
	chSC.GateAdd(m.makeSSLRead(fd, regions.sess, regions.user), sslReadSC, 0, "SSL_read")
	chSC.GateAdd(m.makeSSLWrite(fd, regions.sess, regions.user), sslWriteSC, 0, "SSL_write")
	readSpec, writeSpec := chSC.Gates[0], chSC.Gates[1]

	ch, err := root.CreateNamed("client-handler", chSC, func(c *sthread.Sthread, _ vm.Addr) vm.Addr {
		if m.hooks.ClientHandler != nil {
			m.hooks.ClientHandler(c, &ConnContext{
				SessionAddr: regions.sess,
				SessionLen:  sessSchema.Size(),
				Gates: map[string]*GateRef{
					"SSL_read":  {Spec: readSpec},
					"SSL_write": {Spec: writeSpec},
				},
			})
		}
		return m.handlerBody(c, regions.user, readSpec, writeSpec)
	}, 0)
	if err != nil {
		return err
	}
	m.Stats.SthreadsHS.Add(1)
	chRet, fault := root.Join(ch)
	if fault != nil {
		m.Stats.Errors.Add(1)
		return fmtErr("mitm", "client handler", fault)
	}
	if chRet != 1 {
		m.Stats.Errors.Add(1)
		return fmtErr("mitm", "client handler", errors.New("request failed"))
	}
	m.Stats.Requests.Add(1)
	return nil
}

// handshakeBody drives phase 1 without ever holding key material.
func (m *MITM) handshakeBody(h *sthread.Sthread, fd int, arg vm.Addr,
	setupSpec, recvSpec, sendSpec *policy.GateSpec) vm.Addr {
	stream := Stream(h, fd)
	var transcript minissl.Transcript

	chBody, err := minissl.ExpectMsg(stream, minissl.MsgClientHello)
	if err != nil {
		return 0
	}
	transcript.Add(minissl.MsgClientHello, chBody)
	clientRandom, offeredID, err := minissl.ParseClientHello(chBody)
	if err != nil {
		return 0
	}

	fOp.Store(h, arg, opHello)
	fClientRandom.Write(h, arg, clientRandom[:])
	// An oversized resume offer cannot match the cache; the codec refuses
	// to copy it and the handshake proceeds as a fresh session.
	if err := fSessionID.Store(h, arg, offeredID); err != nil {
		fSessionID.Store(h, arg, nil)
	}
	m.Stats.GateCalls.Add(1)
	if ret, err := h.CallGate(setupSpec, nil, arg); err != nil || ret != 1 {
		return 0
	}
	var serverRandom [minissl.RandomLen]byte
	fServerRandom.Read(h, arg, serverRandom[:])
	resumed := fResumed.Load(h, arg) == 1
	sessionID := fSessionIDOut.Bytes(h, arg)

	sh := minissl.BuildServerHello(serverRandom, sessionID, resumed)
	if err := minissl.WriteMsg(stream, minissl.MsgServerHello, sh); err != nil {
		return 0
	}
	transcript.Add(minissl.MsgServerHello, sh)

	if !resumed {
		cert := readBlob(h, m.pubAddr)
		if err := minissl.WriteMsg(stream, minissl.MsgCertificate, cert); err != nil {
			return 0
		}
		transcript.Add(minissl.MsgCertificate, cert)

		ckeBody, err := minissl.ExpectMsg(stream, minissl.MsgClientKeyExchange)
		if err != nil {
			return 0
		}
		transcript.Add(minissl.MsgClientKeyExchange, ckeBody)
		fOp.Store(h, arg, opKex)
		if err := fData.Store(h, arg, ckeBody); err != nil {
			minissl.SendAlert(stream, "bad key exchange")
			return 0
		}
		m.Stats.GateCalls.Add(1)
		if ret, err := h.CallGate(setupSpec, nil, arg); err != nil || ret != 1 {
			minissl.SendAlert(stream, "bad key exchange")
			return 0
		}
	}

	// Client Finished: pass the sealed record plus the transcript hash to
	// receive_finished; learn only pass/fail.
	cfBody, err := minissl.ExpectMsg(stream, minissl.MsgFinished)
	if err != nil {
		return 0
	}
	tsum := transcript.Sum()
	fMITMTranscript.Write(h, arg, tsum[:])
	if err := fMITMRec.Store(h, arg, cfBody); err != nil {
		minissl.SendAlert(stream, "bad finished")
		return 0
	}
	m.Stats.GateCalls.Add(1)
	if ret, err := h.CallGate(recvSpec, nil, arg); err != nil || ret != 1 {
		minissl.SendAlert(stream, "bad finished")
		return 0
	}

	// Server Finished: produced entirely by send_finished; this sthread
	// only moves ciphertext.
	m.Stats.GateCalls.Add(1)
	if ret, err := h.CallGate(sendSpec, nil, arg); err != nil || ret != 1 {
		return 0
	}
	sealed, err := fMITMRec.Load(h, arg)
	if err != nil || len(sealed) == 0 {
		return 0
	}
	if err := minissl.WriteMsg(stream, minissl.MsgFinished, sealed); err != nil {
		return 0
	}
	return 1
}

// handlerBody drives phase 2: request in via SSL_read, response out via
// SSL_write, no network descriptor.
func (m *MITM) handlerBody(c *sthread.Sthread, user vm.Addr,
	readSpec, writeSpec *policy.GateSpec) vm.Addr {
	m.Stats.GateCalls.Add(1)
	n, err := c.CallGate(readSpec, nil, 0)
	if err != nil || n == 0 {
		return 0
	}
	req, err := fUserData.Load(c, user)
	if err != nil || len(req) == 0 {
		return 0
	}

	resp := ServeStatic(c, m.docroot, string(req))
	if err := fUserData.Store(c, user, resp); err != nil {
		return 0
	}

	m.Stats.GateCalls.Add(1)
	if ret, err := c.CallGate(writeSpec, nil, 0); err != nil || ret != 1 {
		return 0
	}
	return 1
}
