// The pooled variant: the Recycled partitioning with its single shared
// gate replaced by a gatepool — and the per-connection worker sthread
// replaced by a per-slot recycled worker, the same amortization the paper
// applies to callgates (§3.3) applied one layer up.
//
// Each pool slot owns a private argument tag and two long-lived recycled
// sthreads instantiated against it:
//
//   - "worker": the unprivileged network-facing compartment. One
//     invocation serves one connection; the connection's descriptor is
//     passed as a per-invocation argument descriptor (CallFD) and revoked
//     when the invocation completes.
//   - "setup": the setup_session_key gate, holding the private-key tag.
//
// A connection's principal (its network address) shards it onto a home
// slot; the pool steals an idle slot when the home slot is busy and
// scrubs the slot's argument block whenever it passes between principals.
// Relative to RecycledServer this removes both scaling bottlenecks: the
// single gate every connection serialized through, and the sthread
// creation still paid per connection. Relative isolation: connections
// leased different slots share no argument memory at all (per-slot tags),
// and the §3.3 cross-principal residue is scrubbed — but like any
// recycled compartment, a slot's sthread-private heaps persist across the
// principals sharded onto it (the PAM scratch lesson, §5.2). See
// TestPooledCrossConnectionResidue for the contrast with the recycled
// variant's shared-tag leak.

package httpd

import (
	"crypto/rsa"
	"runtime"
	"wedge/internal/gatepool"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// DefaultPoolSlots sizes a PooledServer when the caller does not: twice
// the host parallelism, floored at two. Slot count should track available
// parallelism, not connection concurrency — slots beyond the cores that
// can run them add scheduling churn without overlapping any work, while
// admission control (Acquire blocking) absorbs the excess connections.
func DefaultPoolSlots() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	return n
}

// PooledServer scales the recycled-callgate design across a gate pool.
type PooledServer struct {
	Stats Stats

	root    *sthread.Sthread
	docroot string

	privTag  tags.Tag
	privAddr vm.Addr
	pubTag   tags.Tag
	pubAddr  vm.Addr

	pool  *gatepool.Pool
	cache *minissl.SessionCache
	hooks Hooks

	// conns demultiplexes gate-side handshake state by conn id, as in
	// RecycledServer; each entry additionally carries the slot lease so
	// the worker entry can reach its own slot's setup gate.
	conns gatepool.ConnTable[*pooledConnState]
}

type pooledConnState struct {
	setupGateState
	lease *gatepool.Lease
	fd    int
}

// NewPooled builds the pooled server with the given number of slots
// (DefaultPoolSlots() if slots <= 0); Resize adjusts it at runtime.
func NewPooled(root *sthread.Sthread, docroot string, priv *rsa.PrivateKey, cache bool, slots int, hooks Hooks) (*PooledServer, error) {
	if slots <= 0 {
		slots = DefaultPoolSlots()
	}
	p := &PooledServer{root: root, docroot: docroot, hooks: hooks}
	if cache {
		p.cache = minissl.NewSessionCache()
	}
	var err error
	if p.privTag, p.privAddr, err = placeBlob(root, minissl.MarshalPrivateKey(priv)); err != nil {
		return nil, err
	}
	if p.pubTag, p.pubAddr, err = placeBlob(root, minissl.MarshalPublicKey(&priv.PublicKey)); err != nil {
		return nil, err
	}
	p.pool, err = gatepool.New(root, gatepool.Config{
		Name:    "httpd",
		Slots:   slots,
		ArgSize: argSize,
		Gates: []gatepool.GateDef{
			{
				Name:  "worker",
				SC:    policy.New().MustMemAdd(p.pubTag, vm.PermRead),
				Entry: p.workerEntry,
			},
			{
				Name:    "setup",
				SC:      policy.New().MustMemAdd(p.privTag, vm.PermRead),
				Entry:   p.setupEntry,
				Trusted: p.privAddr,
			},
		},
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Close drains the pool and retires every slot.
func (p *PooledServer) Close() error { return p.pool.Close() }

// Resize grows or shrinks the slot pool (see gatepool.Pool.Resize).
func (p *PooledServer) Resize(slots int) error { return p.pool.Resize(slots) }

// PoolStats snapshots the scheduler counters.
func (p *PooledServer) PoolStats() gatepool.Stats { return p.pool.Stats() }

// ServeConn handles one connection, sharding by the peer's network
// address. It blocks while every slot is leased, which is the pool's
// admission control.
func (p *PooledServer) ServeConn(conn *netsim.Conn) error {
	return p.ServeConnAs(conn, conn.RemoteAddr())
}

// ServeConnAs is ServeConn with an explicit principal, for callers that
// know a better identity than the network address (an authenticated user,
// a TLS client identity).
func (p *PooledServer) ServeConnAs(conn *netsim.Conn, principal string) error {
	root := p.root
	fd := root.Task.InstallFD(conn, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	lease, err := p.pool.Acquire(principal)
	if err != nil {
		return fmtErr("pooled", "acquire", err)
	}
	defer lease.Release()

	connID := p.conns.Put(&pooledConnState{lease: lease, fd: fd})
	defer p.conns.Delete(connID)

	root.Store64(lease.Arg+argConnID, connID)
	root.Store64(lease.Arg+argPoolFD, uint64(fd))

	// One recycled-worker invocation serves the whole connection; no
	// sthread is created on this path.
	ret, err := lease.CallFD("worker", root, lease.Arg, fd, kernel.FDRW)
	if err != nil {
		p.Stats.Errors.Add(1)
		return fmtErr("pooled", "worker", err)
	}
	if ret != 1 {
		p.Stats.Errors.Add(1)
		return fmtErr("pooled", "worker", ErrHandshakeFailed)
	}
	p.Stats.Requests.Add(1)
	return nil
}

// workerEntry is the per-slot recycled worker: one invocation per
// connection, running with the slot's argument tag, the public key, and
// the per-invocation argument descriptor — nothing else.
func (p *PooledServer) workerEntry(w *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
	fd := int(w.Load64(arg + argPoolFD))
	state, ok := p.conns.Get(w.Load64(arg + argConnID))
	if !ok || state.fd != fd || state.lease.Arg != arg {
		return 0
	}
	if p.hooks.Worker != nil {
		p.hooks.Worker(w, &ConnContext{
			FD:          fd,
			PrivKeyAddr: p.privAddr,
			ArgAddr:     arg,
		})
	}
	lease := state.lease
	setup := func(w *sthread.Sthread, arg vm.Addr) (vm.Addr, error) {
		return lease.Call("setup", w, arg)
	}
	p.Stats.GateCalls.Add(1) // the worker invocation itself
	return recycledWorkerBody(w, fd, arg, setup, &p.Stats, p.pubAddr, p.docroot)
}

// setupEntry is RecycledServer.gateBody against the pooled connection
// state: hello and key-exchange operations demultiplexed by conn id, with
// the private key reachable through the kernel-held trusted argument.
func (p *PooledServer) setupEntry(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	// The slot pin gatepool.ConnTable requires: the conn id is
	// worker-supplied and untrusted, but the gate can only be invoked on
	// its own slot's argument block, so anchoring the state at exactly
	// this block keeps cross-slot handshake state unreachable, as the
	// pool's isolation story promises.
	state, ok := p.conns.Get(g.Load64(arg + argConnID))
	if !ok || state.lease.Arg != arg {
		return 0
	}

	switch g.Load64(arg + argOp) {
	case opHello:
		g.Read(arg+argClientRandom, state.clientRandom[:])
		sr, err := minissl.NewRandom(cryptoRand{})
		if err != nil {
			return 0
		}
		state.serverRandom = sr
		g.Write(arg+argServerRandom, sr[:])

		idLen := g.Load64(arg + argSessionIDLen)
		if p.cache != nil && idLen > 0 && idLen <= minissl.SessionIDLen {
			id := make([]byte, idLen)
			g.Read(arg+argSessionID, id)
			if master, ok := p.cache.Get(id); ok {
				state.resumed = true
				g.Store64(arg+argResumed, 1)
				g.Write(arg+argSessionIDOut, id)
				keys := minissl.KeyBlock(master, state.clientRandom, sr)
				g.Write(arg+argMaster, master[:])
				g.Write(arg+argKeys, keys.Marshal())
				return 1
			}
		}
		g.Store64(arg+argResumed, 0)
		id, err := minissl.NewSessionID(cryptoRand{})
		if err != nil {
			return 0
		}
		g.Write(arg+argSessionIDOut, id)
		return 1

	case opKex:
		if state.resumed {
			return 0
		}
		priv, err := minissl.UnmarshalPrivateKey(readBlob(g, trusted))
		if err != nil {
			return 0
		}
		n := g.Load64(arg + argDataLen)
		if n == 0 || n > 256 {
			return 0
		}
		ct := make([]byte, n)
		g.Read(arg+argData, ct)
		premaster, err := minissl.DecryptPremaster(priv, ct)
		if err != nil {
			return 0
		}
		master := minissl.DeriveMaster(premaster, state.clientRandom, state.serverRandom)
		keys := minissl.KeyBlock(master, state.clientRandom, state.serverRandom)
		g.Write(arg+argMaster, master[:])
		g.Write(arg+argKeys, keys.Marshal())
		if p.cache != nil {
			id := make([]byte, minissl.SessionIDLen)
			g.Read(arg+argSessionIDOut, id)
			p.cache.Put(id, master)
		}
		return 1
	}
	return 0
}
