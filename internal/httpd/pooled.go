// The pooled variant: the Recycled partitioning with its single shared
// gate replaced by a gatepool — and the per-connection worker sthread
// replaced by a per-slot recycled worker, the same amortization the paper
// applies to callgates (§3.3) applied one layer up.
//
// The server is a serve.App descriptor; the runtime (internal/serve) owns
// every piece of serving machinery — pool lifecycle, accept loop, drain,
// admission control, conn-id demux — and this file contributes only what
// is httpd's: the two gates each slot carries and their entry points.
//
//   - "worker": the unprivileged network-facing compartment. One
//     invocation serves one connection; the connection's descriptor is
//     passed as a per-invocation argument descriptor (CallFD) and revoked
//     when the invocation completes.
//   - "setup": the setup_session_key gate, holding the private-key tag.
//
// A connection's principal (its network address) shards it onto a home
// slot; the pool steals an idle slot when the home slot is busy and
// scrubs the slot's argument block whenever it passes between principals.
// Relative to RecycledServer this removes both scaling bottlenecks: the
// single gate every connection serialized through, and the sthread
// creation still paid per connection. Relative isolation: connections
// leased different slots share no argument memory at all (per-slot tags),
// and the §3.3 cross-principal residue is scrubbed — but like any
// recycled compartment, a slot's sthread-private heaps persist across the
// principals sharded onto it (the PAM scratch lesson, §5.2). See
// TestPooledCrossConnectionResidue for the contrast with the recycled
// variant's shared-tag leak.

package httpd

import (
	"crypto/rsa"
	"wedge/internal/gatepool"
	"wedge/internal/minissl"
	"wedge/internal/policy"
	"wedge/internal/serve"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// DefaultPoolSlots sizes a PooledServer when the caller does not. It is
// the runtime's one shared policy (serve.DefaultSlots): twice the host
// parallelism, floored at two.
func DefaultPoolSlots() int { return serve.DefaultSlots() }

// PooledServer scales the recycled-callgate design across a gate pool.
type PooledServer struct {
	Stats Stats

	root    *sthread.Sthread
	docroot string

	privTag  tags.Tag
	privAddr vm.Addr
	pubTag   tags.Tag
	pubAddr  vm.Addr

	cache *minissl.SessionCache
	hooks Hooks

	// The embedded runtime owns the pool, the accept loop
	// (Serve), lifecycle (Drain/Undrain/Close), admission control
	// (SetQueue), sizing (Resize/SetAutoSlots), observability
	// (Snapshot/PoolStats), and the conn-id demux (Lookup) — all
	// promoted onto the server. The per-connection state is the setup
	// gate's handshake record.
	*serve.Runtime[setupGateState]
}

// NewPooled builds the pooled server with the given number of slots
// (serve.DefaultSlots if slots <= 0); Resize adjusts it at runtime.
func NewPooled(root *sthread.Sthread, docroot string, priv *rsa.PrivateKey, cache bool, slots int, hooks Hooks) (*PooledServer, error) {
	p := &PooledServer{root: root, docroot: docroot, hooks: hooks}
	if cache {
		p.cache = minissl.NewSessionCache()
	}
	var err error
	if p.privTag, p.privAddr, err = placeBlob(root, minissl.MarshalPrivateKey(priv)); err != nil {
		return nil, err
	}
	if p.pubTag, p.pubAddr, err = placeBlob(root, minissl.MarshalPublicKey(&priv.PublicKey)); err != nil {
		root.App().Tags.TagDelete(p.privTag)
		return nil, err
	}
	p.Runtime, err = serve.New(root, serve.App[setupGateState]{
		Name:   "httpd",
		Slots:  slots,
		Schema: argSchema,
		Worker: "worker",
		Gates: []gatepool.GateDef{
			{
				Name:  "worker",
				SC:    policy.New().MustMemAdd(p.pubTag, vm.PermRead),
				Entry: p.workerEntry,
			},
			{
				Name:    "setup",
				SC:      policy.New().MustMemAdd(p.privTag, vm.PermRead),
				Entry:   p.setupEntry,
				Trusted: p.privAddr,
			},
		},
		Finish: func(_ *serve.Conn[setupGateState], ret vm.Addr, err error) error {
			if err != nil {
				p.Stats.Errors.Add(1)
				return fmtErr("pooled", "worker", err)
			}
			if ret != 1 {
				p.Stats.Errors.Add(1)
				return fmtErr("pooled", "worker", ErrHandshakeFailed)
			}
			p.Stats.Requests.Add(1)
			return nil
		},
	})
	if err != nil {
		// A failed runtime build must not strand the blob tags.
		root.App().Tags.TagDelete(p.privTag)
		root.App().Tags.TagDelete(p.pubTag)
		return nil, err
	}
	return p, nil
}

// workerEntry is the per-slot recycled worker: one invocation per
// connection, running with the slot's argument tag, the public key, and
// the per-invocation argument descriptor — nothing else. The runtime's
// Lookup applies the slot pin: a forged conn id or fd word cannot reach
// another slot's connection.
func (p *PooledServer) workerEntry(w *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
	c := p.Lookup(w, arg)
	if c == nil {
		return 0
	}
	if p.hooks.Worker != nil {
		p.hooks.Worker(w, &ConnContext{
			FD:          c.FD,
			PrivKeyAddr: p.privAddr,
			ArgAddr:     arg,
		})
	}
	lease := c.Lease
	setup := func(w *sthread.Sthread, arg vm.Addr) (vm.Addr, error) {
		return lease.Call("setup", w, arg)
	}
	p.Stats.GateCalls.Add(1) // the worker invocation itself
	return httpdWorkerBody(w, c.FD, arg, setup, &p.Stats, p.pubAddr, p.docroot)
}

// setupEntry is RecycledServer.gateBody against the pooled connection
// state: the shared setupOps demultiplexed by conn id, with the private
// key reachable through the kernel-held trusted argument. The conn id is
// worker-supplied and untrusted; the runtime's Lookup anchors the state
// at exactly this invocation's argument block, keeping cross-slot
// handshake state unreachable, as the pool's isolation story promises.
func (p *PooledServer) setupEntry(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	c := p.Lookup(g, arg)
	if c == nil {
		return 0
	}
	return setupOps(g, arg, trusted, &c.State, p.cache)
}
