package httpd

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/sthread"
	"wedge/internal/tags"
)

// TestRecycledNoSheddingPastSixtyConnections: the ROADMAP bottleneck the
// growable arena removes. The recycled variant backs every in-flight
// connection's argument block with one shared tag; with the old fixed
// 64 KiB arena, past ~60 concurrent connections Smalloc returned ENOMEM
// and the server shed load (clients needed retries). With segment growth
// every connection must be served on the first attempt — no retry loop
// here, deliberately.
func TestRecycledNoSheddingPastSixtyConnections(t *testing.T) {
	// Enough concurrent argument blocks to overflow the first arena
	// segment with margin — the cliff where the fixed arena shed load.
	// Derived from the schema so the count tracks the block size.
	conns := tags.DefaultRegionSize/argSchema.Size() + 8
	k := kernel.New()
	priv := serverKey(t)
	if err := SetupDocroot(k, "/var/www", 1024); err != nil {
		t.Fatal(err)
	}
	app := sthread.Boot(k)

	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := NewRecycled(root, "/var/www", priv, false, Hooks{})
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			defer srv.Close()
			l, err := root.Task.Listen("apache:443")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			var wg sync.WaitGroup
			for i := 0; i < conns; i++ {
				c, err := l.Accept()
				if err != nil {
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := srv.ServeConn(c); err != nil {
						t.Errorf("serve: %v", err)
					}
				}()
			}
			wg.Wait()
		})
	}()
	<-ready

	// A barrier holds every client back until all have dialed, so all
	// conns argument blocks are live in the shared arena at once.
	var start sync.WaitGroup
	start.Add(conns)
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := k.Net.Dial("apache:443")
			if err != nil {
				start.Done()
				errs <- err
				return
			}
			defer conn.Close()
			start.Done()
			start.Wait()
			cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
			if err != nil {
				errs <- fmt.Errorf("handshake: %w", err)
				return
			}
			if _, err := cc.Write([]byte("GET /index.html")); err != nil {
				errs <- err
				return
			}
			resp, err := cc.ReadRecord()
			if err != nil {
				errs <- err
				return
			}
			if !strings.HasPrefix(string(resp), "200 OK\n") {
				errs <- fmt.Errorf("response %.30q", resp)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("shed connection (first attempt failed): %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	grows := app.Tags.GrowCount()
	if grows == 0 {
		t.Fatalf("arena never grew despite %d concurrent argument blocks", conns)
	}
	t.Logf("arena grew %d segment(s) serving %d concurrent connections", grows, conns)
}
