// Package httpd reproduces the Apache/OpenSSL application study (§5.1):
// an SSL web server built four ways over the same minissl protocol code.
//
//   - Monolithic: the vanilla baseline. Private key, session keys and
//     request parsing share one compartment, served by a pool of reused
//     workers — fast, and exploitable.
//   - Simple (Figure 2): per-connection worker sthreads with the RSA
//     private key behind a setup_session_key callgate that generates the
//     server random itself. Protects the private key and prevents session
//     key biasing under the eavesdropper threat model (§5.1.1).
//   - MITM (Figures 3-5): the finer two-phase partitioning that also
//     resists a man in the middle who exploits the network-facing
//     compartment (§5.1.2). The SSL handshake sthread can neither read
//     the session key nor use encryption/decryption oracles; the client
//     handler never touches the network directly.
//   - Recycled: the Simple partitioning with a recycled callgate, the
//     throughput optimization of Table 2, including its documented
//     isolation trade-off.
//
// The request protocol above the record layer is a one-request HTTP/1.0
// subset: "GET <path>" in a single application-data record, the file
// contents (or an error line) back in a single record.
package httpd

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	"wedge/internal/gateabi"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/sthread"
	"wedge/internal/vfs"
	"wedge/internal/vm"
)

// Errors.
var (
	ErrHandshakeFailed = errors.New("httpd: handshake failed")
	ErrBadRequest      = errors.New("httpd: malformed request")
)

// Stats counts server activity across variants.
type Stats struct {
	Requests   atomic.Uint64
	Errors     atomic.Uint64
	Resumed    atomic.Uint64
	FullHS     atomic.Uint64
	GateCalls  atomic.Uint64 // callgate invocations issued per variant
	SthreadsHS atomic.Uint64 // sthreads created per request path
}

// Hooks lets the attack driver inject "exploit" code into specific
// compartments: the function runs with exactly the privileges of the
// compartment it is injected into, which is the paper's threat model for
// a subverted network-facing component.
type Hooks struct {
	// Worker runs inside the unprivileged network-facing compartment
	// (worker sthread in the Simple variant, SSL handshake sthread in
	// the MITM variant, pool worker in Monolithic) once per connection,
	// before request processing.
	Worker func(s *sthread.Sthread, c *ConnContext)
	// ClientHandler runs inside the MITM variant's second-phase
	// compartment.
	ClientHandler func(s *sthread.Sthread, c *ConnContext)
}

// ConnContext is what injected code plausibly knows about the process: the
// address-space layout and descriptor numbers. Knowing an address conveys
// no right to access it — that is the MMU's job.
type ConnContext struct {
	FD          int     // network descriptor number (this compartment's view)
	PrivKeyAddr vm.Addr // where the private key lives
	PrivKeyLen  int
	SessionAddr vm.Addr // where session-key material lives
	SessionLen  int
	ArgAddr     vm.Addr // the gate argument buffer, if any

	// Gates the compartment may invoke (for oracle-abuse attempts).
	Gates map[string]*GateRef
}

// GateRef packages a gate spec with the sthread API needed to invoke it.
type GateRef struct {
	Spec  any // *policy.GateSpec, kept loose to avoid import cycles in attacks
	Perms any // *policy.SC extra perms that a legitimate caller would pass
}

// fdStream adapts a task file descriptor to io.ReadWriter so the minissl
// framing functions work inside compartments; every byte moves through the
// kernel's descriptor permission checks.
type fdStream struct {
	s  *sthread.Sthread
	fd int
}

func (f fdStream) Read(p []byte) (int, error)  { return f.s.Task.ReadFD(f.fd, p) }
func (f fdStream) Write(p []byte) (int, error) { return f.s.Task.WriteFD(f.fd, p) }

// Stream returns an io.ReadWriter over fd in compartment s.
func Stream(s *sthread.Sthread, fd int) io.ReadWriter { return fdStream{s, fd} }

// ServeStatic resolves a one-line request against the docroot and returns
// the response payload. It runs in whatever compartment the variant
// assigns request processing to.
func ServeStatic(s *sthread.Sthread, docroot, request string) []byte {
	request = strings.TrimRight(request, "\r\n")
	path, ok := strings.CutPrefix(request, "GET ")
	if !ok || path == "" || strings.Contains(path, "..") {
		return []byte("400 Bad Request\n")
	}
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	fs := s.Task.Kernel().FS
	data, err := fs.ReadFile(s.Task.Cred(), s.Task.Root, docroot+path)
	if err != nil {
		return []byte("404 Not Found\n")
	}
	return append([]byte("200 OK\n"), data...)
}

// SetupDocroot populates the simulated filesystem with a docroot
// containing index.html and a few assets, world-readable.
func SetupDocroot(k *kernel.Kernel, docroot string, pageSize int) error {
	cred := vfs.Cred{UID: 0}
	if err := k.FS.MkdirAll(cred, k.FS.Root(), docroot, 0o755); err != nil {
		return err
	}
	page := make([]byte, pageSize)
	for i := range page {
		page[i] = byte('a' + i%26)
	}
	if err := k.FS.WriteFile(cred, k.FS.Root(), docroot+"/index.html", page, 0o644); err != nil {
		return err
	}
	return k.FS.WriteFile(cred, k.FS.Root(), docroot+"/about.html", []byte("<h1>about</h1>"), 0o644)
}

// ---- shared compartment memory layouts ----------------------------------------

// The gate argument-block schema, shared by every variant (the buffer
// lives in a per-connection tag for Simple/MITM, the recycled gate's
// shared tag, or a pool slot's tag). The layout is computed from these
// declarations — no hand-maintained offsets — and the typed handles below
// are the only way worker and gate code touches the block. The demux
// words serve the recycled variant's conn-id demultiplexer and the serve
// runtime's slot pin; the kexCap bound (one RSA ciphertext) and the
// session-id capacity are enforced by the codec with *ArgBoundsError, so
// an oversized client payload can never smear past its field into memory
// the pool's inter-principal scrub does not reach.
const (
	kexCap      = 256 // premaster ciphertext bound (one RSA-2048 ciphertext)
	keyBlockLen = 96  // marshalled minissl.Keys length (three 32-byte keys)
)

var (
	argSchemaB = gateabi.NewSchema("httpd")

	fOp           = gateabi.U64(argSchemaB, "op") // opHello or opKex
	fConnID       = gateabi.ConnID(argSchemaB)
	fClientRandom = gateabi.Fixed(argSchemaB, "client_random", minissl.RandomLen)
	fSessionID    = gateabi.Bytes(argSchemaB, "session_id_offer", minissl.SessionIDLen)
	fServerRandom = gateabi.Fixed(argSchemaB, "server_random", minissl.RandomLen) // gate writes (public value)
	fResumed      = gateabi.U64(argSchemaB, "resumed")                            // gate writes 1 when resuming
	fMaster       = gateabi.Fixed(argSchemaB, "master", minissl.MasterLen)        // Simple/Recycled/pooled only
	fKeys         = gateabi.Fixed(argSchemaB, "key_block", keyBlockLen)           // Simple/Recycled/pooled only
	fData         = gateabi.Bytes(argSchemaB, "kex_data", kexCap)
	fSessionIDOut = gateabi.Fixed(argSchemaB, "session_id_out", minissl.SessionIDLen)
	fPoolFD       = gateabi.FD(argSchemaB)

	// MITM handshake-phase extensions: the transcript hash and the sealed
	// Finished record the receive_finished gate verifies. Declared on the
	// shared schema (the MITM block is a superset of the Simple one).
	fMITMTranscript = gateabi.Fixed(argSchemaB, "mitm_transcript", 32)
	fMITMRec        = gateabi.Bytes(argSchemaB, "mitm_finished_rec", 128)

	argSchema = argSchemaB.Seal()
)

// GateSchema exposes the argument-block schema (for the conformance
// battery and the cross-app FuzzGateABI harness).
func GateSchema() *gateabi.Schema { return argSchema }

const (
	opHello = 1
	opKex   = 2
)

// Session region schema (MITM variant): all key material and record
// sequence state, readable only by the callgates granted the session tag.
var (
	sessSchemaB       = gateabi.NewSchema("httpd-session")
	fSessMaster       = gateabi.Fixed(sessSchemaB, "master", minissl.MasterLen)
	fSessKeys         = gateabi.Fixed(sessSchemaB, "key_block", keyBlockLen)
	fSessClientRandom = gateabi.Fixed(sessSchemaB, "client_random", minissl.RandomLen)
	fSessServerRandom = gateabi.Fixed(sessSchemaB, "server_random", minissl.RandomLen)
	fSessReadSeq      = gateabi.U64(sessSchemaB, "read_seq")
	fSessWriteSeq     = gateabi.U64(sessSchemaB, "write_seq")
	fSessEstablished  = gateabi.U64(sessSchemaB, "established")
	sessSchema        = sessSchemaB.Seal()
)

// Finished-state region schema (MITM variant): written by
// receive_finished, read by send_finished, invisible to the handshake
// sthread (§5.1.2).
var (
	finSchemaB  = gateabi.NewSchema("httpd-finished")
	fFinValid   = gateabi.U64(finSchemaB, "valid")
	fFinPayload = gateabi.Fixed(finSchemaB, "payload", 32)
	finSchema   = finSchemaB.Seal()
)

// User-data region schema (MITM variant phase 2): the plaintext handoff
// between the SSL gates and the client handler.
var (
	userSchemaB = gateabi.NewSchema("httpd-user")
	fUserData   = gateabi.Bytes(userSchemaB, "data", 16*1024)
	userSchema  = userSchemaB.Seal()
)

// loadCoderState reads keys and one direction's sequence counter out of a
// session region and builds a record coder positioned at those sequences.
func loadCoderState(s *sthread.Sthread, sess vm.Addr) (minissl.Keys, uint64, uint64, error) {
	kb := make([]byte, fSessKeys.Size())
	if err := s.TryRead(sess+fSessKeys.Off(), kb); err != nil {
		return minissl.Keys{}, 0, 0, err
	}
	keys, err := minissl.UnmarshalKeys(kb)
	if err != nil {
		return minissl.Keys{}, 0, 0, err
	}
	return keys, fSessReadSeq.Load(s, sess), fSessWriteSeq.Load(s, sess), nil
}

// fmtErr wraps an error with the variant and phase for diagnosability.
func fmtErr(variant, phase string, err error) error {
	return fmt.Errorf("httpd/%s: %s: %w", variant, phase, err)
}
