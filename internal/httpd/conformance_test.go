package httpd

import (
	"fmt"
	"strings"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/serve/servetest"
	"wedge/internal/sthread"
)

// TestServeConformance runs the shared serve-app battery (residue scrub,
// drain/undrain, resize under load, leak accounting, snapshot
// consistency) against the pooled SSL server. The residue window is the
// master secret the setup gate writes into the block's master field —
// the §3.3 leak the
// recycled variant reproduces (TestRecycledCrossConnectionResidue) and
// the pool must close.
func TestServeConformance(t *testing.T) {
	priv := serverKey(t)

	// holdHTTP completes the SSL handshake — the worker invocation is
	// then provably in flight, parked on the request read.
	holdHTTP := func(k *kernel.Kernel) (*netsim.Conn, *minissl.ClientConn, error) {
		conn, err := k.Net.Dial("apache:443")
		if err != nil {
			return nil, nil, err
		}
		cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
		if err != nil {
			conn.Close()
			return nil, nil, err
		}
		return conn, cc, nil
	}
	finishHTTP := func(conn *netsim.Conn, cc *minissl.ClientConn) error {
		defer conn.Close()
		if _, err := cc.Write([]byte("GET /index.html")); err != nil {
			return err
		}
		resp, err := cc.ReadRecord()
		if err != nil {
			return err
		}
		if !strings.HasPrefix(string(resp), "200 OK\n") {
			return fmt.Errorf("response %.30q", resp)
		}
		return nil
	}

	servetest.Run(t, servetest.App{
		Name: "httpd",
		Addr: "apache:443",
		Setup: func(k *kernel.Kernel) error {
			return SetupDocroot(k, "/var/www", 1024)
		},
		New: func(root *sthread.Sthread, slots int, probe servetest.Probe) (servetest.Runtime, error) {
			hooks := Hooks{}
			if probe != nil {
				hooks.Worker = func(s *sthread.Sthread, c *ConnContext) { probe(s, c.ArgAddr) }
			}
			return NewPooled(root, "/var/www", priv, false, slots, hooks)
		},
		Session: func(k *kernel.Kernel) ([]byte, error) {
			conn, cc, err := holdHTTP(k)
			if err != nil {
				return nil, err
			}
			if err := finishHTTP(conn, cc); err != nil {
				return nil, err
			}
			return cc.Session.Master[:], nil
		},
		Hold: func(k *kernel.Kernel) (*servetest.Held, error) {
			conn, cc, err := holdHTTP(k)
			if err != nil {
				return nil, err
			}
			return &servetest.Held{
				Finish:  func() error { return finishHTTP(conn, cc) },
				Abandon: func() error { return conn.Close() },
			}, nil
		},
		Schema: argSchema,
		// The private- and public-key blob tags outlive the runtime.
		StaticTags: 2,
	})
}
