package httpd

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// httpdFuzzServer boots one partitioned (Simple) SSL server per fuzz
// process and serves connections forever; each fuzz execution dials it.
// The accept loop reports every connection's ServeConn result in dial
// order (executions are sequential within a process), so the fuzz body
// can assert the worker compartment never faulted.
type httpdFuzzServer struct {
	k       *kernel.Kernel
	results chan error
}

var (
	httpdFuzzOnce sync.Once
	httpdFuzzSrv  *httpdFuzzServer
)

func startHTTPDFuzzServer(f *testing.F) *httpdFuzzServer {
	httpdFuzzOnce.Do(func() {
		k := kernel.New()
		if err := SetupDocroot(k, "/var/www", 512); err != nil {
			panic(err)
		}
		app := sthread.Boot(k)
		fs := &httpdFuzzServer{k: k, results: make(chan error)}
		ready := make(chan struct{})
		go func() {
			err := app.Main(func(root *sthread.Sthread) {
				priv, err := minissl.GenerateServerKey()
				if err != nil {
					panic(err)
				}
				srv, err := NewSimple(root, "/var/www", priv, true, Hooks{})
				if err != nil {
					panic(err)
				}
				l, err := root.Task.Listen("apache:443")
				if err != nil {
					panic(err)
				}
				close(ready)
				for {
					c, err := l.Accept()
					if err != nil {
						return
					}
					err = srv.ServeConn(c)
					c.Close()
					fs.results <- err
				}
			})
			if err != nil {
				panic(err)
			}
		}()
		<-ready
		httpdFuzzSrv = fs
	})
	return httpdFuzzSrv
}

// rec frames one record-layer message, as WriteMsg does.
func rec(typ byte, payload []byte) []byte {
	out := []byte{typ, byte(len(payload) >> 16), byte(len(payload) >> 8), byte(len(payload))}
	return append(out, payload...)
}

// hello builds a structurally valid ClientHello body: random || idLen ||
// sessionID.
func hello(idLen int) []byte {
	var random [minissl.RandomLen]byte
	for i := range random {
		random[i] = byte(i * 7)
	}
	body := append([]byte{}, random[:]...)
	body = append(body, byte(idLen))
	body = append(body, bytes.Repeat([]byte{0xAB}, idLen)...)
	return body
}

// FuzzHTTPDRecord feeds arbitrary bytes at the httpd record layer — the
// framing and handshake parsing the network-facing worker compartment
// performs on untrusted input — through a live partitioned server. The
// properties fuzzed for: the worker compartment never faults (a parser
// crash would be an sthread death, surfacing as a *vm.Fault from
// ServeConn), garbage fails the handshake cleanly rather than wedging
// the accept loop, and the server stays serviceable for the next
// connection (the loop itself proves this: a wedged worker would hang
// the result channel).
func FuzzHTTPDRecord(f *testing.F) {
	seeds := [][]byte{
		{},
		rec(minissl.MsgClientHello, hello(0)),
		rec(minissl.MsgClientHello, hello(16)),
		append(rec(minissl.MsgClientHello, hello(0)),
			rec(minissl.MsgClientKeyExchange, bytes.Repeat([]byte{0x42}, 64))...),
		append(rec(minissl.MsgClientHello, hello(0)),
			rec(minissl.MsgFinished, bytes.Repeat([]byte{0x13}, 40))...),
		rec(minissl.MsgClientHello, hello(200)),        // idLen > body
		rec(minissl.MsgAppData, []byte("GET /")),       // data before handshake
		rec(minissl.MsgAlert, []byte("x")),             // alert first
		{minissl.MsgClientHello, 0xff, 0xff, 0xff},     // length bomb header
		rec(minissl.MsgClientHello, hello(0))[:10],     // truncated record
		bytes.Repeat([]byte{0}, 64),                    // zero records
		append(rec(8, nil), rec(255, []byte{1, 2})...), // unknown types
	}
	for _, s := range seeds {
		f.Add(s)
	}
	srv := startHTTPDFuzzServer(f)
	f.Fuzz(func(t *testing.T, input []byte) {
		conn, err := srv.k.Net.Dial("apache:443")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if len(input) > 0 {
			if _, err := conn.Write(input); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
		// Half-close: the worker sees EOF after consuming the input, so
		// every session terminates even mid-handshake.
		conn.CloseWrite()
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		err = <-srv.results
		var fault *vm.Fault
		if errors.As(err, &fault) {
			t.Fatalf("worker compartment faulted on %q: %v", input, err)
		}
	})
}
