// The monolithic baseline: vanilla Apache/OpenSSL. One trust domain holds
// the private key, every session key, and all request-parsing code; a pool
// of reused workers serves connections with no isolation between
// successive requests — which is why it tops Table 2 and why an exploit
// anywhere leaks everything.

package httpd

import (
	"crypto/rsa"

	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// Monolithic is the unpartitioned server.
type Monolithic struct {
	Stats Stats

	root    *sthread.Sthread
	docroot string
	priv    *rsa.PrivateKey
	cache   *minissl.SessionCache
	hooks   Hooks

	// The private key also lives in the root sthread's simulated memory,
	// as it would in a real process image; this is what an exploit reads.
	privAddr vm.Addr
	privLen  int
}

// NewMonolithic builds the baseline server inside the root sthread.
func NewMonolithic(root *sthread.Sthread, docroot string, priv *rsa.PrivateKey, cache bool, hooks Hooks) (*Monolithic, error) {
	m := &Monolithic{root: root, docroot: docroot, priv: priv, hooks: hooks}
	if cache {
		m.cache = minissl.NewSessionCache()
	}
	// Place the key bytes in plain (untagged, but root-visible) memory.
	der := minissl.MarshalPrivateKey(priv)
	addr, err := root.Malloc(len(der))
	if err != nil {
		return nil, err
	}
	root.Write(addr, der)
	m.privAddr, m.privLen = addr, len(der)
	return m, nil
}

// ServeConn handles one accepted connection entirely within the root
// compartment, like a pooled Apache worker: no sthread creation, no
// callgates, no isolation.
func (m *Monolithic) ServeConn(conn *netsim.Conn) error {
	fd := m.root.Task.InstallFD(conn, 3) // FDRW
	defer m.root.Task.CloseFD(fd)

	if m.hooks.Worker != nil {
		m.hooks.Worker(m.root, &ConnContext{
			FD:          fd,
			PrivKeyAddr: m.privAddr,
			PrivKeyLen:  m.privLen,
		})
	}

	stream := Stream(m.root, fd)
	sc, err := minissl.ServerHandshake(stream, m.priv, m.cache)
	if err != nil {
		m.Stats.Errors.Add(1)
		return fmtErr("mono", "handshake", err)
	}
	if sc.Resumed {
		m.Stats.Resumed.Add(1)
	} else {
		m.Stats.FullHS.Add(1)
	}

	req, err := sc.ReadRecord()
	if err != nil {
		m.Stats.Errors.Add(1)
		return fmtErr("mono", "read request", err)
	}
	resp := ServeStatic(m.root, m.docroot, string(req))
	if _, err := sc.Write(resp); err != nil {
		m.Stats.Errors.Add(1)
		return fmtErr("mono", "write response", err)
	}
	m.Stats.Requests.Add(1)
	return nil
}
