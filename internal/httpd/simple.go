// The Simple partitioning (Figure 2, §5.1.1): one worker sthread per
// connection, terminating after a single request so successive requests
// are isolated from one another; the RSA private key in tagged memory
// reachable only through the setup_session_key callgate; and the server
// random generated inside that callgate, so an exploited worker cannot
// bias session key generation. The callgate returns the established
// session key to the worker — sufficient under the eavesdropper threat
// model, and exactly the gap the MITM partitioning closes.

package httpd

import (
	"crypto/rand"
	"crypto/rsa"
	"io"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// Simple is the Figure 2 server.
type Simple struct {
	Stats Stats

	root    *sthread.Sthread
	docroot string

	privTag  tags.Tag
	privAddr vm.Addr
	pubTag   tags.Tag
	pubAddr  vm.Addr

	cache *minissl.SessionCache
	hooks Hooks
}

// NewSimple builds the Figure 2 server: the private key is copied into its
// own tag, the public key into another (workers may read the latter only).
func NewSimple(root *sthread.Sthread, docroot string, priv *rsa.PrivateKey, cache bool, hooks Hooks) (*Simple, error) {
	s := &Simple{root: root, docroot: docroot, hooks: hooks}
	if cache {
		s.cache = minissl.NewSessionCache()
	}
	var err error
	if s.privTag, s.privAddr, err = placeBlob(root, minissl.MarshalPrivateKey(priv)); err != nil {
		return nil, err
	}
	if s.pubTag, s.pubAddr, err = placeBlob(root, minissl.MarshalPublicKey(&priv.PublicKey)); err != nil {
		return nil, err
	}
	return s, nil
}

// placeBlob stores a length-prefixed blob in a fresh tag and returns the
// tag and the blob's base address.
func placeBlob(root *sthread.Sthread, blob []byte) (tags.Tag, vm.Addr, error) {
	tag, err := root.App().Tags.TagNew(root.Task)
	if err != nil {
		return 0, 0, err
	}
	addr, err := root.Smalloc(tag, 8+len(blob))
	if err != nil {
		return 0, 0, err
	}
	root.Store64(addr, uint64(len(blob)))
	root.Write(addr+8, blob)
	return tag, addr, nil
}

// readBlob loads a placeBlob blob from a compartment that has read access.
func readBlob(s *sthread.Sthread, addr vm.Addr) []byte {
	n := s.Load64(addr)
	out := make([]byte, n)
	s.Read(addr+8, out)
	return out
}

// setupGateState is the per-connection privileged state the callgate
// closure keeps between its two invocations. It lives on the privileged
// side of the boundary; the worker cannot name it.
type setupGateState struct {
	clientRandom [minissl.RandomLen]byte
	serverRandom [minissl.RandomLen]byte
	resumed      bool
}

// makeSetupGate builds the setup_session_key entry point for one
// connection. The trusted argument is the private-key blob address; the
// untrusted argument is the worker-shared buffer.
func (s *Simple) makeSetupGate(state *setupGateState) sthread.GateFunc {
	cache := s.cache
	stats := &s.Stats
	return func(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
		switch g.Load64(arg + argOp) {
		case opHello:
			g.Read(arg+argClientRandom, state.clientRandom[:])
			// The server random is generated here, inside the gate:
			// the worker may neither supply nor predict it (§5.1.1).
			sr, err := minissl.NewRandom(cryptoRand{})
			if err != nil {
				return 0
			}
			state.serverRandom = sr
			g.Write(arg+argServerRandom, sr[:])

			// Session resumption: look the offered id up in the cache.
			idLen := g.Load64(arg + argSessionIDLen)
			if cache != nil && idLen > 0 && idLen <= minissl.SessionIDLen {
				id := make([]byte, idLen)
				g.Read(arg+argSessionID, id)
				if master, ok := cache.Get(id); ok {
					state.resumed = true
					g.Store64(arg+argResumed, 1)
					g.Write(arg+argSessionIDOut, id)
					keys := minissl.KeyBlock(master, state.clientRandom, sr)
					g.Write(arg+argMaster, master[:])
					g.Write(arg+argKeys, keys.Marshal())
					return 1
				}
			}
			g.Store64(arg+argResumed, 0)
			id, err := minissl.NewSessionID(cryptoRand{})
			if err != nil {
				return 0
			}
			g.Write(arg+argSessionIDOut, id)
			return 1

		case opKex:
			if state.resumed {
				return 0 // protocol violation
			}
			der := readBlob(g, trusted)
			priv, err := minissl.UnmarshalPrivateKey(der)
			if err != nil {
				return 0
			}
			n := g.Load64(arg + argDataLen)
			if n == 0 || n > 256 {
				return 0
			}
			ct := make([]byte, n)
			g.Read(arg+argData, ct)
			premaster, err := minissl.DecryptPremaster(priv, ct)
			if err != nil {
				return 0
			}
			master := minissl.DeriveMaster(premaster, state.clientRandom, state.serverRandom)
			keys := minissl.KeyBlock(master, state.clientRandom, state.serverRandom)
			g.Write(arg+argMaster, master[:])
			g.Write(arg+argKeys, keys.Marshal())
			if cache != nil {
				id := make([]byte, minissl.SessionIDLen)
				g.Read(arg+argSessionIDOut, id)
				cache.Put(id, master)
			}
			stats.GateCalls.Add(0) // counted by caller
			return 1
		}
		return 0
	}
}

// ServeConn partitions one connection per Figure 2 and blocks until the
// worker exits.
func (s *Simple) ServeConn(conn *netsim.Conn) error {
	root := s.root
	fd := root.Task.InstallFD(conn, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	connTag, err := root.App().Tags.TagNew(root.Task)
	if err != nil {
		return err
	}
	defer root.App().Tags.TagDelete(connTag)
	argBuf, err := root.Smalloc(connTag, argSize)
	if err != nil {
		return err
	}

	state := &setupGateState{}
	gateSC := policy.New().
		MustMemAdd(s.privTag, vm.PermRead).
		MustMemAdd(connTag, vm.PermRW)

	workerSC := policy.New().
		MustMemAdd(connTag, vm.PermRW).
		MustMemAdd(s.pubTag, vm.PermRead).
		FDAdd(fd, kernel.FDRW)
	workerSC.GateAdd(s.makeSetupGate(state), gateSC, s.privAddr, "setup_session_key")
	setupSpec := workerSC.Gates[0]

	worker, err := root.CreateNamed("worker", workerSC, func(w *sthread.Sthread, arg vm.Addr) vm.Addr {
		if s.hooks.Worker != nil {
			s.hooks.Worker(w, &ConnContext{
				FD:          fd,
				PrivKeyAddr: s.privAddr,
				PrivKeyLen:  8 + 1024,
				ArgAddr:     arg,
				Gates:       map[string]*GateRef{"setup_session_key": {Spec: setupSpec}},
			})
		}
		return s.workerBody(w, fd, arg, setupSpec)
	}, argBuf)
	if err != nil {
		return err
	}
	s.Stats.SthreadsHS.Add(1)
	ret, fault := root.Join(worker)
	if fault != nil {
		s.Stats.Errors.Add(1)
		return fmtErr("simple", "worker", fault)
	}
	if ret != 1 {
		s.Stats.Errors.Add(1)
		return fmtErr("simple", "worker", ErrHandshakeFailed)
	}
	s.Stats.Requests.Add(1)
	return nil
}

// workerBody is the unprivileged per-connection code: the bulk of
// Apache/OpenSSL, running with access to exactly the connection fd, the
// shared argument buffer, the public key, and the setup gate.
func (s *Simple) workerBody(w *sthread.Sthread, fd int, arg vm.Addr, setup *policy.GateSpec) vm.Addr {
	stream := Stream(w, fd)
	var transcript minissl.Transcript

	// ClientHello.
	chBody, err := minissl.ExpectMsg(stream, minissl.MsgClientHello)
	if err != nil {
		return 0
	}
	transcript.Add(minissl.MsgClientHello, chBody)
	clientRandom, offeredID, err := minissl.ParseClientHello(chBody)
	if err != nil {
		return 0
	}

	// Gate invocation 1: hello. The worker passes the public inputs and
	// receives the (public) server random plus the resumption verdict.
	w.Store64(arg+argOp, opHello)
	w.Write(arg+argClientRandom, clientRandom[:])
	w.Store64(arg+argSessionIDLen, uint64(len(offeredID)))
	if len(offeredID) > 0 {
		w.Write(arg+argSessionID, offeredID)
	}
	s.Stats.GateCalls.Add(1)
	if ret, err := w.CallGate(setup, nil, arg); err != nil || ret != 1 {
		return 0
	}
	var serverRandom [minissl.RandomLen]byte
	w.Read(arg+argServerRandom, serverRandom[:])
	resumed := w.Load64(arg+argResumed) == 1
	sessionID := make([]byte, minissl.SessionIDLen)
	w.Read(arg+argSessionIDOut, sessionID)

	sh := minissl.BuildServerHello(serverRandom, sessionID, resumed)
	if err := minissl.WriteMsg(stream, minissl.MsgServerHello, sh); err != nil {
		return 0
	}
	transcript.Add(minissl.MsgServerHello, sh)

	if !resumed {
		cert := readBlob(w, s.pubAddr)
		if err := minissl.WriteMsg(stream, minissl.MsgCertificate, cert); err != nil {
			return 0
		}
		transcript.Add(minissl.MsgCertificate, cert)

		ckeBody, err := minissl.ExpectMsg(stream, minissl.MsgClientKeyExchange)
		if err != nil {
			return 0
		}
		transcript.Add(minissl.MsgClientKeyExchange, ckeBody)

		// Gate invocation 2: key exchange.
		w.Store64(arg+argOp, opKex)
		w.Store64(arg+argDataLen, uint64(len(ckeBody)))
		w.Write(arg+argData, ckeBody)
		s.Stats.GateCalls.Add(1)
		if ret, err := w.CallGate(setup, nil, arg); err != nil || ret != 1 {
			minissl.SendAlert(stream, "bad key exchange")
			return 0
		}
	}

	// Figure 2: the worker holds the established session key (and the
	// master secret, needed to verify Finished messages).
	var master [minissl.MasterLen]byte
	w.Read(arg+argMaster, master[:])
	kb := make([]byte, 96)
	w.Read(arg+argKeys, kb)
	keys, err := minissl.UnmarshalKeys(kb)
	if err != nil {
		return 0
	}
	rc := minissl.NewRecordCoder(keys, minissl.ServerSide)

	// Finished exchange, verified by the worker itself.
	cfBody, err := minissl.ExpectMsg(stream, minissl.MsgFinished)
	if err != nil {
		return 0
	}
	cfPayload, err := rc.Open(minissl.MsgFinished, cfBody)
	if err != nil {
		minissl.SendAlert(stream, "bad finished")
		return 0
	}
	want := minissl.FinishedPayload(master, transcript.Sum(), "client finished")
	if string(cfPayload) != string(want[:]) {
		minissl.SendAlert(stream, "bad finished")
		return 0
	}
	transcript.Add(minissl.MsgFinished, cfPayload)
	sf := minissl.FinishedPayload(master, transcript.Sum(), "server finished")
	sealed, err := rc.Seal(minissl.MsgFinished, sf[:])
	if err != nil {
		return 0
	}
	if err := minissl.WriteMsg(stream, minissl.MsgFinished, sealed); err != nil {
		return 0
	}

	// One request, one response, then the worker exits (per-request
	// isolation).
	reqBody, err := minissl.ExpectMsg(stream, minissl.MsgAppData)
	if err != nil {
		return 0
	}
	req, err := rc.Open(minissl.MsgAppData, reqBody)
	if err != nil {
		return 0
	}
	resp := ServeStatic(w, s.docroot, string(req))
	out, err := rc.Seal(minissl.MsgAppData, resp)
	if err != nil {
		return 0
	}
	if err := minissl.WriteMsg(stream, minissl.MsgAppData, out); err != nil {
		return 0
	}
	return 1
}

// cryptoRand adapts crypto/rand for the gate closures without importing it
// in every file.
type cryptoRand struct{}

func (cryptoRand) Read(p []byte) (int, error) { return io.ReadFull(rand.Reader, p) }
