// The Simple partitioning (Figure 2, §5.1.1): one worker sthread per
// connection, terminating after a single request so successive requests
// are isolated from one another; the RSA private key in tagged memory
// reachable only through the setup_session_key callgate; and the server
// random generated inside that callgate, so an exploited worker cannot
// bias session key generation. The callgate returns the established
// session key to the worker — sufficient under the eavesdropper threat
// model, and exactly the gap the MITM partitioning closes.

package httpd

import (
	"crypto/rand"
	"crypto/rsa"
	"io"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// Simple is the Figure 2 server.
type Simple struct {
	Stats Stats

	root    *sthread.Sthread
	docroot string

	privTag  tags.Tag
	privAddr vm.Addr
	pubTag   tags.Tag
	pubAddr  vm.Addr

	cache *minissl.SessionCache
	hooks Hooks
}

// NewSimple builds the Figure 2 server: the private key is copied into its
// own tag, the public key into another (workers may read the latter only).
func NewSimple(root *sthread.Sthread, docroot string, priv *rsa.PrivateKey, cache bool, hooks Hooks) (*Simple, error) {
	s := &Simple{root: root, docroot: docroot, hooks: hooks}
	if cache {
		s.cache = minissl.NewSessionCache()
	}
	var err error
	if s.privTag, s.privAddr, err = placeBlob(root, minissl.MarshalPrivateKey(priv)); err != nil {
		return nil, err
	}
	if s.pubTag, s.pubAddr, err = placeBlob(root, minissl.MarshalPublicKey(&priv.PublicKey)); err != nil {
		return nil, err
	}
	return s, nil
}

// placeBlob stores a length-prefixed blob in a fresh tag and returns the
// tag and the blob's base address.
func placeBlob(root *sthread.Sthread, blob []byte) (tags.Tag, vm.Addr, error) {
	tag, err := root.App().Tags.TagNew(root.Task)
	if err != nil {
		return 0, 0, err
	}
	addr, err := root.Smalloc(tag, 8+len(blob))
	if err != nil {
		return 0, 0, err
	}
	root.Store64(addr, uint64(len(blob)))
	root.Write(addr+8, blob)
	return tag, addr, nil
}

// readBlob loads a placeBlob blob from a compartment that has read access.
func readBlob(s *sthread.Sthread, addr vm.Addr) []byte {
	n := s.Load64(addr)
	out := make([]byte, n)
	s.Read(addr+8, out)
	return out
}

// setupGateState is the per-connection privileged state the callgate
// closure keeps between its two invocations. It lives on the privileged
// side of the boundary; the worker cannot name it.
type setupGateState struct {
	clientRandom [minissl.RandomLen]byte
	serverRandom [minissl.RandomLen]byte
	resumed      bool
}

// setupOps implements the setup_session_key operations — hello (server
// random generation plus resumption lookup) and kex (premaster
// decryption, master/key derivation) — against one connection's
// handshake state, reading and writing the argument block only through
// the schema's typed handles. Shared verbatim by the Simple gate
// closure, the Recycled gate's demuxed body, and the pooled build's
// setup entry; the MITM build keeps its own variant (secrets flow to the
// session region, never to the block).
func setupOps(g *sthread.Sthread, arg, trusted vm.Addr, state *setupGateState, cache *minissl.SessionCache) vm.Addr {
	switch fOp.Load(g, arg) {
	case opHello:
		fClientRandom.Read(g, arg, state.clientRandom[:])
		// The server random is generated here, inside the gate:
		// the worker may neither supply nor predict it (§5.1.1).
		sr, err := minissl.NewRandom(cryptoRand{})
		if err != nil {
			return 0
		}
		state.serverRandom = sr
		fServerRandom.Write(g, arg, sr[:])

		// Session resumption: look the offered id up in the cache. The
		// codec bounds the decode; only a full-length id can hit (cache
		// keys are whole session ids).
		if id, err := fSessionID.Load(g, arg); cache != nil && err == nil && len(id) == minissl.SessionIDLen {
			if master, ok := cache.Get(id); ok {
				state.resumed = true
				fResumed.Store(g, arg, 1)
				fSessionIDOut.Write(g, arg, id)
				keys := minissl.KeyBlock(master, state.clientRandom, sr)
				fMaster.Write(g, arg, master[:])
				fKeys.Write(g, arg, keys.Marshal())
				return 1
			}
		}
		fResumed.Store(g, arg, 0)
		id, err := minissl.NewSessionID(cryptoRand{})
		if err != nil {
			return 0
		}
		fSessionIDOut.Write(g, arg, id)
		return 1

	case opKex:
		if state.resumed {
			return 0 // protocol violation
		}
		priv, err := minissl.UnmarshalPrivateKey(readBlob(g, trusted))
		if err != nil {
			return 0
		}
		ct, err := fData.Load(g, arg)
		if err != nil || len(ct) == 0 {
			return 0
		}
		premaster, err := minissl.DecryptPremaster(priv, ct)
		if err != nil {
			return 0
		}
		master := minissl.DeriveMaster(premaster, state.clientRandom, state.serverRandom)
		keys := minissl.KeyBlock(master, state.clientRandom, state.serverRandom)
		fMaster.Write(g, arg, master[:])
		fKeys.Write(g, arg, keys.Marshal())
		if cache != nil {
			cache.Put(fSessionIDOut.Bytes(g, arg), master)
		}
		return 1
	}
	return 0
}

// makeSetupGate builds the setup_session_key entry point for one
// connection. The trusted argument is the private-key blob address; the
// untrusted argument is the worker-shared buffer.
func (s *Simple) makeSetupGate(state *setupGateState) sthread.GateFunc {
	cache := s.cache
	return func(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
		return setupOps(g, arg, trusted, state, cache)
	}
}

// ServeConn partitions one connection per Figure 2 and blocks until the
// worker exits.
func (s *Simple) ServeConn(conn *netsim.Conn) error {
	root := s.root
	fd := root.Task.InstallFD(conn, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	connTag, err := root.App().Tags.TagNew(root.Task)
	if err != nil {
		return err
	}
	defer root.App().Tags.TagDelete(connTag)
	argBuf, err := root.Smalloc(connTag, argSchema.Size())
	if err != nil {
		return err
	}

	state := &setupGateState{}
	gateSC := policy.New().
		MustMemAdd(s.privTag, vm.PermRead).
		MustMemAdd(connTag, vm.PermRW)

	workerSC := policy.New().
		MustMemAdd(connTag, vm.PermRW).
		MustMemAdd(s.pubTag, vm.PermRead).
		FDAdd(fd, kernel.FDRW)
	workerSC.GateAdd(s.makeSetupGate(state), gateSC, s.privAddr, "setup_session_key")
	setupSpec := workerSC.Gates[0]

	worker, err := root.CreateNamed("worker", workerSC, func(w *sthread.Sthread, arg vm.Addr) vm.Addr {
		if s.hooks.Worker != nil {
			s.hooks.Worker(w, &ConnContext{
				FD:          fd,
				PrivKeyAddr: s.privAddr,
				PrivKeyLen:  8 + 1024,
				ArgAddr:     arg,
				Gates:       map[string]*GateRef{"setup_session_key": {Spec: setupSpec}},
			})
		}
		setup := func(w *sthread.Sthread, arg vm.Addr) (vm.Addr, error) {
			return w.CallGate(setupSpec, nil, arg)
		}
		return httpdWorkerBody(w, fd, arg, setup, &s.Stats, s.pubAddr, s.docroot)
	}, argBuf)
	if err != nil {
		return err
	}
	s.Stats.SthreadsHS.Add(1)
	ret, fault := root.Join(worker)
	if fault != nil {
		s.Stats.Errors.Add(1)
		return fmtErr("simple", "worker", fault)
	}
	if ret != 1 {
		s.Stats.Errors.Add(1)
		return fmtErr("simple", "worker", ErrHandshakeFailed)
	}
	s.Stats.Requests.Add(1)
	return nil
}

// The per-connection worker protocol — ClientHello through the single
// request/response — is httpdWorkerBody (recycled.go), shared by every
// partitioned variant and parameterized only over how the setup gate is
// reached (a one-shot callgate here, a recycled gate or pool lease in
// the other builds).

// cryptoRand adapts crypto/rand for the gate closures without importing it
// in every file.
type cryptoRand struct{}

func (cryptoRand) Read(p []byte) (int, error) { return io.ReadFull(rand.Reader, p) }
