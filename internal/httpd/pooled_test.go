package httpd

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/sthread"
)

func TestPooledServes(t *testing.T) {
	runVariant(t, "pooled", false, 3, Hooks{}, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		checkOK(t, dial(nil))
		checkOK(t, dial(nil))
		checkOK(t, dial(nil))
	})
}

func TestPooledSessionCache(t *testing.T) {
	runVariant(t, "pooled", true, 2, Hooks{}, func(t *testing.T, dial func(*minissl.ClientSession) clientResult) {
		first := dial(nil)
		checkOK(t, first)
		second := dial(&first.session)
		checkOK(t, second)
		if !second.resumed {
			t.Fatal("no resumption")
		}
	})
}

// The pooled counterpart of TestRecycledCrossConnectionResidue — the
// second-connection scan of the argument block finding only the scrub's
// zeroes — lives in the shared conformance battery now: see
// TestServeConformance/Residue (conformance_test.go), which probes the
// master-field window across principals and across a Resize.

// TestPooledConcurrentConnections: the scaling property the pool exists
// for — many connections served at once across slots, every response
// correct, zero sthread creations on the serving path.
func TestPooledConcurrentConnections(t *testing.T) {
	const conns = 8
	k := kernel.New()
	priv := serverKey(t)
	if err := SetupDocroot(k, "/var/www", 1024); err != nil {
		t.Fatal(err)
	}
	app := sthread.Boot(k)

	ready := make(chan *PooledServer, 1)
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := NewPooled(root, "/var/www", priv, false, 4, Hooks{})
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			defer srv.Close()
			l, err := root.Task.Listen("apache:443")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			ready <- srv
			var wg sync.WaitGroup
			for i := 0; i < conns; i++ {
				c, err := l.Accept()
				if err != nil {
					t.Error(err)
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := srv.ServeConn(c); err != nil {
						t.Errorf("serve: %v", err)
					}
				}()
			}
			wg.Wait()
		})
	}()
	srv := <-ready
	if srv == nil {
		t.FailNow()
	}

	created := app.Stats.SthreadsCreated.Load()
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := k.Net.Dial("apache:443")
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
			if err != nil {
				errs <- fmt.Errorf("handshake: %w", err)
				return
			}
			if _, err := cc.Write([]byte("GET /index.html")); err != nil {
				errs <- err
				return
			}
			resp, err := cc.ReadRecord()
			if err != nil {
				errs <- err
				return
			}
			if !strings.HasPrefix(string(resp), "200 OK\n") {
				errs <- fmt.Errorf("response %.30q", resp)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats.Requests.Load(); got != conns {
		t.Fatalf("requests = %d, want %d", got, conns)
	}
	if got := app.Stats.SthreadsCreated.Load() - created; got != 0 {
		t.Fatalf("%d sthreads created on the pooled serving path, want 0", got)
	}
	st := srv.PoolStats()
	if st.Acquires != conns {
		t.Fatalf("pool acquires = %d, want %d", st.Acquires, conns)
	}
	if st.Scrubs == 0 {
		t.Fatal("no scrubs recorded across distinct principals")
	}
}

// TestPooledWorkerFaultIsContained: a worker exploit that faults kills
// only that slot's recycled worker; the connection fails cleanly and the
// next lease replaces the dead worker, so the server keeps serving.
func TestPooledWorkerFaultIsContained(t *testing.T) {
	poisoned := true
	hooks := Hooks{Worker: func(s *sthread.Sthread, c *ConnContext) {
		if poisoned {
			poisoned = false
			s.Read(0x10, make([]byte, 8)) // unmapped: the worker faults
		}
	}}
	k := kernel.New()
	priv := serverKey(t)
	if err := SetupDocroot(k, "/var/www", 1024); err != nil {
		t.Fatal(err)
	}
	app := sthread.Boot(k)
	ready := make(chan struct{})
	done := make(chan error, 1)
	var srv *PooledServer
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			var err error
			srv, err = NewPooled(root, "/var/www", priv, false, 1, hooks)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			defer srv.Close()
			l, err := root.Task.Listen("apache:443")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			for i := 0; i < 2; i++ {
				c, err := l.Accept()
				if err != nil {
					return
				}
				srv.ServeConn(c) // first conn fails; second must succeed
			}
		})
	}()
	<-ready

	dial := func() error {
		conn, err := k.Net.Dial("apache:443")
		if err != nil {
			return err
		}
		defer conn.Close()
		cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
		if err != nil {
			return err
		}
		if _, err := cc.Write([]byte("GET /index.html")); err != nil {
			return err
		}
		_, err = cc.ReadRecord()
		return err
	}
	if err := dial(); err == nil {
		t.Fatal("poisoned connection should have failed")
	}
	if err := dial(); err != nil {
		t.Fatalf("connection after worker fault: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := srv.PoolStats().Replaced; got != 1 {
		t.Fatalf("replaced = %d, want 1 (dead worker swapped by the liveness probe)", got)
	}
}
