// The recycled-callgate variant of Table 2: the Figure 2 partitioning with
// the per-connection setup_session_key callgate replaced by one long-lived
// recycled callgate shared by all connections (§3.3, §4.1).
//
// Invocation is two futex operations instead of an sthread creation, which
// is where the +42% (cached) / +29% (uncached) throughput of Table 2 comes
// from. The price is the paper's documented trade-off: the gate sthread
// and its argument memory persist across principals, so "should a recycled
// callgate be exploited, and called by sthreads acting on behalf of
// different principals, sensitive arguments from one caller may become
// visible to another". The shared-sessions tag here makes that concrete —
// and testable (see TestRecycledCrossConnectionResidue).

package httpd

import (
	"crypto/rsa"
	"sync"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// RecycledServer is the Table 2 "Recycled" column.
type RecycledServer struct {
	Stats Stats

	root    *sthread.Sthread
	docroot string

	privTag  tags.Tag
	privAddr vm.Addr
	pubTag   tags.Tag
	pubAddr  vm.Addr

	// sharedTag backs the argument blocks of every connection: the
	// recycled gate must be granted its memory before any connection
	// exists, so all connections' blocks live under one tag.
	sharedTag tags.Tag

	gate  *sthread.Recycled
	cache *minissl.SessionCache
	hooks Hooks

	// connStates holds per-connection gate-side handshake state, keyed by
	// connection id — privileged state owned by the recycled gate.
	mu         sync.Mutex
	nextConnID uint64
	connStates map[uint64]*setupGateState
}

// NewRecycled builds the recycled-callgate server.
func NewRecycled(root *sthread.Sthread, docroot string, priv *rsa.PrivateKey, cache bool, hooks Hooks) (*RecycledServer, error) {
	r := &RecycledServer{root: root, docroot: docroot, hooks: hooks,
		connStates: make(map[uint64]*setupGateState)}
	if cache {
		r.cache = minissl.NewSessionCache()
	}
	var err error
	if r.privTag, r.privAddr, err = placeBlob(root, minissl.MarshalPrivateKey(priv)); err != nil {
		return nil, err
	}
	if r.pubTag, r.pubAddr, err = placeBlob(root, minissl.MarshalPublicKey(&priv.PublicKey)); err != nil {
		return nil, err
	}
	if r.sharedTag, err = root.App().Tags.TagNew(root.Task); err != nil {
		return nil, err
	}

	gateSC := policy.New().
		MustMemAdd(r.privTag, vm.PermRead).
		MustMemAdd(r.sharedTag, vm.PermRW)
	r.gate, err = root.NewRecycled("setup_session_key", gateSC, r.gateBody, r.privAddr)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Close retires the recycled gate.
func (r *RecycledServer) Close() error { return r.gate.Close() }

// gateBody is the recycled gate's entry point. The per-connection state is
// demultiplexed by the conn id in the argument block; the private key is
// reachable through the kernel-held trusted argument.
func (r *RecycledServer) gateBody(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	connID := g.Load64(arg + argConnID)
	r.mu.Lock()
	state := r.connStates[connID]
	r.mu.Unlock()
	if state == nil {
		return 0
	}

	switch g.Load64(arg + argOp) {
	case opHello:
		g.Read(arg+argClientRandom, state.clientRandom[:])
		sr, err := minissl.NewRandom(cryptoRand{})
		if err != nil {
			return 0
		}
		state.serverRandom = sr
		g.Write(arg+argServerRandom, sr[:])

		idLen := g.Load64(arg + argSessionIDLen)
		if r.cache != nil && idLen > 0 && idLen <= minissl.SessionIDLen {
			id := make([]byte, idLen)
			g.Read(arg+argSessionID, id)
			if master, ok := r.cache.Get(id); ok {
				state.resumed = true
				g.Store64(arg+argResumed, 1)
				g.Write(arg+argSessionIDOut, id)
				keys := minissl.KeyBlock(master, state.clientRandom, sr)
				g.Write(arg+argMaster, master[:])
				g.Write(arg+argKeys, keys.Marshal())
				return 1
			}
		}
		g.Store64(arg+argResumed, 0)
		id, err := minissl.NewSessionID(cryptoRand{})
		if err != nil {
			return 0
		}
		g.Write(arg+argSessionIDOut, id)
		return 1

	case opKex:
		if state.resumed {
			return 0
		}
		priv, err := minissl.UnmarshalPrivateKey(readBlob(g, trusted))
		if err != nil {
			return 0
		}
		n := g.Load64(arg + argDataLen)
		if n == 0 || n > 256 {
			return 0
		}
		ct := make([]byte, n)
		g.Read(arg+argData, ct)
		premaster, err := minissl.DecryptPremaster(priv, ct)
		if err != nil {
			return 0
		}
		master := minissl.DeriveMaster(premaster, state.clientRandom, state.serverRandom)
		keys := minissl.KeyBlock(master, state.clientRandom, state.serverRandom)
		g.Write(arg+argMaster, master[:])
		g.Write(arg+argKeys, keys.Marshal())
		if r.cache != nil {
			id := make([]byte, minissl.SessionIDLen)
			g.Read(arg+argSessionIDOut, id)
			r.cache.Put(id, master)
		}
		return 1
	}
	return 0
}

// ServeConn handles one connection with a per-connection worker sthread
// and the shared recycled gate.
func (r *RecycledServer) ServeConn(conn *netsim.Conn) error {
	root := r.root
	fd := root.Task.InstallFD(conn, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	// The argument block comes from the shared tag; its contents persist
	// until some later connection's block happens to reuse the chunk.
	argBuf, err := root.Smalloc(r.sharedTag, argSize)
	if err != nil {
		return err
	}
	defer root.Sfree(argBuf)

	r.mu.Lock()
	r.nextConnID++
	connID := r.nextConnID
	r.connStates[connID] = &setupGateState{}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.connStates, connID)
		r.mu.Unlock()
	}()
	root.Store64(argBuf+argConnID, connID)

	workerSC := policy.New().
		MustMemAdd(r.sharedTag, vm.PermRW).
		MustMemAdd(r.pubTag, vm.PermRead).
		FDAdd(fd, kernel.FDRW)

	gate := r.gate
	stats := &r.Stats
	worker, err := root.CreateNamed("worker", workerSC, func(w *sthread.Sthread, arg vm.Addr) vm.Addr {
		if r.hooks.Worker != nil {
			r.hooks.Worker(w, &ConnContext{
				FD:          fd,
				PrivKeyAddr: r.privAddr,
				ArgAddr:     arg,
			})
		}
		return recycledWorkerBody(w, fd, arg, gate.Call, stats, r.pubAddr, r.docroot)
	}, argBuf)
	if err != nil {
		return err
	}
	r.Stats.SthreadsHS.Add(1)
	ret, fault := root.Join(worker)
	if fault != nil {
		r.Stats.Errors.Add(1)
		return fmtErr("recycled", "worker", fault)
	}
	if ret != 1 {
		r.Stats.Errors.Add(1)
		return fmtErr("recycled", "worker", ErrHandshakeFailed)
	}
	r.Stats.Requests.Add(1)
	return nil
}

// setupCall abstracts how a worker reaches its setup_session_key gate: a
// recycled gate directly, or a gate-pool lease (the pooled variant).
type setupCall func(w *sthread.Sthread, arg vm.Addr) (vm.Addr, error)

// recycledWorkerBody mirrors Simple.workerBody with recycled-gate calls in
// place of standard callgate invocations.
func recycledWorkerBody(w *sthread.Sthread, fd int, arg vm.Addr, setup setupCall,
	stats *Stats, pubAddr vm.Addr, docroot string) vm.Addr {
	stream := Stream(w, fd)
	var transcript minissl.Transcript

	chBody, err := minissl.ExpectMsg(stream, minissl.MsgClientHello)
	if err != nil {
		return 0
	}
	transcript.Add(minissl.MsgClientHello, chBody)
	clientRandom, offeredID, err := minissl.ParseClientHello(chBody)
	if err != nil {
		return 0
	}

	w.Store64(arg+argOp, opHello)
	w.Write(arg+argClientRandom, clientRandom[:])
	w.Store64(arg+argSessionIDLen, uint64(len(offeredID)))
	// The gate ignores resume offers longer than a session id, so only a
	// well-sized offer is ever copied — an oversized one must not let the
	// client scribble over the block's gate-output fields.
	if len(offeredID) > 0 && len(offeredID) <= minissl.SessionIDLen {
		w.Write(arg+argSessionID, offeredID)
	}
	stats.GateCalls.Add(1)
	if ret, err := setup(w, arg); err != nil || ret != 1 {
		return 0
	}
	var serverRandom [minissl.RandomLen]byte
	w.Read(arg+argServerRandom, serverRandom[:])
	resumed := w.Load64(arg+argResumed) == 1
	sessionID := make([]byte, minissl.SessionIDLen)
	w.Read(arg+argSessionIDOut, sessionID)

	sh := minissl.BuildServerHello(serverRandom, sessionID, resumed)
	if err := minissl.WriteMsg(stream, minissl.MsgServerHello, sh); err != nil {
		return 0
	}
	transcript.Add(minissl.MsgServerHello, sh)

	if !resumed {
		cert := readBlob(w, pubAddr)
		if err := minissl.WriteMsg(stream, minissl.MsgCertificate, cert); err != nil {
			return 0
		}
		transcript.Add(minissl.MsgCertificate, cert)

		ckeBody, err := minissl.ExpectMsg(stream, minissl.MsgClientKeyExchange)
		if err != nil {
			return 0
		}
		transcript.Add(minissl.MsgClientKeyExchange, ckeBody)
		// Bound the write to the setup gate's own input cap (256 bytes):
		// an oversized key-exchange body must fail the handshake, not run
		// past the block into memory the inter-principal scrub never
		// reaches (the pooled build's slot arena).
		if len(ckeBody) > 256 {
			minissl.SendAlert(stream, "bad key exchange")
			return 0
		}
		w.Store64(arg+argOp, opKex)
		w.Store64(arg+argDataLen, uint64(len(ckeBody)))
		w.Write(arg+argData, ckeBody)
		stats.GateCalls.Add(1)
		if ret, err := setup(w, arg); err != nil || ret != 1 {
			minissl.SendAlert(stream, "bad key exchange")
			return 0
		}
	}

	var master [minissl.MasterLen]byte
	w.Read(arg+argMaster, master[:])
	kb := make([]byte, 96)
	w.Read(arg+argKeys, kb)
	keys, err := minissl.UnmarshalKeys(kb)
	if err != nil {
		return 0
	}
	rc := minissl.NewRecordCoder(keys, minissl.ServerSide)

	cfBody, err := minissl.ExpectMsg(stream, minissl.MsgFinished)
	if err != nil {
		return 0
	}
	cfPayload, err := rc.Open(minissl.MsgFinished, cfBody)
	if err != nil {
		minissl.SendAlert(stream, "bad finished")
		return 0
	}
	want := minissl.FinishedPayload(master, transcript.Sum(), "client finished")
	if string(cfPayload) != string(want[:]) {
		minissl.SendAlert(stream, "bad finished")
		return 0
	}
	transcript.Add(minissl.MsgFinished, cfPayload)
	sf := minissl.FinishedPayload(master, transcript.Sum(), "server finished")
	sealed, err := rc.Seal(minissl.MsgFinished, sf[:])
	if err != nil {
		return 0
	}
	if err := minissl.WriteMsg(stream, minissl.MsgFinished, sealed); err != nil {
		return 0
	}

	reqBody, err := minissl.ExpectMsg(stream, minissl.MsgAppData)
	if err != nil {
		return 0
	}
	req, err := rc.Open(minissl.MsgAppData, reqBody)
	if err != nil {
		return 0
	}
	resp := ServeStatic(w, docroot, string(req))
	out, err := rc.Seal(minissl.MsgAppData, resp)
	if err != nil {
		return 0
	}
	if err := minissl.WriteMsg(stream, minissl.MsgAppData, out); err != nil {
		return 0
	}
	return 1
}
