// The recycled-callgate variant of Table 2: the Figure 2 partitioning with
// the per-connection setup_session_key callgate replaced by one long-lived
// recycled callgate shared by all connections (§3.3, §4.1).
//
// Invocation is two futex operations instead of an sthread creation, which
// is where the +42% (cached) / +29% (uncached) throughput of Table 2 comes
// from. The price is the paper's documented trade-off: the gate sthread
// and its argument memory persist across principals, so "should a recycled
// callgate be exploited, and called by sthreads acting on behalf of
// different principals, sensitive arguments from one caller may become
// visible to another". The shared-sessions tag here makes that concrete —
// and testable (see TestRecycledCrossConnectionResidue).

package httpd

import (
	"crypto/rsa"
	"sync"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// RecycledServer is the Table 2 "Recycled" column.
type RecycledServer struct {
	Stats Stats

	root    *sthread.Sthread
	docroot string

	privTag  tags.Tag
	privAddr vm.Addr
	pubTag   tags.Tag
	pubAddr  vm.Addr

	// sharedTag backs the argument blocks of every connection: the
	// recycled gate must be granted its memory before any connection
	// exists, so all connections' blocks live under one tag.
	sharedTag tags.Tag

	gate  *sthread.Recycled
	cache *minissl.SessionCache
	hooks Hooks

	// connStates holds per-connection gate-side handshake state, keyed by
	// connection id — privileged state owned by the recycled gate.
	mu         sync.Mutex
	nextConnID uint64
	connStates map[uint64]*setupGateState
}

// NewRecycled builds the recycled-callgate server.
func NewRecycled(root *sthread.Sthread, docroot string, priv *rsa.PrivateKey, cache bool, hooks Hooks) (*RecycledServer, error) {
	r := &RecycledServer{root: root, docroot: docroot, hooks: hooks,
		connStates: make(map[uint64]*setupGateState)}
	if cache {
		r.cache = minissl.NewSessionCache()
	}
	var err error
	if r.privTag, r.privAddr, err = placeBlob(root, minissl.MarshalPrivateKey(priv)); err != nil {
		return nil, err
	}
	if r.pubTag, r.pubAddr, err = placeBlob(root, minissl.MarshalPublicKey(&priv.PublicKey)); err != nil {
		return nil, err
	}
	if r.sharedTag, err = root.App().Tags.TagNew(root.Task); err != nil {
		return nil, err
	}

	gateSC := policy.New().
		MustMemAdd(r.privTag, vm.PermRead).
		MustMemAdd(r.sharedTag, vm.PermRW)
	r.gate, err = root.NewRecycled("setup_session_key", gateSC, r.gateBody, r.privAddr)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Close retires the recycled gate.
func (r *RecycledServer) Close() error { return r.gate.Close() }

// gateBody is the recycled gate's entry point. The per-connection state is
// demultiplexed by the conn id in the argument block; the private key is
// reachable through the kernel-held trusted argument; the operations are
// the shared setupOps.
func (r *RecycledServer) gateBody(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	connID := fConnID.Load(g, arg)
	r.mu.Lock()
	state := r.connStates[connID]
	r.mu.Unlock()
	if state == nil {
		return 0
	}
	return setupOps(g, arg, trusted, state, r.cache)
}

// ServeConn handles one connection with a per-connection worker sthread
// and the shared recycled gate.
func (r *RecycledServer) ServeConn(conn *netsim.Conn) error {
	root := r.root
	fd := root.Task.InstallFD(conn, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	// The argument block comes from the shared tag; its contents persist
	// until some later connection's block happens to reuse the chunk.
	argBuf, err := root.Smalloc(r.sharedTag, argSchema.Size())
	if err != nil {
		return err
	}
	defer root.Sfree(argBuf)

	r.mu.Lock()
	r.nextConnID++
	connID := r.nextConnID
	r.connStates[connID] = &setupGateState{}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.connStates, connID)
		r.mu.Unlock()
	}()
	fConnID.Store(root, argBuf, connID)

	workerSC := policy.New().
		MustMemAdd(r.sharedTag, vm.PermRW).
		MustMemAdd(r.pubTag, vm.PermRead).
		FDAdd(fd, kernel.FDRW)

	gate := r.gate
	stats := &r.Stats
	worker, err := root.CreateNamed("worker", workerSC, func(w *sthread.Sthread, arg vm.Addr) vm.Addr {
		if r.hooks.Worker != nil {
			r.hooks.Worker(w, &ConnContext{
				FD:          fd,
				PrivKeyAddr: r.privAddr,
				ArgAddr:     arg,
			})
		}
		return httpdWorkerBody(w, fd, arg, gate.Call, stats, r.pubAddr, r.docroot)
	}, argBuf)
	if err != nil {
		return err
	}
	r.Stats.SthreadsHS.Add(1)
	ret, fault := root.Join(worker)
	if fault != nil {
		r.Stats.Errors.Add(1)
		return fmtErr("recycled", "worker", fault)
	}
	if ret != 1 {
		r.Stats.Errors.Add(1)
		return fmtErr("recycled", "worker", ErrHandshakeFailed)
	}
	r.Stats.Requests.Add(1)
	return nil
}

// setupCall abstracts how a worker reaches its setup_session_key gate: a
// one-shot callgate (Simple), a recycled gate directly, or a gate-pool
// lease (the pooled variant).
type setupCall func(w *sthread.Sthread, arg vm.Addr) (vm.Addr, error)

// httpdWorkerBody is the unprivileged per-connection protocol — the bulk
// of Apache/OpenSSL — shared by the Simple, Recycled, and pooled builds
// and parameterized over how the setup gate is reached. All argument I/O
// goes through the schema handles; the codec rejects an oversized
// key-exchange body (or resume offer) with a typed bounds error before
// anything is written, so nothing can run past the block into memory the
// pooled build's inter-principal scrub never reaches.
func httpdWorkerBody(w *sthread.Sthread, fd int, arg vm.Addr, setup setupCall,
	stats *Stats, pubAddr vm.Addr, docroot string) vm.Addr {
	stream := Stream(w, fd)
	var transcript minissl.Transcript

	chBody, err := minissl.ExpectMsg(stream, minissl.MsgClientHello)
	if err != nil {
		return 0
	}
	transcript.Add(minissl.MsgClientHello, chBody)
	clientRandom, offeredID, err := minissl.ParseClientHello(chBody)
	if err != nil {
		return 0
	}

	fOp.Store(w, arg, opHello)
	fClientRandom.Write(w, arg, clientRandom[:])
	// A resume offer longer than a session id cannot match the cache; the
	// gate used to ignore it, and the codec now refuses to copy it at all
	// — the handshake proceeds as a fresh session.
	if err := fSessionID.Store(w, arg, offeredID); err != nil {
		fSessionID.Store(w, arg, nil)
	}
	stats.GateCalls.Add(1)
	if ret, err := setup(w, arg); err != nil || ret != 1 {
		return 0
	}
	var serverRandom [minissl.RandomLen]byte
	fServerRandom.Read(w, arg, serverRandom[:])
	resumed := fResumed.Load(w, arg) == 1
	sessionID := fSessionIDOut.Bytes(w, arg)

	sh := minissl.BuildServerHello(serverRandom, sessionID, resumed)
	if err := minissl.WriteMsg(stream, minissl.MsgServerHello, sh); err != nil {
		return 0
	}
	transcript.Add(minissl.MsgServerHello, sh)

	if !resumed {
		cert := readBlob(w, pubAddr)
		if err := minissl.WriteMsg(stream, minissl.MsgCertificate, cert); err != nil {
			return 0
		}
		transcript.Add(minissl.MsgCertificate, cert)

		ckeBody, err := minissl.ExpectMsg(stream, minissl.MsgClientKeyExchange)
		if err != nil {
			return 0
		}
		transcript.Add(minissl.MsgClientKeyExchange, ckeBody)
		fOp.Store(w, arg, opKex)
		// The codec bounds the write to the field's declared capacity
		// (one RSA ciphertext): an oversized key-exchange body fails the
		// handshake with a typed error instead of being written at all.
		if err := fData.Store(w, arg, ckeBody); err != nil {
			minissl.SendAlert(stream, "bad key exchange")
			return 0
		}
		stats.GateCalls.Add(1)
		if ret, err := setup(w, arg); err != nil || ret != 1 {
			minissl.SendAlert(stream, "bad key exchange")
			return 0
		}
	}

	var master [minissl.MasterLen]byte
	fMaster.Read(w, arg, master[:])
	keys, err := minissl.UnmarshalKeys(fKeys.Bytes(w, arg))
	if err != nil {
		return 0
	}
	rc := minissl.NewRecordCoder(keys, minissl.ServerSide)

	cfBody, err := minissl.ExpectMsg(stream, minissl.MsgFinished)
	if err != nil {
		return 0
	}
	cfPayload, err := rc.Open(minissl.MsgFinished, cfBody)
	if err != nil {
		minissl.SendAlert(stream, "bad finished")
		return 0
	}
	want := minissl.FinishedPayload(master, transcript.Sum(), "client finished")
	if string(cfPayload) != string(want[:]) {
		minissl.SendAlert(stream, "bad finished")
		return 0
	}
	transcript.Add(minissl.MsgFinished, cfPayload)
	sf := minissl.FinishedPayload(master, transcript.Sum(), "server finished")
	sealed, err := rc.Seal(minissl.MsgFinished, sf[:])
	if err != nil {
		return 0
	}
	if err := minissl.WriteMsg(stream, minissl.MsgFinished, sealed); err != nil {
		return 0
	}

	reqBody, err := minissl.ExpectMsg(stream, minissl.MsgAppData)
	if err != nil {
		return 0
	}
	req, err := rc.Open(minissl.MsgAppData, reqBody)
	if err != nil {
		return 0
	}
	resp := ServeStatic(w, docroot, string(req))
	out, err := rc.Seal(minissl.MsgAppData, resp)
	if err != nil {
		return 0
	}
	if err := minissl.WriteMsg(stream, minissl.MsgAppData, out); err != nil {
		return 0
	}
	return 1
}
