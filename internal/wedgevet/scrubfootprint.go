// scrubfootprint: every gateabi field a pool's gates use belongs to the
// schema the pool registered — the schema whose Size() is the
// inter-principal scrub footprint.
//
// The pool scrubs exactly Schema.Size() bytes of each slot's argument
// block between principals (PR 4's residue probes witness this at
// runtime for the fields the probes know about). A gate entry that
// reads or writes the block through a handle from a *different* builder
// is using memory the scrub never touches: a layout drift between two
// schemas silently re-opens the §3.3 residue leak. This analyzer closes
// the loop statically:
//
//   - at every registration site (serve.App, serve.PacketApp,
//     gatepool.Config composite literals with a Schema field), the
//     registered schema is resolved to its builder;
//   - every gate entry reachable from the site — method values, named
//     functions, inline literals, plus their same-package callees — is
//     checked: each handle applied to an argument-block address must
//     come from the registered builder;
//   - schema identities and per-function handle footprints travel
//     across package boundaries as facts, so an app registering a
//     schema defined elsewhere is checked at the registration site;
//   - a hand-rolled handle composite literal (gateabi.WordField{…} and
//     kin) outside gateabi itself is flagged unconditionally: a handle
//     the builder did not mint has no schema, so no scrub covers it;
//   - the batched dataplane extends the layout one dimension: a ring
//     entry's footprint is the schema footprint at index×Size. An
//     argument-block address combined with a scaled (multiplication-
//     containing) offset is a hand-stepped ring address — geometry that
//     belongs to sthread.BatchRing (EntryAddr/HdrAddr) and the gateabi
//     handles, so the expression is flagged outside internal/sthread.
//
// Handle uses on non-arg addresses (session regions, trusted blobs) are
// deliberately out of scope: those regions are not scrubbed by the pool
// and their layout is the owning code's business. Constant-stride
// arithmetic without a multiplication (the residue probes' neighbour
// reads) is likewise left to gateargs where audited: only scaled
// stepping marks ring-geometry knowledge.

package wedgevet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// SchemaFact records, on a package-level schema variable or a
// zero-argument accessor function, which builder sealed the schema.
// The builder identity doubles as the schema's display name.
type SchemaFact struct {
	Builder string
}

func (*SchemaFact) AFact() {}

// SchemaUseFact records, on a function, the builders whose handles the
// function (transitively, within its package) applies to argument-block
// addresses, and the individual field operations ("r arg:<schema>.<field>"
// / "w arg:<schema>.<field>") — the per-gate permission set the model
// emitter serializes.
type SchemaUseFact struct {
	Builders []string
	Ops      []string
}

func (*SchemaUseFact) AFact() {}

func init() {
	RegisterFact(&SchemaFact{})
	RegisterFact(&SchemaUseFact{})
}

// ScrubFootprintAnalyzer is the scrubfootprint suite entry.
var ScrubFootprintAnalyzer = &Analyzer{
	Name: "scrubfootprint",
	Doc: "every gateabi field handle a pool's gates apply to the argument block must" +
		" belong to the schema the pool registered (the scrub footprint);" +
		" hand-stepped ring-entry addresses (arg ± index×size) outside sthread are flagged",
	Run: runScrubFootprint,
}

// builderFuncs are gateabi's handle-minting functions, keyed by name.
var builderFuncs = map[string]bool{
	"Word": true, "U64": true, "Bytes": true, "String": true,
	"Fixed": true, "ConnID": true, "FD": true,
}

// handleTypes are gateabi's handle struct types; a composite literal of
// one outside gateabi is a hand-rolled handle.
var handleTypes = map[string]bool{
	"WordField": true, "BytesField": true, "StringField": true, "FixedField": true,
}

// readMethods and writeMethods classify handle accessors for the model
// emitter's permission direction.
var (
	readMethods  = map[string]bool{"Load": true, "LoadMax": true, "Bytes": true, "Read": true}
	writeMethods = map[string]bool{"Store": true, "StoreMax": true, "StoreTrunc": true, "Write": true}
)

// schemaWorld is one package's view of builders, handles, schemas, and
// per-function footprints.
type schemaWorld struct {
	pass     *Pass
	builders map[types.Object]string // builder var -> builder id (schema name)
	handles  map[types.Object]string // handle var -> builder id
	fields   map[types.Object]string // handle var -> field name
	schemas  map[types.Object]string // sealed-schema var / accessor func -> builder id
	uses     map[types.Object][]string
	ops      map[types.Object][]string // "r arg:<schema>.<field>" / "w …"
	edges    map[types.Object][]types.Object
	funcs    map[types.Object]*ast.FuncDecl
}

func newSchemaWorld(pass *Pass) *schemaWorld {
	return &schemaWorld{
		pass:     pass,
		builders: make(map[types.Object]string),
		handles:  make(map[types.Object]string),
		fields:   make(map[types.Object]string),
		schemas:  make(map[types.Object]string),
		uses:     make(map[types.Object][]string),
		ops:      make(map[types.Object][]string),
		edges:    make(map[types.Object][]types.Object),
		funcs:    make(map[types.Object]*ast.FuncDecl),
	}
}

// collect builds the package's schema world from its non-test files and
// exports the resulting facts.
func (w *schemaWorld) collect(files []*ast.File) {
	// Two sweeps: builders bind before the handles and seals that
	// reference them, regardless of file order.
	for _, f := range files {
		w.collectBuilders(f)
	}
	for _, f := range files {
		w.collectHandlesAndSchemas(f)
	}
	for _, f := range files {
		w.collectFootprints(f)
	}
	w.exportFacts()
}

func runScrubFootprint(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/gateabi") {
		return nil // gateabi mints handles; its internals are the exemption
	}
	w := newSchemaWorld(pass)
	files := make([]*ast.File, 0, len(pass.Files))
	for _, f := range pass.Files {
		if !isTestFile(pass, f) {
			files = append(files, f)
		}
	}
	w.collect(files)
	ringOwner := strings.HasSuffix(pass.Pkg.Path(), "internal/sthread")
	for _, f := range files {
		w.flagHandRolledHandles(f)
		w.checkRegistrations(f)
		if !ringOwner {
			w.flagRingOffsets(f)
		}
	}
	return nil
}

// flagRingOffsets reports hand-stepped ring-entry addresses: an
// argument-block address combined (±) with an offset whose expression
// contains a multiplication. The batched ring places entry i of a slot
// at base + i×entrySize; code outside internal/sthread that rebuilds
// that product from an arg address has duplicated the ring geometry,
// and a drift between its copy and BatchRing's (header growth, stride
// rounding) silently lands reads or scrubs on a neighbouring
// principal's entry. Constant-stride arithmetic without a
// multiplication stays legal here — the servetest residue probes step
// one fixed stride on purpose — so only scaled stepping flags.
func (w *schemaWorld) flagRingOffsets(file *ast.File) {
	forEachFunc(file, func(fn funcNode) {
		tainted := argBlockParams(w.pass, fn)
		if len(tainted) == 0 {
			return
		}
		propagateTaint(w.pass, fn, tainted)
		ast.Inspect(fn.body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
				return true
			}
			tv, ok := w.pass.TypesInfo.Types[be]
			if !ok || !isVMAddr(tv.Type) {
				return true
			}
			var off ast.Expr
			switch {
			case mentionsTainted(w.pass, be.X, tainted):
				off = be.Y
			case mentionsTainted(w.pass, be.Y, tainted):
				off = be.X
			default:
				return true
			}
			if containsMul(off) {
				w.pass.Reportf(be.Pos(), "hand-computed ring entry address (argument-block address plus a scaled offset); ring geometry belongs to sthread.BatchRing and the gateabi handles")
				return false // the inner product is the same finding
			}
			return true
		})
	})
}

// containsMul reports whether e's subtree contains a multiplication.
func containsMul(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.MUL {
			found = true
		}
		return !found
	})
	return found
}

// eachInit visits every name = value binding in the file, at package
// level and inside function bodies.
func eachInit(file *ast.File, visit func(name *ast.Ident, value ast.Expr)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) {
					visit(id, n.Values[i])
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					visit(id, n.Rhs[i])
				}
			}
		}
		return true
	})
}

func (w *schemaWorld) defObj(id *ast.Ident) types.Object {
	if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return w.pass.TypesInfo.Uses[id]
}

// gateabiCall returns the gateabi function name called by e ("NewSchema",
// "U64", "Seal", …) and the call, or "" when e is not a gateabi call.
// Generic instantiations (gateabi.Word[uint32]) unwrap.
func gateabiCall(pass *Pass, e ast.Expr) (string, *ast.CallExpr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", nil
	}
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/gateabi") {
		return "", nil
	}
	return fn.Name(), call
}

func (w *schemaWorld) collectBuilders(file *ast.File) {
	eachInit(file, func(id *ast.Ident, value ast.Expr) {
		name, call := gateabiCall(w.pass, value)
		if name != "NewSchema" {
			return
		}
		obj := w.defObj(id)
		if obj == nil {
			return
		}
		builder := w.pass.Pkg.Path() + "." + id.Name
		if len(call.Args) == 1 {
			if lit, ok := call.Args[0].(*ast.BasicLit); ok {
				if s, err := strconv.Unquote(lit.Value); err == nil {
					builder = s // the schema's declared name
				}
			}
		}
		w.builders[obj] = builder
	})
}

// builderOf resolves an expression naming a builder variable.
func (w *schemaWorld) builderOf(e ast.Expr) (string, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := w.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = w.pass.TypesInfo.Defs[id]
	}
	b, ok := w.builders[obj]
	return b, ok
}

func (w *schemaWorld) collectHandlesAndSchemas(file *ast.File) {
	eachInit(file, func(id *ast.Ident, value ast.Expr) {
		name, call := gateabiCall(w.pass, value)
		switch {
		case builderFuncs[name] && len(call.Args) > 0:
			if b, ok := w.builderOf(call.Args[0]); ok {
				if obj := w.defObj(id); obj != nil {
					w.handles[obj] = b
					w.fields[obj] = fieldName(name, call)
				}
			}
		case name == "Seal":
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if b, ok := w.builderOf(sel.X); ok {
				if obj := w.defObj(id); obj != nil {
					w.schemas[obj] = b
				}
			}
		}
	})
	// Accessor functions: a body that just returns a known schema var.
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || len(fd.Body.List) != 1 {
			continue
		}
		ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		retID, ok := ast.Unparen(ret.Results[0]).(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := w.schemas[w.pass.TypesInfo.Uses[retID]]; ok {
			if obj := w.pass.TypesInfo.Defs[fd.Name]; obj != nil {
				w.schemas[obj] = b
			}
		}
	}
}

// fieldName recovers the schema field name a minting call declares. The
// demux words carry the reserved names gateabi places for them.
func fieldName(mintFunc string, call *ast.CallExpr) string {
	switch mintFunc {
	case "ConnID":
		return "__conn_id"
	case "FD":
		return "__fd"
	}
	if len(call.Args) > 1 {
		if lit, ok := call.Args[1].(*ast.BasicLit); ok {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				return s
			}
		}
	}
	return "?"
}

// flagHandRolledHandles reports composite literals of gateabi handle
// types: a handle not minted by a builder belongs to no schema, so no
// scrub footprint accounts for it.
func (w *schemaWorld) flagHandRolledHandles(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := w.pass.TypesInfo.Types[lit]
		if !ok {
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			return true
		}
		obj := named.Obj()
		if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/gateabi") || !handleTypes[obj.Name()] {
			return true
		}
		w.pass.Reportf(lit.Pos(), "hand-rolled gateabi.%s literal; handles come from schema builders, or the scrub footprint cannot account for them", obj.Name())
		return true
	})
}

// collectFootprints computes, for every declared function, the builders
// whose handles it applies to argument-block addresses (nested literals
// attribute to the declaration that runs them), and its same-package
// static callees.
func (w *schemaWorld) collectFootprints(file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		obj := w.pass.TypesInfo.Defs[fd.Name]
		if obj == nil {
			continue
		}
		w.funcs[obj] = fd
		set := make(map[string]bool)
		opSet := make(map[string]bool)
		forEachFunc(wrapDecl(fd), func(fn funcNode) {
			tainted := argBlockParams(w.pass, fn)
			if len(tainted) > 0 {
				propagateTaint(w.pass, fn, tainted)
				w.handleUsesOn(fn.body, tainted, set, opSet)
			}
		})
		for b := range set {
			w.uses[obj] = append(w.uses[obj], b)
		}
		sort.Strings(w.uses[obj])
		for op := range opSet {
			w.ops[obj] = append(w.ops[obj], op)
		}
		sort.Strings(w.ops[obj])
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := staticCallee(w.pass, call); callee != nil && callee.Pkg() == w.pass.Pkg {
				w.edges[obj] = append(w.edges[obj], callee)
			}
			return true
		})
	}
}

// wrapDecl lets forEachFunc walk a single declaration.
func wrapDecl(fd *ast.FuncDecl) *ast.File {
	return &ast.File{Name: ast.NewIdent("_"), Decls: []ast.Decl{fd}}
}

// handleUsesOn records the builders of handles whose methods are called
// with an argument mentioning a tainted (argument-block) address, and
// the direction-classified field operations.
func (w *schemaWorld) handleUsesOn(body *ast.BlockStmt, tainted map[*types.Var]bool, out, ops map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recvID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		recvObj := w.pass.TypesInfo.Uses[recvID]
		builder, ok := w.handles[recvObj]
		if !ok {
			return true
		}
		for _, a := range call.Args {
			if mentionsTainted(w.pass, a, tainted) {
				out[builder] = true
				item := "arg:" + builder + "." + w.fields[recvObj]
				if readMethods[sel.Sel.Name] {
					ops["r "+item] = true
				}
				if writeMethods[sel.Sel.Name] {
					ops["w "+item] = true
				}
				return true
			}
		}
		return true
	})
}

// staticCallee resolves a call to its statically-known function object.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// footprintOf returns the transitive arg-block handle footprint of fn —
// the builders used and the field operations performed — from its own
// uses plus those of every same-package function it reaches. Imported
// functions contribute through their SchemaUseFact.
func (w *schemaWorld) footprintOf(fn types.Object) (builders, ops []string) {
	seen := map[types.Object]bool{}
	bset := map[string]bool{}
	oset := map[string]bool{}
	var visit func(o types.Object)
	visit = func(o types.Object) {
		if o == nil || seen[o] {
			return
		}
		seen[o] = true
		if o.Pkg() != w.pass.Pkg {
			var fact SchemaUseFact
			if w.pass.ImportObjectFact(o, &fact) {
				for _, b := range fact.Builders {
					bset[b] = true
				}
				for _, op := range fact.Ops {
					oset[op] = true
				}
			}
			return
		}
		for _, b := range w.uses[o] {
			bset[b] = true
		}
		for _, op := range w.ops[o] {
			oset[op] = true
		}
		for _, callee := range w.edges[o] {
			visit(callee)
		}
	}
	visit(fn)
	return sortedSet(bset), sortedSet(oset)
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// exportFacts publishes schema identities and per-function footprints
// for dependent packages.
func (w *schemaWorld) exportFacts() {
	scope := w.pass.Pkg.Scope()
	for obj, b := range w.schemas {
		if scope.Lookup(obj.Name()) == obj {
			w.pass.ExportObjectFact(obj, &SchemaFact{Builder: b})
		}
	}
	// Functions and methods both (gate entries are usually methods, not
	// in the package scope; the fact key is object name either way).
	for obj := range w.funcs {
		if builders, ops := w.footprintOf(obj); len(builders) > 0 {
			w.pass.ExportObjectFact(obj, &SchemaUseFact{Builders: builders, Ops: ops})
		}
	}
}

// checkRegistrations finds serve.App / serve.PacketApp / gatepool.Config
// composite literals and verifies every gate entry's footprint against
// the registered schema.
func (w *schemaWorld) checkRegistrations(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !isRegistrationStruct(w.pass, lit) {
			return true
		}
		var schemaExpr ast.Expr
		var gates []ast.Expr
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Schema":
				schemaExpr = kv.Value
			case "Gates":
				if gl, ok := ast.Unparen(kv.Value).(*ast.CompositeLit); ok {
					gates = gl.Elts
				}
			}
		}
		if schemaExpr == nil {
			return true
		}
		registered, ok := w.resolveSchema(schemaExpr)
		if !ok {
			return true
		}
		for _, g := range gates {
			gd, ok := ast.Unparen(g).(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, elt := range gd.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Entry" {
					continue
				}
				usedBuilders, _ := w.entryFootprint(kv.Value)
				for _, used := range usedBuilders {
					if used != registered {
						w.pass.Reportf(kv.Value.Pos(),
							"gate entry uses fields of schema %q but the pool registers schema %q; those fields are outside the scrub footprint",
							used, registered)
					}
				}
			}
		}
		return true
	})
}

// isRegistrationStruct matches serve.App[T], serve.PacketApp[T], and
// gatepool.Config composite literals.
func isRegistrationStruct(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	switch obj.Name() {
	case "App", "PacketApp":
		return strings.HasSuffix(path, "internal/serve")
	case "Config":
		return strings.HasSuffix(path, "internal/gatepool")
	}
	return false
}

// resolveSchema maps a Schema field value to its builder: a sealed
// schema variable, an accessor call, an inline b.Seal(), or an imported
// object carrying a SchemaFact.
func (w *schemaWorld) resolveSchema(e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if name, call := gateabiCall(w.pass, e); name == "Seal" {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return w.builderOf(sel.X)
	}
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = w.pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = w.pass.TypesInfo.Uses[e.Sel]
	case *ast.CallExpr:
		obj = staticCallee(w.pass, e)
	}
	if obj == nil {
		return "", false
	}
	if b, ok := w.schemas[obj]; ok {
		return b, true
	}
	var fact SchemaFact
	if w.pass.ImportObjectFact(obj, &fact) {
		return fact.Builder, true
	}
	return "", false
}

// entryFootprint resolves a GateDef Entry value to its arg-block handle
// footprint: builders used and field operations performed.
func (w *schemaWorld) entryFootprint(e ast.Expr) (builders, ops []string) {
	if lit := unwrapFuncLit(w.pass, e); lit != nil {
		fn := funcNode{node: lit, ftype: lit.Type, body: lit.Body}
		bset := make(map[string]bool)
		oset := make(map[string]bool)
		tainted := argBlockParams(w.pass, fn)
		if len(tainted) > 0 {
			propagateTaint(w.pass, fn, tainted)
			w.handleUsesOn(fn.body, tainted, bset, oset)
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := staticCallee(w.pass, call); callee != nil && callee.Pkg() == w.pass.Pkg {
					cb, co := w.footprintOf(callee)
					for _, b := range cb {
						bset[b] = true
					}
					for _, op := range co {
						oset[op] = true
					}
				}
			}
			return true
		})
		return sortedSet(bset), sortedSet(oset)
	}
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = w.pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = w.pass.TypesInfo.Uses[e.Sel]
	}
	if obj == nil {
		return nil, nil
	}
	if obj.Pkg() != w.pass.Pkg {
		var fact SchemaUseFact
		if w.pass.ImportObjectFact(obj, &fact) {
			return fact.Builders, fact.Ops
		}
		return nil, nil
	}
	return w.footprintOf(obj)
}
