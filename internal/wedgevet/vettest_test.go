// An analysistest-style golden harness for the wedgevet suite, on the
// standard library only. Test packages live under testdata/src by
// import path — including stub versions of the wedge packages the
// analyzers' type tests anchor on (path-suffix matched) and of sync and
// crypto/rsa (path matched) — so the whole dependency graph loads from
// testdata and no export data is needed. Expectations are `// want`
// comments carrying backquoted regular expressions, one per expected
// diagnostic on that line; loading a package runs the full suite over
// its dependencies first, so facts propagate exactly as under go vet.

package wedgevet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// vetTest loads root (and, transitively, its testdata dependencies),
// runs the full suite, and compares the named analyzer's diagnostics in
// the listed packages against their `// want` comments.
func vetTest(t *testing.T, analyzer string, roots ...string) {
	t.Helper()
	ld := newTestLoader(t)
	for _, root := range roots {
		ld.load(root)
	}
	for _, root := range roots {
		ld.check(t, analyzer, root)
	}
}

type testLoader struct {
	t     *testing.T
	fset  *token.FileSet
	dir   string
	pkgs  map[string]*types.Package
	files map[string][]*ast.File
	store *factStore
	diags map[string][]Diagnostic
}

func newTestLoader(t *testing.T) *testLoader {
	return &testLoader{
		t:     t,
		fset:  token.NewFileSet(),
		dir:   filepath.Join("testdata", "src"),
		pkgs:  make(map[string]*types.Package),
		files: make(map[string][]*ast.File),
		store: newFactStore(),
		diags: make(map[string][]Diagnostic),
	}
}

// Import implements types.Importer over the testdata tree, running the
// analyzer suite on every package as it loads (dependencies first, so
// fact export precedes import).
func (ld *testLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	return ld.load(path)
}

func (ld *testLoader) load(path string) (*types.Package, error) {
	dir := filepath.Join(ld.dir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("testdata package %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("testdata package %q: no Go files", path)
	}
	tc := &types.Config{Importer: ld}
	info := newTypesInfo()
	pkg, err := tc.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %q: %w", path, err)
	}
	ld.pkgs[path] = pkg
	ld.files[path] = files
	for _, a := range Analyzers() {
		pass := &Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     ld.store,
			report: func(d Diagnostic) {
				ld.diags[path] = append(ld.diags[path], d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %q: %w", a.Name, path, err)
		}
	}
	return pkg, nil
}

// wantRx extracts the backquoted expectations from a `// want` comment.
var wantRx = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// check compares one analyzer's diagnostics in pkg against the
// package's want comments.
func (ld *testLoader) check(t *testing.T, analyzer, pkg string) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	want := make(map[key][]*expectation)
	for _, f := range ld.files[pkg] {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := ld.fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRx.FindAllStringSubmatch(text, -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					want[k] = append(want[k], &expectation{rx: rx})
				}
			}
		}
	}

	var got []Diagnostic
	for _, d := range ld.diags[pkg] {
		if d.Analyzer == analyzer {
			got = append(got, d)
		}
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })

	for _, d := range got {
		pos := ld.fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found := false
		for _, exp := range want[k] {
			if !exp.matched && exp.rx.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for k, exps := range want {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, exp.rx)
			}
		}
	}
}

func TestGateArgsGolden(t *testing.T) {
	GateArgsPackages["gateargs.example"] = true
	defer delete(GateArgsPackages, "gateargs.example")
	vetTest(t, "gateargs", "gateargs.example")
}

func TestGateCaptureGolden(t *testing.T) {
	vetTest(t, "gatecapture", "gatecapture.example")
}

func TestScrubFootprintGolden(t *testing.T) {
	vetTest(t, "scrubfootprint", "scrubfoot.example")
}

func TestScrubFootprintCrossPackageFacts(t *testing.T) {
	vetTest(t, "scrubfootprint", "scrubapp.example")
}

func TestLockCallbackGolden(t *testing.T) {
	LockCallbackPackages["lockcb.example"] = true
	defer delete(LockCallbackPackages, "lockcb.example")
	vetTest(t, "lockcallback", "lockcb.example")
}

// TestFactRoundTrip proves facts survive the vetx wire encoding: the
// scrubdef facts exported during one load merge into a fresh store and
// resolve by (package, object) key.
func TestFactRoundTrip(t *testing.T) {
	ld := newTestLoader(t)
	if _, err := ld.load("scrubdef.example"); err != nil {
		t.Fatal(err)
	}
	enc, err := ld.store.encode()
	if err != nil {
		t.Fatal(err)
	}
	fresh := newFactStore()
	if err := fresh.merge(enc); err != nil {
		t.Fatal(err)
	}
	pkg := ld.pkgs["scrubdef.example"]
	var sf SchemaFact
	if !fresh.lookup("scrubfootprint", pkg.Scope().Lookup("GammaSchema"), &sf) || sf.Builder != "gamma" {
		t.Fatalf("GammaSchema fact = %+v, want builder gamma", sf)
	}
	var uf SchemaUseFact
	if !fresh.lookup("scrubfootprint", pkg.Scope().Lookup("MixedEntry"), &uf) {
		t.Fatal("MixedEntry: no SchemaUseFact after round trip")
	}
	if want := []string{"delta", "gamma"}; !equalStrings(uf.Builders, want) {
		t.Fatalf("MixedEntry builders = %v, want %v", uf.Builders, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
