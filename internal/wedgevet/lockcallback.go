// lockcallback: no escaping callback runs while the owning mutex is
// held.
//
// timerwheel documents "callbacks run outside the wheel lock"; gatepool
// and serve invoke application hooks (gate entries, InitConn/EndConn/
// Finish, drain notifications) that may themselves call back into the
// pool or the wheel. Invoking any of them with the owning mutex held is
// a deadlock one re-entrant call away — an invariant the runtime tests
// exercise only on the schedules they happen to produce. This analyzer
// proves the rule for the shapes that matter: within the three
// lock-owning packages, a call through a dynamic function value (a
// struct field, a parameter, a collection element — anything the
// package does not statically control) is flagged if a sync.Mutex or
// sync.RWMutex is held at the call site.
//
// The scan is source-order within each function body: Lock() adds the
// receiver to the held set, Unlock() removes it, a deferred Unlock
// holds to function end, and nested function literals are scanned as
// their own bodies (they execute later, under their own locking
// discipline). Calls to locally-defined closures — function values the
// package does control — stay legal.

package wedgevet

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockCallbackPackages is the set of lock-owning packages the invariant
// binds. Tests extend it to cover golden packages.
var LockCallbackPackages = map[string]bool{
	"wedge/internal/timerwheel": true,
	"wedge/internal/gatepool":   true,
	"wedge/internal/serve":      true,
}

// LockCallbackAnalyzer is the lockcallback suite entry.
var LockCallbackAnalyzer = &Analyzer{
	Name: "lockcallback",
	Doc: "callbacks (dynamic function values) must not be invoked while the owning" +
		" mutex is held in timerwheel, gatepool, and serve",
	Run: runLockCallback,
}

func runLockCallback(pass *Pass) error {
	if !LockCallbackPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		forEachFunc(file, func(fn funcNode) {
			checkLockCallback(pass, fn)
		})
	}
	return nil
}

// checkLockCallback runs the held-set scan over one function body.
func checkLockCallback(pass *Pass, fn funcNode) {
	held := make(map[string]bool) // mutex expr string -> held
	closures := localClosures(pass, fn)

	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != fn.node {
				return false // runs later; scanned as its own funcNode
			}
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held for the rest of the
			// body; a deferred anything-else runs at return, outside
			// this scan's order. Either way, don't mutate the held set.
			return false
		case *ast.CallExpr:
			if mutex, op := lockOp(pass, n); mutex != "" {
				switch op {
				case "Lock", "RLock":
					held[mutex] = true
				case "Unlock", "RUnlock":
					delete(held, mutex)
				}
				return true
			}
			if len(held) > 0 {
				if label := dynamicCallee(pass, n, closures); label != "" {
					pass.Reportf(n.Pos(), "callback %s invoked while %s is held; callbacks must run outside the lock",
						label, heldNames(held))
				}
			}
		}
		return true
	}
	ast.Inspect(fn.body, scan)
}

// lockOp recognizes X.Lock/Unlock/RLock/RUnlock where X is a
// sync.Mutex or sync.RWMutex (directly or via pointer), returning the
// receiver's expression text and the operation.
func lockOp(pass *Pass, call *ast.CallExpr) (mutex, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isSyncMutex(tv.Type) {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// dynamicCallee classifies a call's function expression; it returns a
// diagnostic label when the callee is a dynamic function value the
// package does not statically control, and "" for static functions,
// methods, conversions, builtins, and locally-defined closures.
func dynamicCallee(pass *Pass, call *ast.CallExpr, closures map[*types.Var]bool) string {
	fun := ast.Unparen(call.Fun)
	tv, ok := pass.TypesInfo.Types[fun]
	if !ok || tv.IsType() {
		return "" // conversion
	}
	if _, ok := tv.Type.Underlying().(*types.Signature); !ok {
		return "" // builtin or non-call shapes
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := pass.TypesInfo.Uses[fun].(type) {
		case *types.Func:
			return "" // static function
		case *types.Var:
			if closures[obj] {
				return "" // local closure, package-controlled
			}
			return fun.Name
		case *types.Builtin, *types.TypeName, nil:
			return ""
		}
		return fun.Name
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[fun]; sel != nil {
			if _, ok := sel.Obj().(*types.Func); ok {
				return "" // method call (incl. interface methods)
			}
			// Field of function type.
			return types.ExprString(fun)
		}
		// Package-qualified identifier.
		if _, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return ""
		}
		return types.ExprString(fun)
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Indexing a collection of callbacks — unless this is a generic
		// function instantiation, which types as a value of the
		// instantiated signature with a static object underneath.
		if id, ok := ast.Unparen(fun.(ast.Expr)).(*ast.IndexExpr); ok {
			if base, ok := ast.Unparen(id.X).(*ast.Ident); ok {
				if _, isFunc := pass.TypesInfo.Uses[base].(*types.Func); isFunc {
					return ""
				}
			}
		}
		return types.ExprString(fun.(ast.Expr))
	case *ast.CallExpr:
		return types.ExprString(fun)
	}
	return ""
}

// localClosures returns the function's local variables whose every
// assignment in this body is a function literal — callbacks the package
// itself authored, safe to run under its own lock.
func localClosures(pass *Pass, fn funcNode) map[*types.Var]bool {
	candidates := make(map[*types.Var]bool)
	disqualified := make(map[*types.Var]bool)
	note := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		if _, isLit := ast.Unparen(rhs).(*ast.FuncLit); isLit {
			candidates[v] = true
		} else {
			disqualified[v] = true
		}
	}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				note(as.Lhs[i], as.Rhs[i])
			}
		}
		return true
	})
	out := make(map[*types.Var]bool)
	for v := range candidates {
		if !disqualified[v] {
			out[v] = true
		}
	}
	return out
}

// heldNames renders the held mutexes for a diagnostic.
func heldNames(held map[string]bool) string {
	var names []string
	for n := range held {
		names = append(names, n)
	}
	if len(names) == 1 {
		return names[0]
	}
	// Deterministic order for multi-lock messages.
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, ", ")
}
