// Package wedgevet is a static-analysis suite that enforces wedge's
// compartment boundaries at compile time — the §7 counterpart to
// Crowbar's dynamic traces. Static permissions never cause a protection
// violation; wedgevet makes the same move one level up, proving the
// isolation invariants the runtime tests only witness:
//
//   - gateargs: application code touches gate argument blocks only
//     through gateabi field handles — raw word I/O on an arg-block
//     address, arg-offset arithmetic, and resurrected offset-constant
//     families are compile errors, not grep matches.
//   - gatecapture: closures handed to compartment creation (sthread
//     bodies, gate entries, recycled workers) must not capture loop
//     variables, variables the monitor still mutates after the handoff,
//     or privileged monitor state (private keys) — the PR 1 race class
//     and the Go-heap bypass of the simulated isolation, caught before
//     the scheduler gets a vote.
//   - scrubfootprint: every gateabi field handle an app's gates use must
//     belong to the schema the app registered with the pool — the
//     schema whose Size() is the inter-principal scrub footprint. A
//     handle from a different builder is memory the scrub never
//     reaches; cross-package facts carry schema layouts to the
//     registration site.
//   - lockcallback: timerwheel, gatepool, and serve document that user
//     callbacks run outside their locks; this proves it — no dynamic
//     function value escaping the package may be invoked while the
//     owning mutex is held.
//
// The suite is built on a self-contained miniature of the go/analysis
// vocabulary (this repo carries no module dependencies): an Analyzer
// runs once per package over parsed, type-checked syntax, reports
// position-tagged diagnostics, and exchanges facts about package-level
// objects with the passes of dependency packages. cmd/wedgevet drives
// the suite through the `go vet -vettool=` unit-checker protocol, so
// the toolchain's package graph, caching, and fact plumbing are reused
// rather than reimplemented.
package wedgevet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker. It is the self-contained
// analogue of golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string // command-line and diagnostic prefix
	Doc  string // one-paragraph description

	// Run performs the check on one package. Diagnostics and exported
	// facts go through the Pass.
	Run func(*Pass) error
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// A Fact is a serializable statement about a package-level object,
// exported by the pass that analyzes the object's package and visible
// to every pass that imports it. Facts must be gob-encodable pointers;
// the AFact method marks the type (and pins its dynamic identity for
// decoding).
type Fact interface {
	AFact()
}

// ObjFact names an object — by package path and object name, so facts
// about objects outside the importer's view still list — with one of
// its facts, for AllObjectFacts.
type ObjFact struct {
	Pkg  string
	Name string
	Fact Fact
}

// A Pass carries one analyzer's view of one package: syntax, types, a
// diagnostic sink, and the fact store.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *factStore
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact attaches fact to obj, a package-level object of the
// package under analysis. Facts on other packages' objects are a
// programming error: each package's facts are sealed when its pass
// completes.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("wedgevet: %s: ExportObjectFact on foreign object %v", p.Analyzer.Name, obj))
	}
	p.facts.export(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact copies obj's fact of ptr's concrete type into ptr,
// reporting whether one was found. obj may belong to this package or to
// any (transitive) import whose facts were propagated to this pass.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if obj == nil {
		return false
	}
	return p.facts.lookup(p.Analyzer.Name, obj, ptr)
}

// AllObjectFacts returns every fact of this analyzer visible to the
// pass (own package and imports), in a stable order.
func (p *Pass) AllObjectFacts() []ObjFact {
	out := p.facts.all(p.Analyzer.Name, p.Pkg)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Analyzers returns the full wedgevet suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		GateArgsAnalyzer,
		GateCaptureAnalyzer,
		ScrubFootprintAnalyzer,
		LockCallbackAnalyzer,
	}
}
