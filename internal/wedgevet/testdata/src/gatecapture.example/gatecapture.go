// Golden tests for the gatecapture analyzer.
package gatecapture

import (
	"crypto/rsa"
	"wedge/internal/gatepool"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// Loop variables captured by a compartment body couple the compartment
// to the monitor's iteration.
func loopCapture(root *sthread.Sthread, scs []*policy.SC) {
	for i, sc := range scs {
		root.CreateNamed("w", sc, func(s *sthread.Sthread, arg vm.Addr) vm.Addr {
			return vm.Addr(i) // want `captures loop variable i`
		}, 0)
	}
	for n := 0; n < 4; n++ {
		root.Create(scs[0], func(s *sthread.Sthread, arg vm.Addr) vm.Addr {
			return vm.Addr(n) // want `captures loop variable n`
		}, 0)
	}
}

// Hoisting the iteration value into a per-iteration copy is the fix.
func loopCaptureFixed(root *sthread.Sthread, scs []*policy.SC) {
	for i := range scs {
		index := vm.Addr(i)
		root.Create(scs[i], func(s *sthread.Sthread, arg vm.Addr) vm.Addr {
			return index
		}, 0)
	}
}

// The creation call's own result, captured by the closure it creates:
// the PR 1 sshd race shape.
func resultCapture(root *sthread.Sthread, sc *policy.SC) {
	var worker *sthread.Sthread
	worker, _ = root.CreateNamed("w", sc, func(s *sthread.Sthread, arg vm.Addr) vm.Addr {
		_ = worker // want `captures worker, which the monitor writes after the handoff`
		return 0
	}, 0)
}

// A write after the handoff races the running compartment.
func lateWrite(root *sthread.Sthread, sc *policy.SC) {
	state := 0
	root.Create(sc, func(s *sthread.Sthread, arg vm.Addr) vm.Addr {
		return vm.Addr(state) // want `captures state, which the monitor writes after the handoff`
	}, 0)
	state = 1
}

// Captures the monitor finished writing are legal.
func settledCapture(root *sthread.Sthread, sc *policy.SC) {
	limit := 32
	root.Create(sc, func(s *sthread.Sthread, arg vm.Addr) vm.Addr {
		return vm.Addr(limit)
	}, 0)
}

// Private keys never travel into a gate via the Go heap; the kernel-held
// trusted address is the only sanctioned path.
func keyCapture(sc *policy.SC, key *rsa.PrivateKey) {
	sc.GateAdd(sthread.GateFunc(func(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
		_ = key // want `captures private key key`
		return 0
	}), policy.New(), 0, "sign")
}

// GateSpec and GateDef literals are creation sites too.
func specCapture(key *rsa.PrivateKey) policy.GateSpec {
	return policy.GateSpec{Entry: sthread.GateFunc(func(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
		_ = key // want `captures private key key`
		return 0
	})}
}

func defCapture(keys []*rsa.PrivateKey) []gatepool.GateDef {
	var defs []gatepool.GateDef
	for _, k := range keys {
		defs = append(defs, gatepool.GateDef{
			Name: "sign",
			Entry: func(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
				_ = k // want `captures loop variable k`
				return 0
			},
		})
	}
	return defs
}

// Recycled workers follow the same rules as sthread bodies.
func recycledCapture(root *sthread.Sthread, sc *policy.SC) {
	var rec *sthread.Recycled
	rec, _ = root.NewRecycled("w", sc, func(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
		_ = rec // want `captures rec, which the monitor writes after the handoff`
		return 0
	}, 0)
}
