// Stub of crypto/rsa for wedgevet golden tests: gatecapture's
// private-key test keys on this package path and type name.
package rsa

type PrivateKey struct {
	D int
}
