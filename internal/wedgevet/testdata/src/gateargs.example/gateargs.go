// Golden tests for the gateargs analyzer.
package gateargs

import (
	"wedge/internal/gateabi"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

var (
	schemaB = gateabi.NewSchema("example")
	fOp     = gateabi.U64(schemaB, "op")
	fData   = gateabi.Bytes(schemaB, "data", 64)
	schema  = schemaB.Seal()
)

// Resurrected offset-constant families are flagged by name and type.
const p3Op = 0 // want `resurrected argument-block offset constant p3Op`

var sshArgSize = 128 // want `resurrected argument-block offset constant sshArgSize`

// A string by the same name is not an offset constant.
const argOpName = "op"

// entry is gate-shaped: its second parameter is an argument block.
func entry(s *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	// The legal path: typed field handles.
	op := fOp.Load(s, arg)
	fOp.Store(s, arg, op+1)
	if b, err := fData.Load(s, arg); err == nil {
		_ = b
	}

	// Raw accessors on the argument block are violations.
	v := s.Load64(arg)          // want `raw Load64 on an argument-block address`
	s.Store64(arg+8, v)         // want `offset arithmetic on an argument-block address` `raw Store64 on an argument-block address`
	_ = s.TryRead(arg, nil)     // want `raw TryRead on an argument-block address`
	s.Zero(arg, 16)             // want `raw Zero on an argument-block address`
	_, _ = s.ReadString(arg)    // want `raw ReadString on an argument-block address`
	_ = s.WriteString(arg, "x") // want `raw WriteString on an argument-block address`

	// Taint flows through local aliases.
	p := arg
	q := p + 16            // want `offset arithmetic on an argument-block address`
	_ = s.TryWrite(q, nil) // want `raw TryWrite on an argument-block address`

	// The trusted address is not an argument block: raw access is the
	// only way to read a monitor-placed blob, and stays legal.
	_ = s.Load64(trusted)
	blob := trusted + 8
	_ = s.Load64(blob)
	return 0
}

// helper receives the block base under the conventional name; the taint
// follows it.
func helper(s *sthread.Sthread, arg vm.Addr) {
	s.Store64(arg, 1) // want `raw Store64 on an argument-block address`
}

// regionIO takes an address that is not an argument block (a session
// region); raw access is legal here.
func regionIO(s *sthread.Sthread, sess vm.Addr) uint64 {
	return s.Load64(sess)
}

// closures capturing the block inherit the obligation.
func entryWithClosure(s *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	poke := func() {
		s.Store64(arg, 7) // want `raw Store64 on an argument-block address`
	}
	poke()
	return fOp.Load(s, arg)
}

var _ = schema
