// Cross-package half of the scrubfootprint golden tests: registers
// schemas and entries defined in scrubdef.example, resolved via facts.
package scrubapp

import (
	"scrubdef.example"
	"wedge/internal/gatepool"
	"wedge/internal/serve"
)

// The clean registration: entry and schema agree.
var ok = serve.App[int]{
	Name:   "ok",
	Schema: scrubdef.GammaSchema(),
	Gates: []gatepool.GateDef{
		{Name: "w", Entry: scrubdef.Entry},
	},
}

// Registering the wrong schema for an imported entry.
var wrongSchema = serve.App[int]{
	Name:   "wrong-schema",
	Schema: scrubdef.DeltaSchema(),
	Gates: []gatepool.GateDef{
		{Name: "w", Entry: scrubdef.Entry}, // want `uses fields of schema "gamma" but the pool registers schema "delta"`
	},
}

// An imported entry whose footprint spans two schemas.
var mixed = serve.App[int]{
	Name:   "mixed",
	Schema: scrubdef.GammaSchema(),
	Gates: []gatepool.GateDef{
		{Name: "w", Entry: scrubdef.MixedEntry}, // want `uses fields of schema "delta" but the pool registers schema "gamma"`
	},
}

var _, _, _ = ok, wrongSchema, mixed
