// Stub of the standard sync package for wedgevet golden tests: just
// enough surface for the lockcallback analyzer's type tests.
package sync

type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{}

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
