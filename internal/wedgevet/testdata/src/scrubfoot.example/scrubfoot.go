// Golden tests for the scrubfootprint analyzer, single-package case.
package scrubfoot

import (
	"wedge/internal/gateabi"
	"wedge/internal/gatepool"
	"wedge/internal/serve"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

var (
	alphaB = gateabi.NewSchema("alpha")
	fOp    = gateabi.U64(alphaB, "op")
	fData  = gateabi.Bytes(alphaB, "data", 64)
	alpha  = alphaB.Seal()

	betaB = gateabi.NewSchema("beta")
	fOut  = gateabi.U64(betaB, "out")
	beta  = betaB.Seal()
)

// goodEntry touches only alpha fields on the block.
func goodEntry(s *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	fOp.Store(s, arg, 1)
	return 0
}

// badEntry reaches through a beta handle: bytes outside alpha's scrub
// footprint.
func badEntry(s *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	fOut.Store(s, arg, 2)
	return fOp.Load(s, arg)
}

// deepEntry hides the stray use one call deep.
func deepEntry(s *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	stray(s, arg)
	return 0
}

func stray(s *sthread.Sthread, arg vm.Addr) {
	fOut.Store(s, arg, 3)
}

// sessionEntry applies beta handles to a non-block region; that region
// is not scrubbed by the pool, so the schema mix is legal.
func sessionEntry(s *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	sess := trusted
	fOut.Store(s, sess, 4)
	return fOp.Load(s, arg)
}

var apps = []serve.App[int]{
	{
		Name:   "clean",
		Schema: alpha,
		Gates: []gatepool.GateDef{
			{Name: "good", Entry: goodEntry},
			{Name: "session", Entry: sessionEntry},
		},
	},
	{
		Name:   "dirty",
		Schema: alpha,
		Gates: []gatepool.GateDef{
			{Name: "bad", Entry: badEntry},   // want `uses fields of schema "beta" but the pool registers schema "alpha"`
			{Name: "deep", Entry: deepEntry}, // want `uses fields of schema "beta" but the pool registers schema "alpha"`
		},
	},
}

// Inline literal entries and gatepool.Config sites are checked too.
var cfg = gatepool.Config{
	Name:   "raw",
	Schema: beta,
	Gates: []gatepool.GateDef{
		{Name: "inline", Entry: func(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr { // want `uses fields of schema "alpha" but the pool registers schema "beta"`
			fData.Store(g, arg, nil)
			return fOut.Load(g, arg)
		}},
	},
}

// A handle the builder did not mint is invisible to every schema.
var forged = gateabi.BytesField{Offset: 16} // want `hand-rolled gateabi.BytesField literal`

// ringEntry rebuilds the ring geometry by hand: entry i of the slot at
// arg + i×stride. Only BatchRing may compute that product.
func ringEntry(s *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	idx := uint64(3)
	entry := arg + vm.Addr(idx*64) // want `hand-computed ring entry address`
	fOp.Store(s, entry, 5)
	return 0
}

// ringEntryDerived steps from a locally aliased block address; the
// taint follows the assignment.
func ringEntryDerived(s *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	block := arg
	stride := vm.Addr(64)
	return fOp.Load(s, block-3*stride) // want `hand-computed ring entry address`
}

// fixedStride steps one constant stride without a multiplication — the
// residue probes' neighbour read; scaled stepping alone flags.
func fixedStride(s *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	stride := vm.Addr(64)
	return fOp.Load(s, arg-stride)
}

var _, _, _ = ringEntry, ringEntryDerived, fixedStride

var _, _ = apps, cfg
