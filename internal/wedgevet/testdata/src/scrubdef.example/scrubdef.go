// Cross-package half of the scrubfootprint golden tests: this package
// defines schemas and gate entries; scrubapp.example registers them.
// Schema identities and entry footprints travel as facts.
package scrubdef

import (
	"wedge/internal/gateabi"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

var (
	gammaB = gateabi.NewSchema("gamma")
	FOp    = gateabi.U64(gammaB, "op")
	gamma  = gammaB.Seal()

	deltaB = gateabi.NewSchema("delta")
	FAux   = gateabi.U64(deltaB, "aux")
	delta  = deltaB.Seal()
)

// GammaSchema is the accessor apps register.
func GammaSchema() *gateabi.Schema { return gamma }

// DeltaSchema is a different layout entirely.
func DeltaSchema() *gateabi.Schema { return delta }

// Entry uses only gamma fields.
func Entry(s *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	FOp.Store(s, arg, 1)
	return 0
}

// MixedEntry also reaches through a delta handle.
func MixedEntry(s *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	FAux.Store(s, arg, 2)
	FOp.Store(s, arg, FOp.Load(s, arg))
	return 0
}
