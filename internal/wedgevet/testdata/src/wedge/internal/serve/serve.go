// Stub of wedge/internal/serve for wedgevet golden tests: the two
// registration structs scrubfootprint anchors on.
package serve

import (
	"wedge/internal/gateabi"
	"wedge/internal/gatepool"
)

type App[T any] struct {
	Name     string
	Slots    int
	MaxSlots int
	Schema   *gateabi.Schema
	Gates    []gatepool.GateDef
	Worker   string
}

type PacketApp[T any] struct {
	Name     string
	Slots    int
	Schema   *gateabi.Schema
	OnPacket string
	Gates    []gatepool.GateDef
}
