// Stub of wedge/internal/policy for wedgevet golden tests.
package policy

import "wedge/internal/vm"

type SC struct {
	Gates []GateSpec
}

type GateSpec struct {
	Entry any
	Arg   vm.Addr
	Name  string
}

func New() *SC { return &SC{} }

func (sc *SC) GateAdd(entry any, gateSC *SC, arg vm.Addr, name string) {
	sc.Gates = append(sc.Gates, GateSpec{Entry: entry, Arg: arg, Name: name})
}
