// Stub of wedge/internal/gatepool for wedgevet golden tests.
package gatepool

import (
	"wedge/internal/gateabi"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

type GateDef struct {
	Name    string
	SC      *policy.SC
	Entry   sthread.GateFunc
	Trusted vm.Addr
}

type Config struct {
	Name     string
	Slots    int
	MaxSlots int
	ArgSize  int
	Gates    []GateDef
	Schema   *gateabi.Schema
}
