// Stub of wedge/internal/gateabi for wedgevet golden tests: builders,
// schemas, and the handle types with the method names the analyzers
// classify.
package gateabi

import (
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

type Builder struct{}

type Schema struct{}

func NewSchema(name string) *Builder { return &Builder{} }

func (b *Builder) Seal() *Schema { return &Schema{} }

func (s *Schema) Size() int { return 0 }

type Integer interface {
	~uint8 | ~uint16 | ~uint32 | ~uint64
}

type WordField[T Integer] struct {
	Offset int
}

func Word[T Integer](b *Builder, name string) WordField[T] { return WordField[T]{} }

func U64(b *Builder, name string) WordField[uint64] { return Word[uint64](b, name) }

func ConnID(b *Builder) WordField[uint64] { return WordField[uint64]{} }

func FD(b *Builder) WordField[uint64] { return WordField[uint64]{} }

func (f WordField[T]) Load(s *sthread.Sthread, base vm.Addr) T     { var z T; return z }
func (f WordField[T]) Store(s *sthread.Sthread, base vm.Addr, v T) {}

type BytesField struct {
	Offset int
}

func Bytes(b *Builder, name string, capacity int) BytesField { return BytesField{} }

func (f BytesField) Load(s *sthread.Sthread, base vm.Addr) ([]byte, error)  { return nil, nil }
func (f BytesField) Store(s *sthread.Sthread, base vm.Addr, p []byte) error { return nil }
func (f BytesField) Bytes(s *sthread.Sthread, base vm.Addr) []byte          { return nil }

type StringField struct {
	Offset int
}

func String(b *Builder, name string, capacity int) StringField { return StringField{} }

func (f StringField) Load(s *sthread.Sthread, base vm.Addr) (string, error)  { return "", nil }
func (f StringField) Store(s *sthread.Sthread, base vm.Addr, v string) error { return nil }

type FixedField struct {
	Offset int
}

func Fixed(b *Builder, name string, size int) FixedField { return FixedField{} }

func (f FixedField) Read(s *sthread.Sthread, base vm.Addr, p []byte)  {}
func (f FixedField) Write(s *sthread.Sthread, base vm.Addr, p []byte) {}
