// Stub of wedge/internal/sthread for wedgevet golden tests: the raw
// memory accessors gateargs audits and the creation methods gatecapture
// watches, with the real signatures.
package sthread

import (
	"wedge/internal/policy"
	"wedge/internal/vm"
)

type Sthread struct{}

type Body func(s *Sthread, arg vm.Addr) vm.Addr

type GateFunc func(g *Sthread, arg, trusted vm.Addr) vm.Addr

type Recycled struct{}

func (s *Sthread) Read(a vm.Addr, p []byte) error        { return nil }
func (s *Sthread) Write(a vm.Addr, p []byte) error       { return nil }
func (s *Sthread) TryRead(a vm.Addr, p []byte) error     { return nil }
func (s *Sthread) TryWrite(a vm.Addr, p []byte) error    { return nil }
func (s *Sthread) Load64(a vm.Addr) uint64               { return 0 }
func (s *Sthread) Store64(a vm.Addr, v uint64)           {}
func (s *Sthread) Zero(a vm.Addr, n int)                 {}
func (s *Sthread) ReadString(a vm.Addr) (string, error)  { return "", nil }
func (s *Sthread) WriteString(a vm.Addr, v string) error { return nil }

func (s *Sthread) Create(sc *policy.SC, body Body, arg vm.Addr) (*Sthread, error) {
	return nil, nil
}

func (s *Sthread) CreateNamed(name string, sc *policy.SC, body Body, arg vm.Addr) (*Sthread, error) {
	return nil, nil
}

func (s *Sthread) CreateEmulated(name string, sc *policy.SC, body Body, arg vm.Addr) (*Sthread, error) {
	return nil, nil
}

func (s *Sthread) NewRecycled(name string, gateSC *policy.SC, fn GateFunc, trusted vm.Addr) (*Recycled, error) {
	return nil, nil
}
