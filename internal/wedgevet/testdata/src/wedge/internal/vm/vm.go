// Stub of wedge/internal/vm for wedgevet golden tests.
package vm

type Addr uint64
