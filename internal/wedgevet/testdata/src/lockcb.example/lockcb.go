// Golden tests for the lockcallback analyzer.
package lockcb

import "sync"

type Wheel struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	fn     func()
	onIdle func(int)
}

// The violation: a stored callback invoked under the owning mutex.
func (w *Wheel) fireLocked() {
	w.mu.Lock()
	w.fn() // want `callback w.fn invoked while w.mu is held`
	w.mu.Unlock()
}

// Deferred unlocks hold to the end of the function.
func (w *Wheel) fireDeferred(cb func()) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cb() // want `callback cb invoked while w.mu is held`
}

// Read locks count too.
func (w *Wheel) fireRLocked() {
	w.rw.RLock()
	w.onIdle(1) // want `callback w.onIdle invoked while w.rw is held`
	w.rw.RUnlock()
}

// The sanctioned shape: collect under the lock, fire outside it.
func (w *Wheel) fireOutside() {
	var due []func()
	w.mu.Lock()
	due = append(due, w.fn)
	w.mu.Unlock()
	for _, f := range due {
		f()
	}
}

// Copying the callback out and unlocking first is also legal.
func (w *Wheel) copyOut() {
	w.mu.Lock()
	f := w.fn
	w.mu.Unlock()
	f()
}

// Static calls and locally-authored closures stay legal under the lock.
func (w *Wheel) statics() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.advance()
	helper()
	tidy := func() {}
	tidy()
}

func (w *Wheel) advance() {}

func helper() {}

// A nested literal runs later, under its own discipline: registering it
// while locked is fine, and its own body is scanned separately.
func (w *Wheel) registers() {
	w.mu.Lock()
	w.fn = func() {
		w.onIdle(2)
	}
	w.mu.Unlock()
}

// Indexed callback tables are dynamic values.
func (w *Wheel) table(cbs []func()) {
	w.mu.Lock()
	cbs[0]() // want `callback cbs\[0\] invoked while w.mu is held`
	w.mu.Unlock()
}
