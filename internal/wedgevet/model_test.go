package wedgevet

import (
	"bytes"
	"strings"
	"testing"

	"wedge/internal/crowbar"
)

// TestModelRoundTrip derives the dnsd model from source, serializes it,
// re-parses it with crowbar, and re-serializes: the emitter's output
// must survive crowbar's model format byte-for-byte, and carry the
// permission split the dnsd compartment design promises.
func TestModelRoundTrip(t *testing.T) {
	prog, err := BuildModel([]string{"wedge/internal/dnsd"})
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	var first bytes.Buffer
	if err := crowbar.WriteModel(prog, &first); err != nil {
		t.Fatal(err)
	}
	if first.Len() == 0 {
		t.Fatal("BuildModel produced an empty model for wedge/internal/dnsd")
	}

	reparsed := crowbar.NewStaticProgram()
	if err := crowbar.ParseModel(reparsed, bytes.NewReader(first.Bytes())); err != nil {
		t.Fatalf("ParseModel on emitted model: %v", err)
	}
	var second bytes.Buffer
	if err := crowbar.WriteModel(reparsed, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("model does not round-trip:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}

	// The derived permissions must reflect the dnsd split: only the
	// resolve gate reads the query name; the worker only writes it.
	model := first.String()
	for _, want := range []string{
		"call dnsd dnsd/worker\n",
		"call dnsd dnsd/resolve\n",
		"read dnsd/resolve arg:dnsd.qname\n",
		"write dnsd/worker arg:dnsd.qname\n",
	} {
		if !strings.Contains(model, want) {
			t.Errorf("model missing %q:\n%s", want, model)
		}
	}
	if strings.Contains(model, "read dnsd/worker arg:dnsd.qname") {
		t.Errorf("worker gate should not read the query name it writes:\n%s", model)
	}
}
