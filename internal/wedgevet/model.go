// The model emitter: `wedgevet model` derives per-gate permission sets
// from source and serializes them in crowbar's model-file format, so
// cbstatic can diff the static superset against what dynamic traces
// justify (§7: "static analysis will yield a superset of the required
// permissions").
//
// The emitted model names each registration site's app and gates:
//
//	call <app> <gate>              — the pool can invoke the gate
//	read <gate> arg:<schema>.<field>
//	write <gate> arg:<schema>.<field>
//
// Items are schema fields, the same vocabulary the scrub footprint is
// measured in; the gate's read/write sets are the transitive closure of
// gateabi handle operations on argument-block addresses, computed by
// the same machinery the scrubfootprint analyzer checks with.
//
// Packages load through `go list -deps -export -json`: the toolchain
// supplies dependency export data and topological order, so module
// packages type-check exactly as the compiler saw them, and facts flow
// dependencies-first like under go vet.

package wedgevet

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"wedge/internal/crowbar"
)

// ModelMain is the `wedgevet model` entry point.
func ModelMain(args []string) {
	fs := flag.NewFlagSet("wedgevet model", flag.ExitOnError)
	out := fs.String("o", "", "write the model to this file (default stdout)")
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := BuildModel(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wedgevet model:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wedgevet model:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := crowbar.WriteModel(prog, w); err != nil {
		fmt.Fprintln(os.Stderr, "wedgevet model:", err)
		os.Exit(1)
	}
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// BuildModel loads the packages matching patterns (plus dependencies)
// and returns the statically-derived permission model for every gate
// registration site in the matched packages.
func BuildModel(patterns []string) (*crowbar.StaticProgram, error) {
	cmd := exec.Command("go", append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly", "--"}, patterns...)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outData, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v: %s", err, stderr.String())
	}

	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(outData))
	exports := make(map[string]string)
	for dec.More() {
		var lp listPkg
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		exports[lp.ImportPath] = lp.Export
		pkgs = append(pkgs, lp)
	}

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file := exports[path]
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	store := newFactStore()
	prog := crowbar.NewStaticProgram()

	// go list -deps emits dependencies before dependents, so each
	// package's imports (and their facts) are ready when it loads.
	for _, lp := range pkgs {
		if lp.Standard {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, lp.Dir+string(os.PathSeparator)+name, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		tc := &types.Config{Importer: unsafeAware{gc}}
		pkg, err := tc.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typechecking %s: %w", lp.ImportPath, err)
		}
		pass := &Pass{
			Analyzer:  ScrubFootprintAnalyzer,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     store,
			report:    func(Diagnostic) {},
		}
		w := newSchemaWorld(pass)
		w.collect(files)
		if !lp.DepOnly {
			for _, f := range files {
				w.emitModel(prog, f)
			}
		}
	}
	return prog, nil
}

// unsafeAware wraps an export-data importer with the "unsafe" special
// case.
type unsafeAware struct {
	next types.Importer
}

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.next.Import(path)
}

// emitModel writes one file's registration sites into the model.
func (w *schemaWorld) emitModel(prog *crowbar.StaticProgram, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !isRegistrationStruct(w.pass, lit) {
			return true
		}
		app := w.pass.Pkg.Name()
		var gates []ast.Expr
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Name":
				if s, ok := stringLit(kv.Value); ok {
					app = s
				}
			case "Gates":
				if gl, ok := ast.Unparen(kv.Value).(*ast.CompositeLit); ok {
					gates = gl.Elts
				}
			}
		}
		for _, g := range gates {
			gd, ok := ast.Unparen(g).(*ast.CompositeLit)
			if !ok {
				continue
			}
			var name string
			var entry ast.Expr
			for _, elt := range gd.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "Name":
					if s, ok := stringLit(kv.Value); ok {
						name = s
					}
				case "Entry":
					entry = kv.Value
				}
			}
			if entry == nil {
				continue
			}
			if name == "" {
				name = entryName(w.pass, entry)
			}
			gate := app + "/" + name
			prog.Func(app).Call(gate)
			_, ops := w.entryFootprint(entry)
			for _, op := range ops {
				kind, item, found := strings.Cut(op, " ")
				if !found {
					continue
				}
				switch kind {
				case "r":
					prog.Func(gate).Read(item)
				case "w":
					prog.Func(gate).Write(item)
				}
			}
		}
		return true
	})
}

// stringLit unquotes a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	return s, err == nil
}

// entryName labels an anonymous gate by its entry expression.
func entryName(pass *Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return "anon"
}
