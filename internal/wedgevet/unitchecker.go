// The `go vet -vettool=` unit-checker protocol, reimplemented on the
// standard library (this repo carries no module dependencies, so
// golang.org/x/tools/go/analysis/unitchecker is off the table).
//
// The protocol: the go command invokes the tool once with -V=full to
// obtain a version stamp for its cache key, then once per package with
// a single argument, a JSON "cfg" file naming the package's sources,
// the export-data file of every dependency, and the fact (.vetx) files
// previous invocations produced for those dependencies. The tool
// type-checks the package against the dependency export data, runs its
// analyzers, writes the package's own fact file, and reports
// diagnostics on stderr with a non-zero exit. The go command supplies
// scheduling, caching, and the package graph — exactly the machinery a
// from-scratch driver gets wrong first.

package wedgevet

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// vetConfig mirrors the JSON the go command writes for a vettool; field
// names are fixed by the protocol (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// Main is the cmd/wedgevet entry point for the vettool protocol. It
// never returns.
func Main(analyzers []*Analyzer) {
	progname := filepath.Base(os.Args[0])
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		// The version handshake: the go command hashes this line into
		// its action cache key, so it must change when the tool does.
		// Hash the executable itself, as unitchecker does.
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, toolHash())
		os.Exit(0)
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		// The go command asks which flags the tool supports, as a JSON
		// array; it then forwards only matching `go vet` flags. One
		// boolean per analyzer supports `go vet -vettool=… -gateargs`
		// style selection.
		printFlagDefs(analyzers)
		os.Exit(0)
	}
	args, enabled := parseEnableFlags(os.Args[1:], analyzers)
	analyzers = enabled
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, `%[1]s: static analysis of wedge compartment boundaries

Usage of %[1]s:
	%[1]s unit.cfg	# execute analysis specified by config file (go vet -vettool=%[1]s ./...)
	%[1]s model -o FILE [packages]	# emit static per-gate permission sets in crowbar model format
`, progname)
		os.Exit(1)
	}
	diags, err := runUnit(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

// printFlagDefs emits the -flags JSON the go command expects
// (cmd/go/internal/vet/vetflag.go): a list of {Name, Bool, Usage}.
func printFlagDefs(analyzers []*Analyzer) {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := make([]flagDef, 0, len(analyzers))
	for _, a := range analyzers {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(defs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wedgevet:", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// parseEnableFlags consumes leading -<analyzer>[=bool] arguments, as the
// go command forwards them, and returns the remaining arguments and the
// selected analyzer set: if any analyzer is explicitly enabled, only the
// enabled ones run; otherwise all run minus the explicitly disabled.
func parseEnableFlags(args []string, analyzers []*Analyzer) ([]string, []*Analyzer) {
	byName := make(map[string]*Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	set := make(map[string]bool)
	var rest []string
	for _, arg := range args {
		name, val, found := strings.Cut(strings.TrimPrefix(arg, "-"), "=")
		if !strings.HasPrefix(arg, "-") || byName[name] == nil {
			rest = append(rest, arg)
			continue
		}
		set[name] = !found || val == "true" || val == "1"
	}
	anyOn := false
	for _, on := range set {
		anyOn = anyOn || on
	}
	if len(set) == 0 {
		return rest, analyzers
	}
	var out []*Analyzer
	for _, a := range analyzers {
		on, mentioned := set[a.Name]
		if (anyOn && mentioned && on) || (!anyOn && !mentioned) {
			out = append(out, a)
		}
	}
	return rest, out
}

func toolHash() []byte {
	f, err := os.Open(os.Args[0])
	if err != nil {
		return []byte{0}
	}
	defer f.Close()
	h := sha256.New()
	io.Copy(h, f)
	return h.Sum(nil)[:16]
}

// runUnit executes one cfg-file invocation and returns rendered
// diagnostics. Fact output is written even when the package is clean —
// the go command caches the .vetx for dependent packages.
func runUnit(cfgPath string, analyzers []*Analyzer) ([]string, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	if cfg.ImportPath == "" {
		return nil, fmt.Errorf("%s: no ImportPath", cfgPath)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeEmptyVetx(&cfg)
			}
			return nil, err
		}
		files = append(files, f)
	}

	store := newFactStore()
	for _, vetx := range cfg.PackageVetx {
		if err := store.mergeFile(vetx); err != nil {
			return nil, err
		}
	}

	tc := &types.Config{
		Importer:  newExportDataImporter(&cfg, fset),
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect via the returned error
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeEmptyVetx(&cfg)
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	diags, err := runAnalyzers(analyzers, fset, files, pkg, info, store)
	if err != nil {
		return nil, err
	}
	if cfg.VetxOutput != "" {
		enc, err := store.encode()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.VetxOutput, enc, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	return diags, nil
}

func writeEmptyVetx(cfg *vetConfig) ([]string, error) {
	if cfg.VetxOutput == "" {
		return nil, nil
	}
	return nil, os.WriteFile(cfg.VetxOutput, nil, 0o666)
}

// newTypesInfo allocates every map the analyzers read.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// runAnalyzers executes the suite over one type-checked package,
// sharing the fact store, and renders diagnostics sorted by position.
func runAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, store *factStore) ([]string, error) {

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     store,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return out, nil
}

// exportDataImporter resolves imports through the dependency export
// data the go command lists in the cfg, via the compiler-aware importer
// in the standard library. One underlying importer instance serves the
// whole type-check, so packages shared between dependencies keep one
// identity.
type exportDataImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func newExportDataImporter(cfg *vetConfig, fset *token.FileSet) *exportDataImporter {
	m := &exportDataImporter{cfg: cfg}
	m.gc = importer.ForCompiler(fset, cfg.Compiler, func(p string) (io.ReadCloser, error) {
		c := p
		if mapped, ok := cfg.ImportMap[p]; ok && mapped != "" {
			c = mapped
		}
		file, ok := cfg.PackageFile[c]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	})
	return m
}

func (m *exportDataImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	canon := path
	if c, ok := m.cfg.ImportMap[path]; ok && c != "" {
		canon = c
	}
	return m.gc.Import(canon)
}
