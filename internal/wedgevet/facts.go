// Fact storage and wire encoding. Facts are statements about
// package-level objects, keyed by (analyzer, package path, object
// name). A pass exports facts about its own package; the driver
// serializes the pass's full fact view (own plus imported) into the
// package's .vetx file, so a dependent package's pass sees the
// transitive closure — the same propagation scheme the go toolchain
// uses for export data. Cross-package lookups resolve through the
// object's package path and name, which confines *cross-package* facts
// to exported objects (an unexported object is not in the importer's
// view of the package anyway); within a package, facts on unexported
// objects work normally.

package wedgevet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"os"
	"reflect"
)

// RegisterFact records a fact's concrete type for gob. Every Fact type
// must be registered from an init function of the analyzer declaring it.
func RegisterFact(f Fact) { gob.Register(f) }

type factKey struct {
	analyzer string
	pkg      string
	obj      string
}

type factStore struct {
	m map[factKey][]Fact
}

func newFactStore() *factStore {
	return &factStore{m: make(map[factKey][]Fact)}
}

func (s *factStore) export(analyzer string, obj types.Object, fact Fact) {
	key := factKey{analyzer, obj.Pkg().Path(), obj.Name()}
	// Replace an existing fact of the same concrete type: re-running an
	// analyzer over fresher syntax supersedes, never duplicates.
	for i, f := range s.m[key] {
		if reflect.TypeOf(f) == reflect.TypeOf(fact) {
			s.m[key][i] = fact
			return
		}
	}
	s.m[key] = append(s.m[key], fact)
}

func (s *factStore) lookup(analyzer string, obj types.Object, ptr Fact) bool {
	if obj.Pkg() == nil {
		return false
	}
	key := factKey{analyzer, obj.Pkg().Path(), obj.Name()}
	want := reflect.TypeOf(ptr)
	for _, f := range s.m[key] {
		if reflect.TypeOf(f) == want {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

func (s *factStore) all(analyzer string, _ *types.Package) []ObjFact {
	var out []ObjFact
	for key, facts := range s.m {
		if key.analyzer != analyzer {
			continue
		}
		for _, f := range facts {
			out = append(out, ObjFact{Pkg: key.pkg, Name: key.obj, Fact: f})
		}
	}
	return out
}

// wireFact is the gob-serialized form of one stored fact.
type wireFact struct {
	Analyzer string
	Pkg      string
	Obj      string
	Fact     Fact
}

// encode serializes the store's entire contents (the transitive fact
// closure this pass saw).
func (s *factStore) encode() ([]byte, error) {
	var facts []wireFact
	for key, fs := range s.m {
		for _, f := range fs {
			facts = append(facts, wireFact{Analyzer: key.analyzer, Pkg: key.pkg, Obj: key.obj, Fact: f})
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(facts); err != nil {
		return nil, fmt.Errorf("wedgevet: encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// merge decodes a wire-format fact file into the store. Unknown gob
// types mean the vetx file was produced by a different wedgevet build;
// the driver treats that as corrupt (the go tool's cache keys on the
// tool's build ID, so it should not happen in practice).
func (s *factStore) merge(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var facts []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&facts); err != nil {
		return fmt.Errorf("wedgevet: decoding facts: %w", err)
	}
	for _, wf := range facts {
		key := factKey{wf.Analyzer, wf.Pkg, wf.Obj}
		dup := false
		for _, f := range s.m[key] {
			if reflect.TypeOf(f) == reflect.TypeOf(wf.Fact) {
				dup = true
				break
			}
		}
		if !dup {
			s.m[key] = append(s.m[key], wf.Fact)
		}
	}
	return nil
}

// mergeFile merges the facts serialized in path; a missing or empty
// file contributes nothing (a dependency with no facts still writes an
// empty vetx).
func (s *factStore) mergeFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	return s.merge(data)
}
