// gatecapture: closures handed to compartment creation must not couple
// to monitor state that changes after the handoff.
//
// A compartment entry (an sthread body, a callgate entry, a recycled
// worker function) starts running concurrently with the monitor the
// moment the creation call returns — and in the wedge simulation it is
// still a Go closure, so anything it captures is reachable from inside
// the compartment regardless of what the memory policy says. Three
// capture classes have bitten or would bite:
//
//   - loop variables: the closure's view of the iteration couples the
//     compartment to the monitor's loop progress (the shape of the PR 1
//     seed races);
//   - variables the monitor writes after the handoff — including the
//     creation call's own result (the exact PR 1 sshd bug: the worker
//     gate captured the `worker` handle variable that CreateNamed was
//     in the middle of assigning); the fix's shape, a once-blocking
//     accessor (sync.OnceValue), is what the analyzer accepts;
//   - privileged monitor state: a captured *rsa.PrivateKey bypasses the
//     entire isolation model — key material reaches a gate through its
//     kernel-held trusted address, never through the Go heap.

package wedgevet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GateCaptureAnalyzer is the gatecapture suite entry.
var GateCaptureAnalyzer = &Analyzer{
	Name: "gatecapture",
	Doc: "closures handed to sthread/gate/recycled-worker creation must not capture" +
		" loop variables, variables written after the handoff, or private keys",
	Run: runGateCapture,
}

// creationMethods maps compartment-creation call names to the index of
// their closure argument. Receiver types distinguish overlaps.
var creationMethods = map[string]int{
	"Create":         1, // (*sthread.Sthread).Create(sc, body, arg)
	"CreateNamed":    2, // (name, sc, body, arg)
	"CreateEmulated": 2,
	"NewRecycled":    2, // (name, gateSC, fn, trusted)
	"GateAdd":        0, // (*policy.SC).GateAdd(entry, gateSC, arg, name)
}

func runGateCapture(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		assigns := collectAssignments(pass, file)
		loops := collectLoopVars(pass, file)
		walkWithStack(file, func(n ast.Node, stack []ast.Node) {
			if lit, label, callEnd := captureSinkAt(pass, n); lit != nil {
				checkCapture(pass, lit, label, callEnd, stack, assigns, loops)
			}
		})
	}
	return nil
}

// captureSinkAt recognizes a compartment-creation site at n and returns
// the handed-off function literal (nil when the handed value is not a
// literal — method values and named funcs carry no ad-hoc captures), a
// diagnostic label for the creation API, and the position after which a
// monitor write races the compartment.
func captureSinkAt(pass *Pass, n ast.Node) (*ast.FuncLit, string, token.Pos) {
	switch n := n.(type) {
	case *ast.CallExpr:
		sel, ok := n.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil, "", 0
		}
		idx, ok := creationMethods[sel.Sel.Name]
		if !ok || idx >= len(n.Args) {
			return nil, "", 0
		}
		recv := pass.TypesInfo.Selections[sel]
		if recv == nil {
			return nil, "", 0
		}
		if sel.Sel.Name == "GateAdd" {
			if !isPolicySC(recv.Recv()) {
				return nil, "", 0
			}
		} else if !isSthreadPtr(recv.Recv()) {
			return nil, "", 0
		}
		return unwrapFuncLit(pass, n.Args[idx]), sel.Sel.Name, n.End()
	case *ast.CompositeLit:
		// policy.GateSpec{Entry: …} / gatepool.GateDef{Entry: …}
		tv, ok := pass.TypesInfo.Types[n]
		if !ok || !isEntryStruct(tv.Type) {
			return nil, "", 0
		}
		for _, elt := range n.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Entry" {
				return unwrapFuncLit(pass, kv.Value), structName(tv.Type), n.End()
			}
		}
	}
	return nil, "", 0
}

// unwrapFuncLit digs a function literal out of type conversions like
// sthread.GateFunc(func(…){…}).
func unwrapFuncLit(pass *Pass, e ast.Expr) *ast.FuncLit {
	for {
		switch v := e.(type) {
		case *ast.FuncLit:
			return v
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			if len(v.Args) == 1 && pass.TypesInfo.Types[v.Fun].IsType() {
				e = v.Args[0]
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

// checkCapture inspects one handed-off closure's free variables.
func checkCapture(pass *Pass, lit *ast.FuncLit, label string, callEnd token.Pos,
	stack []ast.Node, assigns map[*types.Var][]token.Pos, loops map[*types.Var]ast.Node) {

	reported := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || reported[v] || !isCaptured(pass, v, lit) {
			return true
		}
		switch {
		case loops[v] != nil:
			reported[v] = true
			pass.Reportf(id.Pos(), "closure handed to %s captures loop variable %s; the compartment outlives the iteration", label, v.Name())
		case isPrivateKey(v.Type()):
			reported[v] = true
			pass.Reportf(id.Pos(), "closure handed to %s captures private key %s; key material reaches a gate only through its kernel-held trusted address", label, v.Name())
		case writtenAfterHandoff(v, callEnd, stack, assigns):
			reported[v] = true
			pass.Reportf(id.Pos(), "closure handed to %s captures %s, which the monitor writes after the handoff (closure-handoff race)", label, v.Name())
		}
		return true
	})
}

// isCaptured reports whether v is a free variable of lit: a function
// local (not package-level, not a field) declared outside the literal.
func isCaptured(pass *Pass, v *types.Var, lit *ast.FuncLit) bool {
	if v.IsField() || v.Pkg() != pass.Pkg {
		return false
	}
	if pass.Pkg.Scope().Lookup(v.Name()) == v {
		return false // package-level
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

// writtenAfterHandoff reports whether v is assigned at a point that can
// execute after the creation call returns: textually after the call,
// by the statement containing the call itself (binding the call's own
// result), or anywhere inside a loop that also contains the call (the
// next iteration's write races the running compartment).
func writtenAfterHandoff(v *types.Var, callEnd token.Pos, stack []ast.Node, assigns map[*types.Var][]token.Pos) bool {
	var loop ast.Node
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loop = n
		}
	}
	for _, pos := range assigns[v] {
		if pos > callEnd {
			return true
		}
		if loop != nil && pos > loop.Pos() && pos < loop.End() && v.Pos() < loop.Pos() {
			return true
		}
		// The statement containing the creation call assigns v (the
		// PR 1 shape: worker, err := CreateNamed(..., closure, ...)).
		if containingStmt(stack, callEnd, pos) {
			return true
		}
	}
	return false
}

// containingStmt reports whether the assignment at pos is a left-hand
// side of the innermost assignment statement enclosing the creation
// call — the statement binding the call's own result, so the write
// lands after the compartment is already running.
func containingStmt(stack []ast.Node, callEnd token.Pos, assignPos token.Pos) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if as, ok := stack[i].(*ast.AssignStmt); ok {
			return assignPos >= as.Pos() && assignPos < as.TokPos
		}
	}
	return false
}

// collectAssignments maps each local variable to the positions of its
// writes (assignments, incdec, and range rebinds; the declaration
// itself does not count as a racing write).
func collectAssignments(pass *Pass, file *ast.File) map[*types.Var][]token.Pos {
	out := make(map[*types.Var][]token.Pos)
	record := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok {
			out[v] = append(out[v], id.Pos())
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				record(n.Key)
				record(n.Value)
			}
		}
		return true
	})
	return out
}

// collectLoopVars maps variables declared by for/range statements to
// their loop node.
func collectLoopVars(pass *Pass, file *ast.File) map[*types.Var]ast.Node {
	out := make(map[*types.Var]ast.Node)
	def := func(e ast.Expr, loop ast.Node) {
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				out[v] = loop
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				def(n.Key, n)
				def(n.Value, n)
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					def(lhs, n)
				}
			}
		}
		return true
	})
	return out
}

// walkWithStack traverses file keeping the ancestor chain.
func walkWithStack(file *ast.File, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// ---- type tests -------------------------------------------------------------

// isPolicySC reports whether t is *policy.SC.
func isPolicySC(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "SC" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/policy")
}

// isEntryStruct reports whether t is policy.GateSpec or gatepool.GateDef.
func isEntryStruct(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return (obj.Name() == "GateSpec" && strings.HasSuffix(path, "internal/policy")) ||
		(obj.Name() == "GateDef" && strings.HasSuffix(path, "internal/gatepool"))
}

func structName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// isPrivateKey reports whether t is rsa.PrivateKey or *rsa.PrivateKey.
func isPrivateKey(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "PrivateKey" && obj.Pkg() != nil && obj.Pkg().Path() == "crypto/rsa"
}
