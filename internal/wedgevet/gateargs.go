// gateargs: argument-block I/O in application code goes through gateabi
// field handles, nothing else.
//
// The typed gate ABI (PR 5) deleted every hand-written offset constant
// and every raw Load64/Store64 on a gate argument block; the only guard
// against their return was a CI regex grep over identifier names. This
// analyzer enforces the invariant with the AST and type precision the
// grep cannot have:
//
//   - it knows which addresses are argument blocks (the arg parameter
//     of a gate- or body-shaped function, and anything derived from it
//     by local assignment), so raw sthread memory calls on trusted
//     blob addresses stay legal while the same call on an arg block is
//     flagged;
//   - it flags offset arithmetic on an arg-block address itself, not
//     just the constant names the old grep knew about;
//   - the resurrected-constant check matches declared integer constants
//     and variables, not comments, strings, or unrelated identifiers.

package wedgevet

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GateArgsPackages is the set of audited application packages, keyed by
// import path. Tests extend it to cover golden packages.
var GateArgsPackages = map[string]bool{
	"wedge/internal/httpd":   true,
	"wedge/internal/sshd":    true,
	"wedge/internal/pop3":    true,
	"wedge/internal/dnsd":    true,
	"wedge/internal/minissl": true,
}

// rawMemMethods are the (*sthread.Sthread) accessors that bypass the
// gateabi codecs.
var rawMemMethods = map[string]bool{
	"Read": true, "Write": true, "TryRead": true, "TryWrite": true,
	"Load64": true, "Store64": true, "Zero": true,
	"ReadString": true, "WriteString": true,
}

// offsetConstName matches the retired offset-constant families the old
// CI grep guarded against (PR 5 deleted them; nothing may redeclare
// them). The alternation is the grep's, verbatim.
var offsetConstName = regexp.MustCompile(`^(sshArg(Op|StrLen|Str|SigLen|Sig|PwFound|PwUID|PwHome|AuthOK|ChalN|ConnID|PoolFD|Size)|p3(Op|StrLen|Str|MsgNum|OutLen|Out|OutMax|ConnID|PoolFD|Size)|arg(Op|ConnID|ClientRandom|SessionIDLen|SessionID|ServerRandom|Resumed|Master|Keys|DataLen|Data|SessionIDOut|PoolFD|Size))$`)

// GateArgsAnalyzer is the gateargs suite entry.
var GateArgsAnalyzer = &Analyzer{
	Name: "gateargs",
	Doc: "argument-block I/O in application code must go through gateabi field handles;" +
		" raw sthread memory calls on arg-block addresses, offset arithmetic on them," +
		" and resurrected offset-constant names are violations",
	Run: runGateArgs,
}

func runGateArgs(pass *Pass) error {
	if !GateArgsPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			// The runtime tests deliberately poke blocks raw — they
			// simulate exploited workers; the invariant binds servers.
			continue
		}
		checkOffsetConstants(pass, file)
		forEachFunc(file, func(fn funcNode) {
			checkGateArgsFunc(pass, fn)
		})
	}
	return nil
}

// isTestFile reports whether file is a _test.go file.
func isTestFile(pass *Pass, file *ast.File) bool {
	name := pass.Fset.Position(file.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}

// checkOffsetConstants flags const/var declarations of integer kind
// whose names match the retired offset families.
func checkOffsetConstants(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for _, id := range spec.Names {
			if !offsetConstName.MatchString(id.Name) {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil || !isIntegerish(obj.Type()) {
				continue
			}
			pass.Reportf(id.Pos(), "resurrected argument-block offset constant %s; the gateabi schema owns the block layout", id.Name)
		}
		return true
	})
}

func isIntegerish(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&(types.IsInteger|types.IsUntyped) != 0
}

// checkGateArgsFunc runs the arg-block taint scan over one function
// (declaration or literal) in an audited package.
func checkGateArgsFunc(pass *Pass, fn funcNode) {
	tainted := argBlockParams(pass, fn)
	if len(tainted) == 0 {
		return
	}
	// Nested closures are scanned too: a closure capturing the outer
	// arg address must obey the same rule (it is scanned again as its
	// own funcNode for its own parameters; the taint sets differ, so
	// nothing double-reports).
	propagateTaint(pass, fn, tainted)

	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if !arithOp(n.Op) {
				return true
			}
			if mentionsTainted(pass, n.X, tainted) || mentionsTainted(pass, n.Y, tainted) {
				if tv, ok := pass.TypesInfo.Types[n]; ok && isVMAddr(tv.Type) {
					pass.Reportf(n.Pos(), "offset arithmetic on an argument-block address; the block layout belongs to the gateabi schema's field handles")
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !rawMemMethods[sel.Sel.Name] {
				return true
			}
			recv := pass.TypesInfo.Selections[sel]
			if recv == nil || !isSthreadPtr(recv.Recv()) {
				return true
			}
			if len(n.Args) > 0 && mentionsTainted(pass, n.Args[0], tainted) {
				pass.Reportf(n.Pos(), "raw %s on an argument-block address bypasses the gateabi field handles", sel.Sel.Name)
			}
		}
		return true
	})
}

// propagateTaint grows the tainted set through simple local
// assignments (`x := <tainted expr>` where x is a vm.Addr), to a
// fixpoint. Two rounds suffice for straight-line aliasing; the bound
// keeps pathological code from spinning.
func propagateTaint(pass *Pass, fn funcNode, tainted map[*types.Var]bool) {
	for range 4 {
		grew := false
		ast.Inspect(fn.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !mentionsTainted(pass, rhs, tainted) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if v, ok := obj.(*types.Var); ok && isVMAddr(v.Type()) && !tainted[v] {
						tainted[v] = true
						grew = true
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
}

func arithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
		return true
	}
	return false
}

// funcNode is one function body with its declaring node (FuncDecl or
// FuncLit) and signature parameters.
type funcNode struct {
	node   ast.Node
	ftype  *ast.FuncType
	body   *ast.BlockStmt
	isDecl bool
}

// forEachFunc visits every function declaration and literal in file.
func forEachFunc(file *ast.File, visit func(funcNode)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(funcNode{node: n, ftype: n.Type, body: n.Body, isDecl: true})
			}
		case *ast.FuncLit:
			visit(funcNode{node: n, ftype: n.Type, body: n.Body})
		}
		return true
	})
}

// argBlockParams returns the function's parameters that hold an
// argument-block base address: the second parameter of an exact
// gate-shaped signature (GateFunc: (s, arg, trusted) -> ret, all
// addresses), or any vm.Addr parameter named "arg" (worker-body helpers
// pass the block base on under that name). Address parameters under
// other names — trusted blob bases, session regions, scratch cells —
// stay untainted; that is the precision the old grep could not have.
func argBlockParams(pass *Pass, fn funcNode) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	params := flatParams(pass, fn.ftype)
	gateShaped := len(params) == 3 &&
		isSthreadPtr(params[0].Type()) &&
		isVMAddr(params[1].Type()) &&
		isVMAddr(params[2].Type()) &&
		singleAddrResult(pass, fn.ftype)
	for i, p := range params {
		if !isVMAddr(p.Type()) {
			continue
		}
		if p.Name() == "arg" || (gateShaped && i == 1) {
			out[p] = true
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// singleAddrResult reports whether the function returns exactly one
// vm.Addr.
func singleAddrResult(pass *Pass, ftype *ast.FuncType) bool {
	if ftype.Results == nil || len(ftype.Results.List) != 1 {
		return false
	}
	res := ftype.Results.List[0]
	if len(res.Names) > 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[res.Type]
	return ok && isVMAddr(tv.Type)
}

// flatParams resolves the declared parameter objects in order.
func flatParams(pass *Pass, ftype *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// mentionsTainted reports whether expr references any tainted variable.
func mentionsTainted(pass *Pass, expr ast.Expr, tainted map[*types.Var]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && tainted[v] {
				found = true
			}
		}
		return true
	})
	return found
}

// ---- shared type tests ------------------------------------------------------

// isVMAddr reports whether t is wedge's vm.Addr.
func isVMAddr(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Addr" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/vm")
}

// isSthreadPtr reports whether t is *sthread.Sthread.
func isSthreadPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Sthread" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/sthread")
}
