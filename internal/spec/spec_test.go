package spec

import (
	"testing"

	"wedge/internal/crowbar"
	"wedge/internal/pin"
)

// TestDeterministicAcrossModes: each workload must compute the identical
// checksum in all three instrumentation modes — instrumentation observes,
// it must never perturb.
func TestDeterministicAcrossModes(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name(), func(t *testing.T) {
			var sums [3]uint64
			for i, mode := range []pin.Mode{pin.ModeNative, pin.ModePin, pin.ModeCBLog} {
				p, err := pin.NewProc(mode)
				if err != nil {
					t.Fatal(err)
				}
				if mode == pin.ModeCBLog {
					p.Attach(crowbar.NewLogger())
				}
				sum, err := w.Run(p)
				if err != nil {
					t.Fatalf("%s under %s: %v", w.Name(), mode, err)
				}
				sums[i] = sum
			}
			if sums[0] != sums[1] || sums[1] != sums[2] {
				t.Fatalf("checksums diverge across modes: %v", sums)
			}
			if sums[0] == 0 {
				t.Fatalf("%s computed a zero checksum; workload is degenerate", w.Name())
			}
		})
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("mcf")
	if err != nil || w.Name() != "mcf" {
		t.Fatalf("ByName(mcf) = %v, %v", w, err)
	}
	if _, err := ByName("gcc"); err == nil {
		t.Fatal("unknown workload found")
	}
}

func TestAllNamesMatchPaper(t *testing.T) {
	want := []string{"ssh", "mcf", "gobmk", "apache", "quantum", "hmmer", "sjeng", "bzip2", "h264ref"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("workload count = %d", len(all))
	}
	for i, w := range all {
		if w.Name() != want[i] {
			t.Fatalf("workload %d = %q, want %q", i, w.Name(), want[i])
		}
	}
}

// TestAccessDensityOrdering: the mechanism behind Figure 9's ratios. The
// per-call memory-access density must be lowest for ssh and highest for
// h264ref, with the other workloads in between.
func TestAccessDensityOrdering(t *testing.T) {
	density := func(w Workload) float64 {
		p, _ := pin.NewProc(pin.ModeNative)
		if _, err := w.Run(p); err != nil {
			t.Fatal(err)
		}
		if p.Calls == 0 {
			t.Fatalf("%s made no calls", w.Name())
		}
		return float64(p.Loads+p.Stores) / float64(p.Calls)
	}
	ssh, _ := ByName("ssh")
	h264, _ := ByName("h264ref")
	dSSH, dH264 := density(ssh), density(h264)
	if dSSH >= dH264 {
		t.Fatalf("ssh density %.1f !< h264ref density %.1f", dSSH, dH264)
	}
	// And h264ref must be the global maximum.
	for _, w := range All() {
		if w.Name() == "h264ref" {
			continue
		}
		if d := density(w); d >= dH264 {
			t.Fatalf("%s density %.1f >= h264ref %.1f; Figure 9 shape broken", w.Name(), d, dH264)
		}
	}
}

// TestCrowbarTraceNonTrivial: under cb-log every workload yields a
// queryable trace with multiple distinct items.
func TestCrowbarTraceNonTrivial(t *testing.T) {
	for _, w := range All() {
		p, _ := pin.NewProc(pin.ModeCBLog)
		l := crowbar.NewLogger()
		p.Attach(l)
		if _, err := w.Run(p); err != nil {
			t.Fatal(err)
		}
		if l.Trace().Len() == 0 {
			t.Fatalf("%s produced an empty trace", w.Name())
		}
		if len(l.Trace().Items()) < 2 {
			t.Fatalf("%s touched fewer than 2 items", w.Name())
		}
	}
}

// TestExtendedWorkloads: the omitted SPEC programs (perlbench, gcc) run in
// all three modes with identical checksums, like the Figure 9 nine.
func TestExtendedWorkloads(t *testing.T) {
	if len(Extended()) != len(All())+2 {
		t.Fatalf("Extended has %d workloads", len(Extended()))
	}
	for _, name := range []string{"perlbench", "gcc"} {
		w, err := ByNameExtended(name)
		if err != nil {
			t.Fatal(err)
		}
		var sums []uint64
		for _, mode := range []pin.Mode{pin.ModeNative, pin.ModePin, pin.ModeCBLog} {
			p, err := pin.NewProc(mode)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := w.Run(p)
			if err != nil {
				t.Fatalf("%s under %v: %v", name, mode, err)
			}
			if p.Loads == 0 || p.Stores == 0 {
				t.Fatalf("%s under %v: no memory traffic", name, mode)
			}
			sums = append(sums, sum)
		}
		if sums[0] != sums[1] || sums[1] != sums[2] {
			t.Fatalf("%s checksums diverge across modes: %v", name, sums)
		}
	}
	// The figure list must stay the paper's nine.
	if _, err := ByName("perlbench"); err == nil {
		t.Fatal("perlbench leaked into the Figure 9 set")
	}
	if _, err := ByNameExtended("nonesuch"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
