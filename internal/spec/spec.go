// Package spec provides the nine instrumentable workloads behind Figure 9:
// miniature versions of the C-language SPECint2006 programs the paper
// traces under cb-log (mcf, gobmk, libquantum, hmmer, sjeng, bzip2,
// h264ref), plus protocol-skeleton stand-ins for OpenSSH and Apache.
//
// Each workload follows the algorithmic skeleton of its namesake and runs
// entirely against a pin.Proc, so the same program can execute natively,
// under the translation engine (Pin), or under full access logging
// (cb-log). What Figure 9 needs from these programs is not their absolute
// speed but their *shape*: tight kernels that re-execute the same basic
// blocks with dense memory traffic (h264ref, bzip2) sit at one end, and
// call-diverse, access-sparse protocol code (ssh) at the other. The ratio
// between cb-log and Pin run times emerges mechanically from that shape.
package spec

import (
	"fmt"

	"wedge/internal/pin"
	"wedge/internal/vm"
)

// Workload is one Figure 9 program.
type Workload interface {
	// Name matches the paper's x-axis label.
	Name() string
	// Run executes the workload against the instrumented process and
	// returns a checksum (so results can be asserted identical across
	// instrumentation modes).
	Run(p *pin.Proc) (uint64, error)
}

// All returns the nine workloads in the paper's presentation order.
func All() []Workload {
	return []Workload{
		SSH{}, MCF{}, Gobmk{}, Apache{}, Quantum{}, Hmmer{}, Sjeng{}, Bzip2{}, H264Ref{},
	}
}

// ByName finds a workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("spec: unknown workload %q", name)
}

// lcg is the deterministic random source workloads share; it lives in
// simulated memory so its state updates are themselves memory traffic,
// as rand() calls are in the originals.
func lcgNext(p *pin.Proc, cell vm.Addr) uint64 {
	v := p.Load64(cell)
	v = v*6364136223846793005 + 1442695040888963407
	p.Store64(cell, v)
	return v
}

// ---- mcf: successive-shortest-path min-cost flow --------------------------------

// MCF mimics 429.mcf: repeated Bellman-Ford-style relaxation over an
// adjacency structure with pointer-chasing access patterns.
type MCF struct{}

// Name implements Workload.
func (MCF) Name() string { return "mcf" }

// Run implements Workload.
func (MCF) Run(p *pin.Proc) (uint64, error) {
	const nodes = 96
	const arcsPerNode = 4
	var sum uint64
	p.Call("mcf_main", "mcf.c", 10, func() {
		// dist[] and arc tables as globals, like mcf's network struct.
		dist, err := p.DeclareGlobal("dist", nodes*8)
		if err != nil {
			return
		}
		arcs, err := p.DeclareGlobal("arcs", nodes*arcsPerNode*16)
		if err != nil {
			return
		}
		rng, _ := p.DeclareGlobal("rng_state", 8)
		p.Store64(rng, 42)

		p.Call("build_network", "mcf.c", 40, func() {
			for i := 0; i < nodes; i++ {
				p.Store64(dist+vm.Addr(i*8), 1<<40)
				for a := 0; a < arcsPerNode; a++ {
					off := vm.Addr((i*arcsPerNode + a) * 16)
					to := lcgNext(p, rng) % nodes
					cost := lcgNext(p, rng)%100 + 1
					p.Store64(arcs+off, to)
					p.Store64(arcs+off+8, cost)
				}
			}
			p.Store64(dist, 0)
		})

		p.Call("price_out_impl", "implicit.c", 120, func() {
			for round := 0; round < nodes; round++ {
				changed := false
				for i := 0; i < nodes; i++ {
					di := p.Load64(dist + vm.Addr(i*8))
					if di >= 1<<40 {
						continue
					}
					for a := 0; a < arcsPerNode; a++ {
						off := vm.Addr((i*arcsPerNode + a) * 16)
						to := p.Load64(arcs + off)
						cost := p.Load64(arcs + off + 8)
						if di+cost < p.Load64(dist+vm.Addr(to*8)) {
							p.Store64(dist+vm.Addr(to*8), di+cost)
							changed = true
						}
					}
				}
				if !changed {
					break
				}
			}
		})

		p.Call("checksum", "mcf.c", 200, func() {
			for i := 0; i < nodes; i++ {
				sum += p.Load64(dist + vm.Addr(i*8))
			}
		})
	})
	return sum, nil
}

// ---- gobmk: Monte-Carlo playouts on a small board ---------------------------------

// Gobmk mimics 445.gobmk: board-state updates driven by pattern lookups,
// with moderate block reuse.
type Gobmk struct{}

// Name implements Workload.
func (Gobmk) Name() string { return "gobmk" }

// Run implements Workload.
func (Gobmk) Run(p *pin.Proc) (uint64, error) {
	const size = 9
	const playouts = 60
	var sum uint64
	p.Call("gobmk_main", "gobmk.c", 10, func() {
		board, err := p.DeclareGlobal("board", size*size)
		if err != nil {
			return
		}
		rng, _ := p.DeclareGlobal("rng_state", 8)
		p.Store64(rng, 7)

		for g := 0; g < playouts; g++ {
			p.Call("play_game", "play.c", 55, func() {
				// Clear board.
				for i := 0; i < size*size; i++ {
					p.Store8(board+vm.Addr(i), 0)
				}
				color := byte(1)
				for mv := 0; mv < size*size/2; mv++ {
					p.Call("genmove", "genmove.c", 80, func() {
						pos := lcgNext(p, rng) % (size * size)
						if p.Load8(board+vm.Addr(pos)) == 0 {
							p.Store8(board+vm.Addr(pos), color)
						}
					})
					color = 3 - color
				}
				p.Call("count_territory", "score.c", 30, func() {
					for i := 0; i < size*size; i++ {
						sum += uint64(p.Load8(board + vm.Addr(i)))
					}
				})
			})
		}
	})
	return sum, nil
}

// ---- libquantum: gate simulation over a state vector --------------------------------

// Quantum mimics 462.libquantum: long passes over a quantum register's
// amplitude array applying Hadamard-like and CNOT-like transforms in
// fixed-point arithmetic.
type Quantum struct{}

// Name implements Workload.
func (Quantum) Name() string { return "quantum" }

// Run implements Workload.
func (Quantum) Run(p *pin.Proc) (uint64, error) {
	const qubits = 11
	const n = 1 << qubits
	var sum uint64
	p.Call("quantum_main", "libquantum.c", 10, func() {
		amps, err := p.DeclareGlobal("amplitudes", n*8)
		if err != nil {
			return
		}
		gateCount, _ := p.DeclareGlobal("gate_count", 8)
		p.Call("quantum_new_qureg", "qureg.c", 25, func() {
			p.Store64(amps, 1<<16) // |0..0> with unit fixed-point amplitude
			for i := 1; i < n; i++ {
				p.Store64(amps+vm.Addr(i*8), 0)
			}
		})
		for q := 0; q < qubits; q++ {
			p.Call("quantum_hadamard", "gates.c", 90, func() {
				p.Store64(gateCount, p.Load64(gateCount)+1)
				stride := 1 << q
				for i := 0; i < n; i += 2 * stride {
					for j := 0; j < stride; j++ {
						a := p.Load64(amps + vm.Addr((i+j)*8))
						b := p.Load64(amps + vm.Addr((i+j+stride)*8))
						// (a+b)/sqrt2, (a-b)/sqrt2 in Q16: *46341>>16.
						na := (a + b) * 46341 >> 16
						nb := (a - b) * 46341 >> 16
						p.Store64(amps+vm.Addr((i+j)*8), na)
						p.Store64(amps+vm.Addr((i+j+stride)*8), nb)
					}
				}
			})
		}
		p.Call("quantum_measure", "measure.c", 40, func() {
			for i := 0; i < n; i++ {
				sum += p.Load64(amps + vm.Addr(i*8))
			}
		})
	})
	return sum, nil
}

// ---- hmmer: profile HMM Viterbi --------------------------------------------------------

// Hmmer mimics 456.hmmer: the P7Viterbi dynamic-programming kernel, a
// dense doubly-indexed table walk.
type Hmmer struct{}

// Name implements Workload.
func (Hmmer) Name() string { return "hmmer" }

// Run implements Workload.
func (Hmmer) Run(p *pin.Proc) (uint64, error) {
	const states = 32
	const seqLen = 64
	var sum uint64
	p.Call("hmmer_main", "hmmer.c", 10, func() {
		trans, err := p.DeclareGlobal("transitions", states*states*4)
		if err != nil {
			return
		}
		emit, _ := p.DeclareGlobal("emissions", states*4*4)
		dp, _ := p.DeclareGlobal("dp_matrix", 2*states*4)
		rng, _ := p.DeclareGlobal("rng_state", 8)
		p.Store64(rng, 1234)

		p.Call("build_profile", "profile.c", 33, func() {
			for i := 0; i < states*states; i++ {
				p.Store32(trans+vm.Addr(i*4), uint32(lcgNext(p, rng)%64))
			}
			for i := 0; i < states*4; i++ {
				p.Store32(emit+vm.Addr(i*4), uint32(lcgNext(p, rng)%64))
			}
		})

		p.Call("P7Viterbi", "fast_algorithms.c", 140, func() {
			for i := 0; i < states; i++ {
				p.Store32(dp+vm.Addr(i*4), 0)
			}
			for t := 1; t <= seqLen; t++ {
				sym := lcgNext(p, rng) % 4
				cur := (t % 2) * states
				prev := ((t + 1) % 2) * states
				for j := 0; j < states; j++ {
					best := uint32(0)
					for i := 0; i < states; i++ {
						score := p.Load32(dp+vm.Addr((prev+i)*4)) +
							p.Load32(trans+vm.Addr((i*states+j)*4))
						if score > best {
							best = score
						}
					}
					best += p.Load32(emit + vm.Addr((j*4+int(sym))*4))
					p.Store32(dp+vm.Addr((cur+j)*4), best)
				}
			}
			for j := 0; j < states; j++ {
				sum += uint64(p.Load32(dp + vm.Addr(((seqLen%2)*states+j)*4)))
			}
		})
	})
	return sum, nil
}

// ---- sjeng: alpha-beta game-tree search ---------------------------------------------------

// Sjeng mimics 458.sjeng: recursive alpha-beta with an evaluation loop
// over a board array; deep call stacks with moderate memory traffic.
type Sjeng struct{}

// Name implements Workload.
func (Sjeng) Name() string { return "sjeng" }

// Run implements Workload.
func (Sjeng) Run(p *pin.Proc) (uint64, error) {
	const cells = 64
	var sum uint64
	p.Call("sjeng_main", "sjeng.c", 10, func() {
		board, err := p.DeclareGlobal("board", cells*4)
		if err != nil {
			return
		}
		rng, _ := p.DeclareGlobal("rng_state", 8)
		p.Store64(rng, 99)
		for i := 0; i < cells; i++ {
			p.Store32(board+vm.Addr(i*4), uint32(lcgNext(p, rng)%16))
		}

		var search func(depth int, negate bool) uint64
		search = func(depth int, negate bool) uint64 {
			var best uint64
			p.Call("search", "search.c", 77, func() {
				if depth == 0 {
					p.Call("std_eval", "eval.c", 120, func() {
						// Material, mobility, king safety, pawn structure,
						// and piece-square passes: the evaluation reads the
						// board many times per leaf, as sjeng's does.
						for pass := 0; pass < 8; pass++ {
							for i := 0; i < cells; i++ {
								best += uint64(p.Load32(board+vm.Addr(i*4))) >> uint(pass)
							}
						}
					})
					return
				}
				for mv := 0; mv < 3; mv++ {
					cell := lcgNext(p, rng) % cells
					old := p.Load32(board + vm.Addr(cell*4))
					p.Store32(board+vm.Addr(cell*4), old+1)
					score := search(depth-1, !negate)
					if negate {
						score = ^score
					}
					if score > best {
						best = score
					}
					p.Store32(board+vm.Addr(cell*4), old)
				}
			})
			return best
		}
		sum = search(4, false)
	})
	return sum, nil
}

// ---- bzip2: BWT blocks --------------------------------------------------------------------

// Bzip2 mimics 401.bzip2: block-sorting compression — rotation sorting
// followed by move-to-front and run-length passes, all byte-granular.
type Bzip2 struct{}

// Name implements Workload.
func (Bzip2) Name() string { return "bzip2" }

// Run implements Workload.
func (Bzip2) Run(p *pin.Proc) (uint64, error) {
	const block = 160
	var sum uint64
	p.Call("bzip2_main", "bzip2.c", 10, func() {
		data, err := p.DeclareGlobal("block", block)
		if err != nil {
			return
		}
		idx, _ := p.DeclareGlobal("rot_index", block*4)
		mtf, _ := p.DeclareGlobal("mtf_table", 256)
		rng, _ := p.DeclareGlobal("rng_state", 8)
		p.Store64(rng, 5)

		p.Call("fill_block", "blocksort.c", 20, func() {
			for i := 0; i < block; i++ {
				p.Store8(data+vm.Addr(i), byte(lcgNext(p, rng)%8+'a'))
			}
		})

		p.Call("block_sort", "blocksort.c", 90, func() {
			for i := 0; i < block; i++ {
				p.Store32(idx+vm.Addr(i*4), uint32(i))
			}
			// Insertion sort of rotations compared byte-by-byte.
			for i := 1; i < block; i++ {
				for j := i; j > 0; j-- {
					a := p.Load32(idx + vm.Addr(j*4))
					b := p.Load32(idx + vm.Addr((j-1)*4))
					less := false
					for k := 0; k < 16; k++ {
						ca := p.Load8(data + vm.Addr((int(a)+k)%block))
						cb := p.Load8(data + vm.Addr((int(b)+k)%block))
						if ca != cb {
							less = ca < cb
							break
						}
					}
					if !less {
						break
					}
					p.Store32(idx+vm.Addr(j*4), b)
					p.Store32(idx+vm.Addr((j-1)*4), a)
				}
			}
		})

		p.Call("mtf_and_rle", "compress.c", 60, func() {
			for i := 0; i < 256; i++ {
				p.Store8(mtf+vm.Addr(i), byte(i))
			}
			for i := 0; i < block; i++ {
				rot := p.Load32(idx + vm.Addr(i*4))
				last := p.Load8(data + vm.Addr((int(rot)+block-1)%block))
				// Find and front-move.
				for j := 0; j < 256; j++ {
					if p.Load8(mtf+vm.Addr(j)) == last {
						for k := j; k > 0; k-- {
							p.Store8(mtf+vm.Addr(k), p.Load8(mtf+vm.Addr(k-1)))
						}
						p.Store8(mtf, last)
						sum += uint64(j)
						break
					}
				}
			}
		})
	})
	return sum, nil
}

// ---- h264ref: SAD motion search --------------------------------------------------------------

// H264Ref mimics 464.h264ref's motion estimation: for each macroblock,
// exhaustive sum-of-absolute-differences over a search window — the
// densest memory traffic per function call of the set, which is why it
// tops the paper's slowdown ratios (90x).
type H264Ref struct{}

// Name implements Workload.
func (H264Ref) Name() string { return "h264ref" }

// Run implements Workload.
func (H264Ref) Run(p *pin.Proc) (uint64, error) {
	const w, h = 64, 48
	const mb = 8     // macroblock
	const window = 4 // search radius
	var sum uint64
	p.Call("h264_main", "lencod.c", 10, func() {
		ref, err := p.DeclareGlobal("ref_frame", w*h)
		if err != nil {
			return
		}
		cur, _ := p.DeclareGlobal("cur_frame", w*h)
		rng, _ := p.DeclareGlobal("rng_state", 8)
		p.Store64(rng, 11)

		p.Call("read_frames", "input.c", 30, func() {
			for i := 0; i < w*h; i++ {
				v := byte(lcgNext(p, rng))
				p.Store8(ref+vm.Addr(i), v)
				p.Store8(cur+vm.Addr(i), v+byte(i%3))
			}
		})

		p.Call("motion_search", "mv_search.c", 200, func() {
			for by := 0; by+mb <= h; by += mb {
				for bx := 0; bx+mb <= w; bx += mb {
					best := uint64(1 << 60)
					for dy := -window; dy <= window; dy++ {
						for dx := -window; dx <= window; dx++ {
							if bx+dx < 0 || by+dy < 0 || bx+dx+mb > w || by+dy+mb > h {
								continue
							}
							var sad uint64
							for y := 0; y < mb; y++ {
								for x := 0; x < mb; x++ {
									c := p.Load8(cur + vm.Addr((by+y)*w+bx+x))
									r := p.Load8(ref + vm.Addr((by+dy+y)*w+bx+dx+x))
									if c > r {
										sad += uint64(c - r)
									} else {
										sad += uint64(r - c)
									}
								}
							}
							if sad < best {
								best = sad
							}
						}
					}
					sum += best
				}
			}
		})
	})
	return sum, nil
}

// ---- ssh and apache protocol skeletons -----------------------------------------------------

// SSH mimics the OpenSSH trace shape: many distinct functions (protocol
// steps) each executed once or twice, sparse memory traffic — the lowest
// cb-log/Pin ratio of the set (2.4x in the paper).
type SSH struct{}

// Name implements Workload.
func (SSH) Name() string { return "ssh" }

// Run implements Workload.
func (SSH) Run(p *pin.Proc) (uint64, error) {
	var sum uint64
	steps := []string{
		"ssh_connect", "exchange_identification", "kex_setup", "kexinit_send",
		"kexinit_recv", "choose_kex", "dh_gen_key", "derive_shared", "kex_derive_keys",
		"newkeys_send", "newkeys_recv", "userauth_banner", "userauth_request",
		"auth_password", "getpwnamallow", "auth2_challenge", "session_open",
		"channel_setup", "pty_allocate", "do_exec", "packet_send", "packet_read",
		"channel_close", "session_close", "cleanup_exit",
	}
	p.Call("sshd_main", "sshd.c", 10, func() {
		opts, err := p.DeclareGlobal("options", 64)
		if err != nil {
			return
		}
		for i := 0; i < 64; i++ {
			p.Store8(opts+vm.Addr(i), byte(i))
		}
		buf, err := p.Malloc(512)
		if err != nil {
			return
		}
		for session := 0; session < 4; session++ {
			for si, step := range steps {
				p.Call(step, "ssh.c", 100+si, func() {
					// A handful of accesses per step: header parse, copy.
					for i := 0; i < 12; i++ {
						p.Store8(buf+vm.Addr((si*12+i)%512), byte(si+i))
						sum += uint64(p.Load8(buf+vm.Addr((si*7+i)%512))) +
							uint64(p.Load8(opts+vm.Addr((si+i)%64)))
					}
				})
			}
		}
		p.Free(buf)
	})
	return sum, nil
}

// Apache mimics an Apache request trace: more block reuse than ssh (the
// request loop) but far less than the SPEC kernels.
type Apache struct{}

// Name implements Workload.
func (Apache) Name() string { return "apache" }

// Run implements Workload.
func (Apache) Run(p *pin.Proc) (uint64, error) {
	var sum uint64
	const requests = 24
	p.Call("apache_main", "httpd.c", 10, func() {
		// The globals a real Apache request path consults: the server
		// config, per-module config vectors, the mime table, scoreboard
		// and log state. Crowbar's value is exactly that it enumerates
		// items like these for the programmer (§5.1).
		conf, err := p.DeclareGlobal("server_conf", 256)
		if err != nil {
			return
		}
		moduleConf, _ := p.DeclareGlobal("module_conf", 128)
		mimeTable, _ := p.DeclareGlobal("mime_table", 128)
		scoreboard, _ := p.DeclareGlobal("scoreboard", 64)
		logState, _ := p.DeclareGlobal("log_state", 32)
		for i := 0; i < 256; i++ {
			p.Store8(conf+vm.Addr(i), byte(i))
		}
		for i := 0; i < 128; i++ {
			p.Store8(moduleConf+vm.Addr(i), byte(i*3))
			p.Store8(mimeTable+vm.Addr(i), byte(i*5))
		}
		for r := 0; r < requests; r++ {
			p.Call("ap_process_request", "http_request.c", 50, func() {
				req, _ := p.Malloc(256)
				var headers, brigade vm.Addr
				p.Call("ap_read_request", "protocol.c", 80, func() {
					headers, _ = p.Malloc(128) // distinct allocation site
					for i := 0; i < 64; i++ {
						p.Store8(req+vm.Addr(i), byte('A'+i%26))
						p.Store8(headers+vm.Addr(i), byte(':'))
					}
				})
				p.Call("ap_run_handler", "config.c", 120, func() {
					brigade, _ = p.Malloc(192) // another site
					for i := 0; i < 64; i++ {
						sum += uint64(p.Load8(req+vm.Addr(i))) +
							uint64(p.Load8(conf+vm.Addr(i))) +
							uint64(p.Load8(moduleConf+vm.Addr(i))) +
							uint64(p.Load8(mimeTable+vm.Addr(i)))
						p.Store8(brigade+vm.Addr(i), byte(sum))
					}
				})
				p.Call("ap_send_response", "http_protocol.c", 200, func() {
					for i := 0; i < 32; i++ {
						p.Store8(req+vm.Addr(128+i), byte(sum>>uint(i%8)))
						sum += uint64(p.Load8(brigade + vm.Addr(i)))
					}
					p.Store8(scoreboard+vm.Addr(r%64), 1)
					p.Store8(logState+vm.Addr(r%32), byte(r))
				})
				p.Free(brigade)
				p.Free(headers)
				p.Free(req)
			})
		}
	})
	return sum, nil
}
