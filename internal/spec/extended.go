// The SPECint2006 C workloads the paper omits from Figure 9 "in the
// interest of brevity, as they performed similarly to others": miniature
// perlbench and gcc. They are available to cb-log (cblog -list) and to
// the extended figure, but Figure 9 proper keeps the paper's nine bars.

package spec

import (
	"fmt"

	"wedge/internal/pin"
	"wedge/internal/vm"
)

// Extended returns every workload: the Figure 9 nine plus the omitted
// SPEC programs.
func Extended() []Workload {
	return append(All(), Perlbench{}, GCC{})
}

// ByNameExtended finds a workload in the extended set.
func ByNameExtended(name string) (Workload, error) {
	for _, w := range Extended() {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("spec: unknown workload %q", name)
}

// ---- perlbench: bytecode interpreter dispatch loop ---------------------------------

// Perlbench mimics 400.perlbench's defining shape: an interpreter
// dispatch loop executing a small bytecode program over a scalar stack —
// extreme basic-block reuse in the dispatcher with moderate memory
// traffic per op, which is why the original sits mid-pack in Figure 9's
// ratio ordering.
type Perlbench struct{}

// Name implements Workload.
func (Perlbench) Name() string { return "perlbench" }

// Bytecode opcodes for the miniature interpreter.
const (
	opPush  = iota // push immediate
	opAdd          // pop two, push sum
	opMul          // pop two, push product
	opDup          // duplicate top
	opStore        // pop into memory cell (operand = cell index)
	opLoad         // push from memory cell
	opJnz          // pop; jump to operand if non-zero
	opHalt
)

// Run implements Workload.
func (Perlbench) Run(p *pin.Proc) (uint64, error) {
	var sum uint64
	var err error
	p.Call("perl_main", "perlmain.c", 10, func() {
		// The compiled "script": globals, like perl's op tree.
		const codeLen = 64
		code, e := p.DeclareGlobal("op_tree", codeLen*16)
		if e != nil {
			err = e
			return
		}
		pad, e := p.DeclareGlobal("pad", 16*8) // lexical scratchpad cells
		if e != nil {
			err = e
			return
		}
		stack, e := p.Malloc(64 * 8) // scalar stack
		if e != nil {
			err = e
			return
		}

		// Assemble a loop: sum += i*i for i = 40 down to 1, using the pad
		// for the accumulator (cell 0) and counter (cell 1).
		prog := []struct{ op, operand uint64 }{
			{opPush, 40}, {opStore, 1}, // i = 40
			// loop:           (index 2)
			{opLoad, 1}, {opDup, 0}, {opMul, 0}, // i*i
			{opLoad, 0}, {opAdd, 0}, {opStore, 0}, // acc += i*i
			{opLoad, 1}, {opPush, ^uint64(0)}, {opAdd, 0}, {opDup, 0}, {opStore, 1}, // i--
			{opJnz, 2},
			{opHalt, 0},
		}
		p.Call("compile", "op.c", 88, func() {
			for i, ins := range prog {
				p.Store64(code+vm.Addr(i*16), ins.op)
				p.Store64(code+vm.Addr(i*16+8), ins.operand)
			}
		})

		// The dispatch loop: one function whose body re-executes per op,
		// perl's runops_standard.
		p.Call("runops", "run.c", 40, func() {
			var pc, sp uint64
			for steps := 0; steps < 4000; steps++ {
				op := p.Load64(code + vm.Addr(pc*16))
				arg := p.Load64(code + vm.Addr(pc*16+8))
				pc++
				switch op {
				case opPush:
					p.Store64(stack+vm.Addr(sp*8), arg)
					sp++
				case opAdd:
					a := p.Load64(stack + vm.Addr((sp-1)*8))
					b := p.Load64(stack + vm.Addr((sp-2)*8))
					sp--
					p.Store64(stack+vm.Addr((sp-1)*8), a+b)
				case opMul:
					a := p.Load64(stack + vm.Addr((sp-1)*8))
					b := p.Load64(stack + vm.Addr((sp-2)*8))
					sp--
					p.Store64(stack+vm.Addr((sp-1)*8), a*b)
				case opDup:
					v := p.Load64(stack + vm.Addr((sp-1)*8))
					p.Store64(stack+vm.Addr(sp*8), v)
					sp++
				case opStore:
					sp--
					p.Store64(pad+vm.Addr(arg*8), p.Load64(stack+vm.Addr(sp*8)))
				case opLoad:
					p.Store64(stack+vm.Addr(sp*8), p.Load64(pad+vm.Addr(arg*8)))
					sp++
				case opJnz:
					sp--
					if p.Load64(stack+vm.Addr(sp*8)) != 0 {
						pc = arg
					}
				case opHalt:
					steps = 1 << 30
				}
			}
			sum = p.Load64(pad) // the accumulator
		})
		if e := p.Free(stack); e != nil {
			err = e
		}
	})
	if err != nil {
		return 0, err
	}
	// sum(i*i, 1..40) = 22140.
	if sum != 22140 {
		return sum, fmt.Errorf("perlbench: interpreter computed %d, want 22140", sum)
	}
	return sum, nil
}

// ---- gcc: dataflow iteration + graph-coloring register allocation --------------------

// GCC mimics 403.gcc's defining shape: iterative dataflow over a CFG
// (bitset propagation to a fixed point) followed by a greedy
// graph-coloring pass over an interference matrix — irregular,
// pointer-heavy traffic over medium-sized tables.
type GCC struct{}

// Name implements Workload.
func (GCC) Name() string { return "gcc" }

// Run implements Workload.
func (GCC) Run(p *pin.Proc) (uint64, error) {
	var sum uint64
	var err error
	p.Call("gcc_main", "toplev.c", 10, func() {
		const blocks = 48
		const regs = 24
		cfg, e := p.DeclareGlobal("cfg_succ", blocks*2*4) // two successors per block
		if e != nil {
			err = e
			return
		}
		liveIn, e := p.DeclareGlobal("live_in", blocks*8)
		if e != nil {
			err = e
			return
		}
		liveOut, _ := p.DeclareGlobal("live_out", blocks*8)
		defs, _ := p.DeclareGlobal("defs", blocks*8)
		uses, _ := p.DeclareGlobal("uses", blocks*8)
		rng, _ := p.DeclareGlobal("rng_state", 8)
		p.Store64(rng, 403)

		p.Call("build_cfg", "cfgbuild.c", 60, func() {
			for b := 0; b < blocks; b++ {
				s1 := uint32(lcgNext(p, rng) % blocks)
				s2 := uint32(lcgNext(p, rng) % blocks)
				p.Store32(cfg+vm.Addr(b*8), s1)
				p.Store32(cfg+vm.Addr(b*8+4), s2)
				p.Store64(defs+vm.Addr(b*8), lcgNext(p, rng)&((1<<regs)-1))
				p.Store64(uses+vm.Addr(b*8), lcgNext(p, rng)&((1<<regs)-1))
			}
		})

		// Backward liveness to a fixed point: live_in = use ∪ (live_out \ def),
		// live_out = ∪ live_in(succ).
		p.Call("life_analysis", "flow.c", 120, func() {
			for changed := true; changed; {
				changed = false
				for b := blocks - 1; b >= 0; b-- {
					s1 := p.Load32(cfg + vm.Addr(b*8))
					s2 := p.Load32(cfg + vm.Addr(b*8+4))
					out := p.Load64(liveIn+vm.Addr(int(s1)*8)) | p.Load64(liveIn+vm.Addr(int(s2)*8))
					in := p.Load64(uses+vm.Addr(b*8)) | (out &^ p.Load64(defs+vm.Addr(b*8)))
					if out != p.Load64(liveOut+vm.Addr(b*8)) || in != p.Load64(liveIn+vm.Addr(b*8)) {
						changed = true
						p.Store64(liveOut+vm.Addr(b*8), out)
						p.Store64(liveIn+vm.Addr(b*8), in)
					}
				}
			}
		})

		// Interference graph + greedy coloring.
		p.Call("global_alloc", "global.c", 200, func() {
			matrix, e := p.Malloc(regs * regs)
			if e != nil {
				err = e
				return
			}
			for b := 0; b < blocks; b++ {
				live := p.Load64(liveOut + vm.Addr(b*8))
				for i := 0; i < regs; i++ {
					if live&(1<<i) == 0 {
						continue
					}
					for j := 0; j < regs; j++ {
						if i != j && live&(1<<j) != 0 {
							p.Store8(matrix+vm.Addr(i*regs+j), 1)
						}
					}
				}
			}
			colors, e := p.Malloc(regs)
			if e != nil {
				err = e
				return
			}
			for i := 0; i < regs; i++ {
				var used uint64
				for j := 0; j < i; j++ {
					if p.Load8(matrix+vm.Addr(i*regs+j)) == 1 {
						used |= 1 << p.Load8(colors+vm.Addr(j))
					}
				}
				c := byte(0)
				for used&(1<<c) != 0 {
					c++
				}
				p.Store8(colors+vm.Addr(i), c)
				sum += uint64(c)
			}
			p.Free(colors)
			p.Free(matrix)
		})
		for b := 0; b < blocks; b++ {
			sum += p.Load64(liveIn + vm.Addr(b*8))
		}
	})
	return sum, err
}
