//go:build !race

// The two exfiltration tests below model the paper's §5.1.2 attacker: a
// goroutine inside the exploited compartment that concurrently scans
// shared simulated memory while the victim's callgate is writing it.
// That unsynchronised scan is the attack — at the Go level it is a true
// data race on the simulated frames, and the race detector correctly
// flags it. The tests are therefore excluded under -race: the property
// they check (which partitionings leak key material to such an attacker)
// is exercised in normal test runs.

package attack

import (
	"errors"
	"strings"
	"testing"
	"time"

	"wedge/internal/httpd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/sthread"
)

// TestSimplePartitionLeaksSessionKeyToMITM reproduces the §5.1.2 attack
// that defeats the Figure 2 partitioning: the attacker interposes
// passively (recording everything) and exploits the worker, which CAN read
// the session master secret. Combining the two recovers the legitimate
// client's cleartext.
func TestSimplePartitionLeaksSessionKeyToMITM(t *testing.T) {
	leak := make(chan [minissl.MasterLen]byte, 1)
	hooks := httpd.Hooks{Worker: func(s *sthread.Sthread, c *httpd.ConnContext) {
		// The exploited worker waits for the gate to deposit the master
		// secret in the shared argument buffer, then exfiltrates it. We
		// model exfiltration by reading it post-handshake: the hook runs
		// pre-handshake, so spawn a goroutine that samples after the
		// worker finishes its protocol (the worker's memory remains
		// readable until the sthread exits; sampling via the same
		// compartment handle).
		go func() {
			var master [minissl.MasterLen]byte
			buf := make([]byte, minissl.MasterLen)
			for i := 0; i < 20000; i++ {
				if err := s.TryRead(c.ArgAddr+112, buf); err != nil {
					return
				}
				copy(master[:], buf)
				var zero [minissl.MasterLen]byte
				if master != zero {
					leak <- master
					return
				}
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}}
	rec := runServer(t, "simple", hooks, func(k *kernel.Kernel) *Recording {
		return Passive(k.Net, "apache:443")
	})
	master := <-leak
	keys, err := rec.KeysFromLeakedMaster(master)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := DecryptAppData(rec, keys)
	if err != nil {
		t.Fatalf("decryption with leaked key failed: %v", err)
	}
	var all strings.Builder
	for _, p := range plain {
		all.Write(p)
	}
	if !strings.Contains(all.String(), "GET /index.html") {
		t.Fatalf("recovered %q; expected the client's request", all.String())
	}
}

// TestMITMPartitionDeniesSessionKey is the §5.1.2 defense: under the
// Figures 3-5 partitioning the same attacker — passive interposition plus
// an exploit of the network-facing handshake sthread — obtains no key
// material, and the recording stays ciphertext.
func TestMITMPartitionDeniesSessionKey(t *testing.T) {
	probeErr := make(chan error, 1)
	argResidue := make(chan [minissl.MasterLen]byte, 1)
	hooks := httpd.Hooks{Worker: func(s *sthread.Sthread, c *httpd.ConnContext) {
		// Direct read of the session region must fault.
		probeErr <- s.TryRead(c.SessionAddr, make([]byte, 16))
		// And the argument buffer never carries key material in this
		// partitioning; sample what is there at the master-offset the
		// Simple variant would have used.
		go func() {
			buf := make([]byte, minissl.MasterLen)
			var last [minissl.MasterLen]byte
			for i := 0; i < 100; i++ {
				if err := s.TryRead(c.ArgAddr+112, buf); err != nil {
					break
				}
				copy(last[:], buf)
				time.Sleep(100 * time.Microsecond)
			}
			argResidue <- last
		}()
	}}
	rec := runServer(t, "mitm", hooks, func(k *kernel.Kernel) *Recording {
		return Passive(k.Net, "apache:443")
	})
	if err := <-probeErr; err == nil {
		t.Fatal("handshake sthread read the session region")
	}

	// Whatever the exploit scraped from its own memory is useless.
	residue := <-argResidue
	keys, err := rec.KeysFromLeakedMaster(residue)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptAppData(rec, keys); !errors.Is(err, ErrNoKey) {
		t.Fatalf("recording decrypted with scraped residue: %v", err)
	}
}
