package attack

import (
	"errors"
	"testing"

	"wedge/internal/minissl"
	"wedge/internal/netsim"
)

// recordSession runs one full SSL session with a wire tap and returns the
// recording.
func recordSession(t *testing.T, opts minissl.ServerOpts) *Recording {
	t.Helper()
	net := netsim.New()
	rec := Eavesdrop(net, "victim:443")
	l, err := net.Listen("victim:443")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		srv, err := minissl.ServerHandshakeOpts(c, serverKey(t), nil, opts)
		if err != nil {
			done <- err
			return
		}
		_, err = srv.ReadRecord()
		done <- err
	}()
	conn, err := net.Dial("victim:443")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &serverKey(t).PublicKey})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Write([]byte("users' cleartext")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestOfflineDecryptStaticKey: §5.1.1's premise as an executable — the
// long-lived key opens any recorded static-key session.
func TestOfflineDecryptStaticKey(t *testing.T) {
	rec := recordSession(t, minissl.ServerOpts{})
	plain, err := OfflineDecrypt(rec, serverKey(t))
	if err != nil {
		t.Fatalf("static-key recording resisted the long-term key: %v", err)
	}
	found := false
	for _, p := range plain {
		if string(p) == "users' cleartext" {
			found = true
		}
	}
	if !found {
		t.Fatalf("request cleartext not recovered: %q", plain)
	}
}

// TestOfflineDecryptEphemeral: with per-connection keys the identical
// attack yields ErrNoKey — forward secrecy.
func TestOfflineDecryptEphemeral(t *testing.T) {
	rec := recordSession(t, minissl.ServerOpts{Ephemeral: true})
	if plain, err := OfflineDecrypt(rec, serverKey(t)); !errors.Is(err, ErrNoKey) {
		t.Fatalf("ephemeral recording decrypted: %q, err=%v", plain, err)
	}
}
