// Package attack implements the adversaries of §5.1's two threat models
// as reusable drivers:
//
//   - an eavesdropper that records entire connections off the simulated
//     wire (netsim taps);
//   - offline decryption machinery that, given recorded traffic plus
//     whatever key material an exploit managed to leak, recovers the
//     victim's cleartext — or fails to, which is the measurable security
//     outcome the partitionings differ on;
//   - a passive man-in-the-middle (via netsim.Interpose) for the §5.1.2
//     scenario where the attacker relays traffic untouched and waits for
//     an exploited server compartment to leak the session key.
//
// An "exploit" in this model is attacker code injected into a server
// compartment via the servers' hook points, running with exactly that
// compartment's privileges. What it can exfiltrate — and whether that
// suffices to decrypt the recording — is the experiment.
package attack

import (
	"bytes"
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"sync"

	"wedge/internal/minissl"
	"wedge/internal/netsim"
)

// ErrNoKey is returned when decryption fails for every recorded record.
var ErrNoKey = errors.New("attack: recorded ciphertext did not yield to the leaked material")

// Recording accumulates both directions of tapped connections.
type Recording struct {
	mu sync.Mutex
	// c2s and s2c are the reassembled byte streams.
	c2s bytes.Buffer
	s2c bytes.Buffer
}

// NewRecorder returns a recording and the tap to install with
// netsim.Network.Tap (or to pass to netsim.PassiveMITM).
func NewRecorder() (*Recording, netsim.TapFunc) {
	r := &Recording{}
	return r, func(dir netsim.Direction, data []byte) {
		r.mu.Lock()
		defer r.mu.Unlock()
		if dir == netsim.ClientToServer {
			r.c2s.Write(data)
		} else {
			r.s2c.Write(data)
		}
	}
}

// ClientBytes returns the recorded client-to-server stream.
func (r *Recording) ClientBytes() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.c2s.Bytes()...)
}

// ServerBytes returns the recorded server-to-client stream.
func (r *Recording) ServerBytes() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.s2c.Bytes()...)
}

// Randoms extracts the client and server randoms from the recorded
// handshake — both cross the wire in cleartext, so the eavesdropper always
// has them (§5.1.1).
func (r *Recording) Randoms() (clientRandom, serverRandom [minissl.RandomLen]byte, err error) {
	cr := bytes.NewReader(r.ClientBytes())
	chBody, err := minissl.ExpectMsg(cr, minissl.MsgClientHello)
	if err != nil {
		return clientRandom, serverRandom, fmt.Errorf("attack: no ClientHello in recording: %w", err)
	}
	clientRandom, _, err = minissl.ParseClientHello(chBody)
	if err != nil {
		return clientRandom, serverRandom, err
	}
	sr := bytes.NewReader(r.ServerBytes())
	shBody, err := minissl.ExpectMsg(sr, minissl.MsgServerHello)
	if err != nil {
		return clientRandom, serverRandom, fmt.Errorf("attack: no ServerHello in recording: %w", err)
	}
	serverRandom, _, _, err = minissl.ParseServerHello(shBody)
	return clientRandom, serverRandom, err
}

// KeysFromLeakedMaster turns a leaked master secret plus the recorded
// (public) randoms into the record-layer keys.
func (r *Recording) KeysFromLeakedMaster(master [minissl.MasterLen]byte) (minissl.Keys, error) {
	cr, sr, err := r.Randoms()
	if err != nil {
		return minissl.Keys{}, err
	}
	return minissl.KeyBlock(master, cr, sr), nil
}

// DecryptAppData replays the recording against the given keys and returns
// every application-data record it can open, from both directions. The
// Finished records consume sequence number zero on each side, exactly as
// the protocol did live.
func DecryptAppData(rec *Recording, keys minissl.Keys) ([][]byte, error) {
	var out [][]byte
	// To open client->server traffic we act as the server; and vice
	// versa.
	out = append(out, decryptDirection(rec.ClientBytes(), keys, minissl.ServerSide)...)
	out = append(out, decryptDirection(rec.ServerBytes(), keys, minissl.ClientSide)...)
	if len(out) == 0 {
		return nil, ErrNoKey
	}
	return out, nil
}

func decryptDirection(stream []byte, keys minissl.Keys, side minissl.Side) [][]byte {
	var out [][]byte
	rc := minissl.NewRecordCoder(keys, side)
	r := bytes.NewReader(stream)
	for {
		typ, body, err := minissl.ReadMsg(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return out
			}
			return out
		}
		switch typ {
		case minissl.MsgFinished:
			rc.Open(minissl.MsgFinished, body) // consume sequence 0
		case minissl.MsgAppData:
			if plain, err := rc.Open(minissl.MsgAppData, body); err == nil {
				out = append(out, plain)
			}
		}
	}
}

// Passive installs a recording man-in-the-middle on addr: traffic is
// relayed untouched while being recorded. This is the §5.1.2 opening move:
// "the attacker ... then passively passes messages as-is between the
// client and server" while the real work happens via an exploit inside the
// server.
func Passive(net *netsim.Network, addr string) *Recording {
	rec, tap := NewRecorder()
	net.Interpose(addr, netsim.PassiveMITM(tap))
	return rec
}

// Eavesdrop installs a passive wire tap (the §5.1.1 threat model: the
// attacker "can eavesdrop on entire SSL connections" but not interpose).
func Eavesdrop(net *netsim.Network, addr string) *Recording {
	rec, tap := NewRecorder()
	net.Tap(addr, tap)
	return rec
}

// OfflineDecrypt plays the §5.1.1 long-term-key-compromise attacker
// end-to-end: given a recorded full handshake and the server's long-lived
// private key (obtained after the fact, e.g. by exploiting an
// unpartitioned server), recover the premaster from the recorded
// ClientKeyExchange, derive the session keys from the cleartext randoms,
// and decrypt the application data.
//
// Against a static-key server this succeeds — the reason the partitioned
// servers guard the private key so tightly. Against a server using
// ephemeral per-connection keys it fails: the recorded ClientKeyExchange
// is sealed under an ephemeral key whose private half was discarded at
// handshake end, so even the long-lived key opens nothing (forward
// secrecy).
func OfflineDecrypt(rec *Recording, longterm *rsa.PrivateKey) ([][]byte, error) {
	clientRandom, serverRandom, err := rec.Randoms()
	if err != nil {
		return nil, err
	}
	// Walk the client stream to the ClientKeyExchange.
	cr := bytes.NewReader(rec.ClientBytes())
	if _, err := minissl.ExpectMsg(cr, minissl.MsgClientHello); err != nil {
		return nil, err
	}
	ckeBody, err := minissl.ExpectMsg(cr, minissl.MsgClientKeyExchange)
	if err != nil {
		return nil, fmt.Errorf("attack: no ClientKeyExchange in recording (resumed session?): %w", err)
	}
	premaster, err := minissl.DecryptPremaster(longterm, ckeBody)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoKey, err)
	}
	master := minissl.DeriveMaster(premaster, clientRandom, serverRandom)
	keys := minissl.KeyBlock(master, clientRandom, serverRandom)

	// Validate the recovered keys against the recorded client Finished
	// before claiming success: with ephemeral keys the premaster decrypt
	// above produces garbage (or errors), and the Finished MAC exposes it.
	rc := minissl.NewRecordCoder(keys, minissl.ServerSide)
	cfBody, err := minissl.ExpectMsg(cr, minissl.MsgFinished)
	if err != nil {
		return nil, err
	}
	if _, err := rc.Open(minissl.MsgFinished, cfBody); err != nil {
		return nil, fmt.Errorf("%w: recovered keys fail the Finished check", ErrNoKey)
	}
	return DecryptAppData(rec, keys)
}
