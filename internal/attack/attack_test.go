package attack

import (
	"crypto/rsa"
	"errors"
	"sync"
	"testing"

	"wedge/internal/httpd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

var (
	keyOnce sync.Once
	key     *rsa.PrivateKey
)

func serverKey(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		k, err := minissl.GenerateServerKey()
		if err != nil {
			t.Fatal(err)
		}
		key = k
	})
	return key
}

// runServer boots one httpd variant for one connection with attacker hooks
// installed, drives one legitimate client request, and returns the kernel
// (whose network the attacker pre-instrumented via prep).
func runServer(t *testing.T, variant string, hooks httpd.Hooks, prep func(k *kernel.Kernel) *Recording) *Recording {
	t.Helper()
	k := kernel.New()
	priv := serverKey(t)
	if err := httpd.SetupDocroot(k, "/var/www", 256); err != nil {
		t.Fatal(err)
	}
	rec := prep(k)
	app := sthread.Boot(k)
	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			var serve func(*netsim.Conn) error
			switch variant {
			case "simple":
				srv, err := httpd.NewSimple(root, "/var/www", priv, false, hooks)
				if err != nil {
					t.Error(err)
					close(ready)
					return
				}
				serve = srv.ServeConn
			case "mitm":
				srv, err := httpd.NewMITM(root, "/var/www", priv, false, hooks)
				if err != nil {
					t.Error(err)
					close(ready)
					return
				}
				serve = srv.ServeConn
			}
			l, err := root.Task.Listen("apache:443")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			c, err := l.Accept()
			if err != nil {
				t.Error(err)
				return
			}
			serve(c)
		})
	}()
	<-ready

	conn, err := k.Net.Dial("apache:443")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
	if err != nil {
		t.Fatalf("legitimate client handshake: %v", err)
	}
	if _, err := cc.Write([]byte("GET /index.html")); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.ReadRecord(); err != nil {
		t.Fatalf("legitimate client response: %v", err)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	return rec
}

// TestEavesdropAloneIsUseless: under either partitioning, recording the
// wire without any exploit yields nothing (sanity check that the recorded
// handshake does not itself leak the key).
func TestEavesdropAloneIsUseless(t *testing.T) {
	for _, variant := range []string{"simple", "mitm"} {
		t.Run(variant, func(t *testing.T) {
			rec := runServer(t, variant, httpd.Hooks{}, func(k *kernel.Kernel) *Recording {
				return Eavesdrop(k.Net, "apache:443")
			})
			// The attacker guesses a zero master: decryption must fail.
			keys, err := rec.KeysFromLeakedMaster([minissl.MasterLen]byte{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DecryptAppData(rec, keys); !errors.Is(err, ErrNoKey) {
				t.Fatalf("recording decrypted without a key: %v", err)
			}
			// But the randoms are visible, as the paper notes.
			cr, sr, err := rec.Randoms()
			if err != nil {
				t.Fatal(err)
			}
			if cr == sr {
				t.Fatal("degenerate randoms")
			}
		})
	}
}

// TestNoEncryptionOracleInMITMGates: an exploited handshake sthread cannot
// use receive_finished as a decryption oracle — feeding it
// attacker-chosen ciphertext yields only a binary failure.
func TestNoEncryptionOracleInMITMGates(t *testing.T) {
	verdicts := make(chan vm.Addr, 1)
	hooks := httpd.Hooks{Worker: func(s *sthread.Sthread, c *httpd.ConnContext) {
		spec, ok := c.Gates["receive_finished"]
		if !ok {
			verdicts <- 99
			return
		}
		// Feed garbage "ciphertext" through the gate.
		s.Store64(c.ArgAddr+552, 64)
		garbage := make([]byte, 64)
		for i := range garbage {
			garbage[i] = byte(i * 7)
		}
		s.Write(c.ArgAddr+560, garbage)
		ret, err := s.CallGate(spec.Spec.(*policy.GateSpec), nil, c.ArgAddr)
		if err != nil {
			verdicts <- 98
			return
		}
		verdicts <- ret
	}}
	runServer(t, "mitm", hooks, func(k *kernel.Kernel) *Recording {
		return Eavesdrop(k.Net, "apache:443")
	})
	if v := <-verdicts; v != 0 {
		t.Fatalf("oracle probe returned %d; the gate must answer only failure", v)
	}
}
