package policy

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"wedge/internal/kernel"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

func TestNewIsEmpty(t *testing.T) {
	sc := New()
	if len(sc.Mem) != 0 || len(sc.FDs) != 0 || len(sc.Gates) != 0 {
		t.Fatal("fresh policy is not empty")
	}
	if sc.UID != InheritUID {
		t.Fatalf("fresh UID = %d, want InheritUID", sc.UID)
	}
}

func TestMemAddRejectsWriteOnly(t *testing.T) {
	sc := New()
	if err := sc.MemAdd(tags.Tag(1), vm.PermWrite); !errors.Is(err, ErrWriteOnly) {
		t.Fatalf("write-only grant: err = %v, want ErrWriteOnly", err)
	}
	if err := sc.MemAdd(tags.Tag(1), vm.PermNone); !errors.Is(err, ErrBadPerm) {
		t.Fatalf("empty grant: err = %v, want ErrBadPerm", err)
	}
}

func TestMemAddAccumulates(t *testing.T) {
	sc := New()
	if err := sc.MemAdd(tags.Tag(1), vm.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := sc.MemAdd(tags.Tag(1), vm.PermRW); err != nil {
		t.Fatal(err)
	}
	if sc.Mem[tags.Tag(1)] != vm.PermRW {
		t.Fatalf("accumulated perm = %s, want rw", sc.Mem[tags.Tag(1)])
	}
}

func TestSELContext(t *testing.T) {
	sc := New()
	if err := sc.SELContext("system_u:system_r:httpd_t"); err != nil {
		t.Fatal(err)
	}
	if sc.Ctx.Type != "httpd_t" {
		t.Fatalf("Ctx.Type = %q", sc.Ctx.Type)
	}
	if err := sc.SELContext("notacontext"); err == nil {
		t.Fatal("malformed context accepted")
	}
}

func TestSubsetMemory(t *testing.T) {
	parent := New()
	parent.MustMemAdd(tags.Tag(1), vm.PermRW)
	parent.MustMemAdd(tags.Tag(2), vm.PermRead)

	ok := New().MustMemAdd(tags.Tag(1), vm.PermRead)
	if err := ok.CheckSubsetOf(parent); err != nil {
		t.Fatalf("read from rw parent: %v", err)
	}

	esc := New().MustMemAdd(tags.Tag(2), vm.PermRW)
	if err := esc.CheckSubsetOf(parent); !errors.Is(err, ErrEscalation) {
		t.Fatalf("rw from read-only parent: err = %v, want escalation", err)
	}

	unknown := New().MustMemAdd(tags.Tag(9), vm.PermRead)
	if err := unknown.CheckSubsetOf(parent); !errors.Is(err, ErrEscalation) {
		t.Fatalf("unheld tag: err = %v, want escalation", err)
	}
}

func TestSubsetCOWNeedsOnlyRead(t *testing.T) {
	parent := New()
	parent.MustMemAdd(tags.Tag(1), vm.PermRead)
	child := New().MustMemAdd(tags.Tag(1), vm.PermRead|vm.PermCOW)
	if err := child.CheckSubsetOf(parent); err != nil {
		t.Fatalf("COW from read parent: %v", err)
	}
}

func TestSubsetFDs(t *testing.T) {
	parent := New()
	parent.FDAdd(3, kernel.FDRead)
	okc := New().FDAdd(3, kernel.FDRead)
	if err := okc.CheckSubsetOf(parent); err != nil {
		t.Fatal(err)
	}
	bad := New().FDAdd(3, kernel.FDRW)
	if err := bad.CheckSubsetOf(parent); !errors.Is(err, ErrEscalation) {
		t.Fatalf("fd escalation: err = %v", err)
	}
	missing := New().FDAdd(7, kernel.FDRead)
	if err := missing.CheckSubsetOf(parent); !errors.Is(err, ErrEscalation) {
		t.Fatalf("unheld fd: err = %v", err)
	}
}

func TestSubsetGates(t *testing.T) {
	gate := &GateSpec{Name: "login"}
	parent := New()
	parent.Gates = append(parent.Gates, gate)

	okc := New()
	okc.Gates = append(okc.Gates, gate)
	if err := okc.CheckSubsetOf(parent); err != nil {
		t.Fatal(err)
	}

	other := New()
	other.Gates = append(other.Gates, &GateSpec{Name: "login"}) // same name, different identity
	if err := other.CheckSubsetOf(parent); !errors.Is(err, ErrEscalation) {
		t.Fatalf("forged gate spec: err = %v, want escalation", err)
	}
}

func TestNilParentIsUnrestricted(t *testing.T) {
	sc := New().MustMemAdd(tags.Tag(55), vm.PermRW).FDAdd(3, kernel.FDRW)
	if err := sc.CheckSubsetOf(nil); err != nil {
		t.Fatalf("root parent: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	sc := New().MustMemAdd(tags.Tag(1), vm.PermRead).FDAdd(0, kernel.FDRead)
	c := sc.Clone()
	c.MustMemAdd(tags.Tag(2), vm.PermRead)
	c.FDAdd(1, kernel.FDWrite)
	if _, ok := sc.Mem[tags.Tag(2)]; ok {
		t.Fatal("clone shares Mem map")
	}
	if _, ok := sc.FDs[1]; ok {
		t.Fatal("clone shares FDs map")
	}
}

func TestValidate(t *testing.T) {
	sc := New()
	sc.Mem[tags.NoTag] = vm.PermRead // bypass MemAdd deliberately
	if err := sc.Validate(); err == nil {
		t.Fatal("zero-tag grant validated")
	}
	sc2 := New().MustMemAdd(tags.Tag(1), vm.PermRead)
	if err := sc2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	sc := New().
		MustMemAdd(tags.Tag(2), vm.PermRead).
		MustMemAdd(tags.Tag(1), vm.PermRW).
		FDAdd(0, kernel.FDRead).
		SetUID(33).
		SetRoot("/var/empty")
	s := sc.String()
	for _, want := range []string{"mem:1=rw-", "mem:2=r--", "fd:0=r", "uid:33", "root:/var/empty"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	// Tags must be sorted for stable output.
	if strings.Index(s, "mem:1") > strings.Index(s, "mem:2") {
		t.Fatalf("String() unsorted: %q", s)
	}
	if got := New().String(); got != "sc{}" {
		t.Fatalf("empty String() = %q", got)
	}
}

// Property: CheckSubsetOf is transitive along arbitrary derivation chains —
// if each generation passes the kernel check against its parent, the last
// generation is a subset of the first. This is the invariant that makes
// "equal or lesser privileges" (§3.1) hold over any depth of nesting.
func TestPropertySubsetTransitive(t *testing.T) {
	perms := []vm.Perm{vm.PermRead, vm.PermRW, vm.PermRead | vm.PermCOW}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := New()
		for tag := 1; tag <= 8; tag++ {
			root.MustMemAdd(tags.Tag(tag), perms[rng.Intn(len(perms))])
		}
		for fd := 0; fd < 4; fd++ {
			root.FDAdd(fd, kernel.FDPerm(1+rng.Intn(3)))
		}
		chain := []*SC{root}
		cur := root
		for depth := 0; depth < 6; depth++ {
			child := New()
			for tag, held := range cur.Mem {
				if rng.Intn(2) == 0 {
					continue // drop the privilege
				}
				// Weaken: rw -> maybe read; read -> read; keep COW as COW or read.
				p := held
				if rng.Intn(2) == 0 {
					p = vm.PermRead
				}
				child.MustMemAdd(tag, p)
			}
			for fd, held := range cur.FDs {
				if rng.Intn(2) == 0 {
					continue
				}
				p := held
				if rng.Intn(2) == 0 && held&kernel.FDRead != 0 {
					p = kernel.FDRead
				}
				child.FDAdd(fd, p)
			}
			if err := child.CheckSubsetOf(cur); err != nil {
				t.Logf("seed %d: legitimate derivation rejected: %v", seed, err)
				return false
			}
			chain = append(chain, child)
			cur = child
		}
		last := chain[len(chain)-1]
		if err := last.CheckSubsetOf(root); err != nil {
			t.Logf("seed %d: transitivity violated: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: PermSubset is reflexive and antisymmetric up to equivalence on
// the meaningful permission lattice.
func TestPropertyPermSubsetLattice(t *testing.T) {
	all := []vm.Perm{
		vm.PermRead,
		vm.PermRW,
		vm.PermRead | vm.PermCOW,
		vm.PermRW | vm.PermCOW,
	}
	for _, p := range all {
		if !PermSubset(p, p) {
			t.Fatalf("PermSubset(%s, %s) = false; not reflexive", p, p)
		}
	}
	for _, a := range all {
		for _, b := range all {
			for _, c := range all {
				if PermSubset(a, b) && PermSubset(b, c) && !PermSubset(a, c) {
					t.Fatalf("not transitive: %s <= %s <= %s", a, b, c)
				}
			}
		}
	}
	if PermSubset(vm.PermRW, vm.PermRead) {
		t.Fatal("rw fits under read")
	}
}

// TestQuotaSubset: the MemPages monotonicity rule — a quota-bound parent
// cannot produce an unbounded or looser-bounded child.
func TestQuotaSubset(t *testing.T) {
	cases := []struct {
		parent, child int
		ok            bool
	}{
		{0, 0, true},   // unlimited parent, unlimited child
		{0, 5, true},   // unlimited parent, bounded child
		{10, 10, true}, // equal
		{10, 3, true},  // tighter
		{10, 0, true},  // unset child inherits the parent's cap
		{10, 11, false},
	}
	for _, c := range cases {
		parent := New().SetMemPages(c.parent)
		child := New().SetMemPages(c.child)
		err := child.CheckSubsetOf(parent)
		if c.ok != (err == nil) {
			t.Errorf("parent=%d child=%d: err=%v, want ok=%v", c.parent, c.child, err, c.ok)
		}
	}
}

// TestQuotaValidate: negative quotas are rejected and Clone preserves the
// quota.
func TestQuotaValidate(t *testing.T) {
	if err := New().SetMemPages(-1).Validate(); err == nil {
		t.Fatal("negative quota validated")
	}
	sc := New().SetMemPages(7)
	if got := sc.Clone().MemPages; got != 7 {
		t.Fatalf("Clone dropped quota: %d", got)
	}
}

// TestEffectiveMemPages: rlimit-style resolution — unset inherits, set
// stands on its own.
func TestEffectiveMemPages(t *testing.T) {
	parent := New().SetMemPages(10)
	if got := New().EffectiveMemPages(parent); got != 10 {
		t.Fatalf("inherit: %d", got)
	}
	if got := New().SetMemPages(3).EffectiveMemPages(parent); got != 3 {
		t.Fatalf("tighten: %d", got)
	}
	if got := New().EffectiveMemPages(nil); got != 0 {
		t.Fatalf("root: %d", got)
	}
	if got := New().SetMemPages(5).EffectiveMemPages(nil); got != 5 {
		t.Fatalf("explicit under root: %d", got)
	}
}
