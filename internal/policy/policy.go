// Package policy implements Wedge security policies: the sc_t structure a
// programmer assembles and attaches to a new sthread (§3.1, Table 1). A
// policy enumerates, explicitly and exhaustively, everything the sthread
// may touch — memory tags with per-tag permissions, file descriptors with
// per-descriptor modes, callgates it may invoke — plus the Unix user id,
// filesystem root, and SELinux context it runs under. Everything not named
// is denied; that is the default-deny model the paper argues for.
//
// The package also encodes the monotonicity rule of §3.1: an sthread can
// only create a child with equal or lesser privileges than its own. The
// subset checks here are the kernel-side validation that enforces it.
package policy

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"wedge/internal/kernel"
	"wedge/internal/selinux"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// Errors returned by policy validation.
var (
	// ErrEscalation is returned when a child policy requests privileges
	// its creator does not hold.
	ErrEscalation = errors.New("policy: child privileges exceed parent's")
	// ErrWriteOnly is returned for write-only memory grants, which Wedge
	// rejects because most CPUs cannot express them (§3.1).
	ErrWriteOnly = errors.New("policy: write-only memory permissions are not supported")
	// ErrBadPerm is returned for malformed permission bits.
	ErrBadPerm = errors.New("policy: invalid permission bits")
)

// InheritUID is the sentinel for "keep the creator's user id".
const InheritUID = -1

// GateSpec is one callgate authorization inside a policy: the entry point,
// the permissions the callgate will run with, and the trusted argument its
// creator supplies. The sthread layer interprets Entry; policy treats it as
// opaque. Wedge stores all three in the kernel at sthread-creation time so
// the (potentially compromised) child cannot tamper with them (§4.1).
type GateSpec struct {
	Entry any
	SC    *SC
	Arg   vm.Addr
	Name  string // diagnostic label
}

// SC is a security policy (the paper's sc_t). The zero value grants
// nothing; use New.
type SC struct {
	// Mem maps memory tags to the page permissions granted for the
	// tag's segment (read, read-write, or copy-on-write).
	Mem map[tags.Tag]vm.Perm
	// FDs maps file descriptor numbers (in the creator's table) to the
	// modes granted on them.
	FDs map[int]kernel.FDPerm
	// Gates lists the callgates the sthread may invoke.
	Gates []*GateSpec
	// UID is the Unix user id the sthread runs as, or InheritUID.
	UID int
	// Root is the filesystem path (resolved in the creator's namespace)
	// that becomes the sthread's root, or "" to inherit.
	Root string
	// Ctx is the SELinux context the sthread runs in; the zero Context
	// inherits the creator's.
	Ctx selinux.Context
	// MemPages, when non-zero, caps how many additional pages the sthread
	// may map beyond what its policy granted at creation — a
	// resource-exhaustion mitigation extending the paper, which notes
	// (§7) Wedge has no direct DoS defense. Like an rlimit, 0 inherits
	// the creator's cap (unlimited if no ancestor set one), and a child's
	// explicit cap may tighten but never exceed its parent's.
	MemPages int
}

// New returns an empty policy: no memory, no descriptors, no callgates,
// inherited uid/root/context. This emptiness is the point — a fresh sthread
// "holds no access rights by default" (§3.1).
func New() *SC {
	return &SC{
		Mem: make(map[tags.Tag]vm.Perm),
		FDs: make(map[int]kernel.FDPerm),
		UID: InheritUID,
	}
}

// MemAdd grants perm on the segment named by tag (the paper's sc_mem_add).
// Write-only grants are rejected.
func (sc *SC) MemAdd(tag tags.Tag, perm vm.Perm) error {
	if err := checkMemPerm(perm); err != nil {
		return err
	}
	sc.Mem[tag] |= perm
	return nil
}

// MustMemAdd is MemAdd for statically correct permissions.
func (sc *SC) MustMemAdd(tag tags.Tag, perm vm.Perm) *SC {
	if err := sc.MemAdd(tag, perm); err != nil {
		panic(err)
	}
	return sc
}

// FDAdd grants perm on descriptor fd of the creator's table (sc_fd_add).
func (sc *SC) FDAdd(fd int, perm kernel.FDPerm) *SC {
	sc.FDs[fd] |= perm
	return sc
}

// GateAdd authorizes invocation of a callgate with the given permissions
// and trusted argument (sc_cgate_add).
func (sc *SC) GateAdd(entry any, gateSC *SC, arg vm.Addr, name string) *SC {
	sc.Gates = append(sc.Gates, &GateSpec{Entry: entry, SC: gateSC, Arg: arg, Name: name})
	return sc
}

// SELContext sets the SELinux context (sc_sel_context). The sid must parse
// as user:role:type.
func (sc *SC) SELContext(sid string) error {
	ctx, err := selinux.ParseContext(sid)
	if err != nil {
		return err
	}
	sc.Ctx = ctx
	return nil
}

// SetUID requests that the sthread run as uid.
func (sc *SC) SetUID(uid int) *SC { sc.UID = uid; return sc }

// SetRoot requests that the sthread be chrooted to path.
func (sc *SC) SetRoot(path string) *SC { sc.Root = path; return sc }

// SetMemPages caps the sthread's additional page mappings (0 = unlimited).
func (sc *SC) SetMemPages(n int) *SC { sc.MemPages = n; return sc }

// Clone returns a deep copy. Gate specs are shared (they are immutable
// after creation).
func (sc *SC) Clone() *SC {
	c := New()
	for tag, p := range sc.Mem {
		c.Mem[tag] = p
	}
	for fd, p := range sc.FDs {
		c.FDs[fd] = p
	}
	c.Gates = append([]*GateSpec(nil), sc.Gates...)
	c.UID = sc.UID
	c.Root = sc.Root
	c.Ctx = sc.Ctx
	c.MemPages = sc.MemPages
	return c
}

// checkMemPerm rejects write-only and unknown bits.
func checkMemPerm(perm vm.Perm) error {
	if perm&^(vm.PermRead|vm.PermWrite|vm.PermCOW) != 0 {
		return ErrBadPerm
	}
	if perm&vm.PermWrite != 0 && perm&vm.PermRead == 0 {
		return ErrWriteOnly
	}
	if perm == vm.PermNone {
		return ErrBadPerm
	}
	return nil
}

// PermSubset reports whether a grant of child is covered by a holding of
// parent. Shared-write requires the parent to hold shared write;
// copy-on-write requires only that the parent can read the frames it would
// privately duplicate.
func PermSubset(child, parent vm.Perm) bool {
	if child.CanRead() && !parent.CanRead() {
		return false
	}
	if child&vm.PermWrite != 0 && parent&vm.PermWrite == 0 {
		return false
	}
	if child&vm.PermCOW != 0 && !parent.CanRead() {
		return false
	}
	return true
}

// FDPermSubset reports whether child's descriptor mode is covered by
// parent's.
func FDPermSubset(child, parent kernel.FDPerm) bool {
	return child&parent == child
}

// CheckSubsetOf validates the monotonicity rule: every privilege in sc must
// be covered by parent. A nil parent is the fully privileged root sthread
// (the pre-main process), which may grant anything it holds. Descriptor
// existence and uid/root/SELinux transitions are checked by the sthread
// layer against the live parent task; this function checks the pure
// policy-vs-policy part.
func (sc *SC) CheckSubsetOf(parent *SC) error {
	if parent == nil {
		return nil
	}
	for tag, perm := range sc.Mem {
		held, ok := parent.Mem[tag]
		if !ok || !PermSubset(perm, held) {
			return fmt.Errorf("%w: memory tag %d wants %s, parent holds %s",
				ErrEscalation, tag, perm, held)
		}
	}
	for fd, perm := range sc.FDs {
		held, ok := parent.FDs[fd]
		if !ok || !FDPermSubset(perm, held) {
			return fmt.Errorf("%w: fd %d wants %s, parent holds %s",
				ErrEscalation, fd, perm, held)
		}
	}
	authorized := make(map[*GateSpec]bool, len(parent.Gates))
	for _, g := range parent.Gates {
		authorized[g] = true
	}
	for _, g := range sc.Gates {
		if !authorized[g] {
			return fmt.Errorf("%w: callgate %q not held by parent", ErrEscalation, g.Name)
		}
	}
	// Rlimit semantics for the memory quota: 0 inherits the parent's cap,
	// a non-zero cap may tighten but never loosen it.
	if parent.MemPages > 0 && sc.MemPages > parent.MemPages {
		return fmt.Errorf("%w: memory quota %d pages exceeds parent's %d",
			ErrEscalation, sc.MemPages, parent.MemPages)
	}
	return nil
}

// EffectiveMemPages resolves the rlimit-style inheritance: a policy with
// no explicit quota inherits the parent's. Zero means unlimited all the
// way up.
func (sc *SC) EffectiveMemPages(parent *SC) int {
	if sc.MemPages != 0 || parent == nil {
		return sc.MemPages
	}
	return parent.MemPages
}

// Validate performs internal consistency checks on the policy itself.
func (sc *SC) Validate() error {
	if sc.MemPages < 0 {
		return fmt.Errorf("policy: negative memory quota %d", sc.MemPages)
	}
	for tag, perm := range sc.Mem {
		if tag == tags.NoTag {
			return fmt.Errorf("policy: grant names the zero tag")
		}
		if err := checkMemPerm(perm); err != nil {
			return fmt.Errorf("tag %d: %w", tag, err)
		}
	}
	return nil
}

// String renders the policy for diagnostics and cb-analyze style reports.
func (sc *SC) String() string {
	var parts []string
	memTags := make([]int, 0, len(sc.Mem))
	for tag := range sc.Mem {
		memTags = append(memTags, int(tag))
	}
	sort.Ints(memTags)
	for _, tag := range memTags {
		parts = append(parts, fmt.Sprintf("mem:%d=%s", tag, sc.Mem[tags.Tag(tag)]))
	}
	fds := make([]int, 0, len(sc.FDs))
	for fd := range sc.FDs {
		fds = append(fds, fd)
	}
	sort.Ints(fds)
	for _, fd := range fds {
		parts = append(parts, fmt.Sprintf("fd:%d=%s", fd, sc.FDs[fd]))
	}
	for _, g := range sc.Gates {
		parts = append(parts, "gate:"+g.Name)
	}
	if sc.UID != InheritUID {
		parts = append(parts, fmt.Sprintf("uid:%d", sc.UID))
	}
	if sc.Root != "" {
		parts = append(parts, "root:"+sc.Root)
	}
	if !sc.Ctx.IsZero() {
		parts = append(parts, "sel:"+sc.Ctx.String())
	}
	if len(parts) == 0 {
		return "sc{}"
	}
	return "sc{" + strings.Join(parts, " ") + "}"
}
