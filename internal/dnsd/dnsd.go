// Package dnsd is the datagram wedge: a DNS-like UDP resolver split
// into the paper's two-compartment shape. The worker compartment parses
// untrusted query datagrams — the "risky code" of §2 — holding nothing
// but its slot's argument tag and the flow's descriptor. The zone —
// records and the zone-signing key — lives behind one callgate
// ("resolve") in its own tag; the gate looks the name up AND signs the
// answer itself, over a message it composes, so a compromised worker
// cannot obtain signatures of chosen values (§5.2's signing lesson,
// applied to datagrams: signed answers and signed denials both come
// only from the gate).
//
// The server is a serve.PacketApp on the datagram runtime
// (internal/serve): the runtime owns the packet loop, demultiplexes
// datagrams by source address into flows, and retires idle flows by
// timer wheel. One worker invocation serves one flow — all queries a
// client sends before going quiet — and the flow's slot lease spans the
// invocation, exactly the stream wedges' residue model.
//
// Wire protocol (one datagram per message, binary, length-prefixed):
//
//	query:        'Q' flags(1) nlen(1) name[nlen]
//	continuation: 'C' nlen(1) name[nlen]      (after a FRAG query)
//	ack:          'A'                          (server accepts the FRAG half)
//	answer:       'R' status(1) nlen(1) name vlen(2 LE) value slen(2 LE) sig
//
// A query with the FRAG flag carries only the first half of the name;
// the server acks with 'A' and waits for one continuation. (It is the
// datagram analogue of a stream client pausing mid-command — what lets
// tests park a worker provably inside its invocation.)
package dnsd

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sync"
	"time"

	"wedge/internal/gateabi"
	"wedge/internal/gatepool"
	"wedge/internal/minissl"
	"wedge/internal/policy"
	"wedge/internal/serve"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// Answer statuses.
const (
	StatusNoError  byte = 0 // name resolved; value and signature present
	StatusNXDomain byte = 1 // no such name; the denial is signed too
	StatusRefused  byte = 2 // admission control refused the flow
	StatusFormErr  byte = 3 // malformed query; the resolve gate never ran
	StatusServFail byte = 4 // the resolve gate failed
)

const (
	// MaxName bounds a query name (after reassembly of a FRAG query).
	MaxName = 255
	// MaxValue bounds a zone record's value.
	MaxValue = 512

	dnsSigCap = 256 // RSA-1024 signatures are 128 bytes; headroom for larger keys
	flagFrag  = 0x01

	// maxDatagram is the worker's read buffer: large enough that any
	// datagram the wire format could need arrives whole.
	maxDatagram = 2048
)

// The shared argument-block schema (worker <-> resolve gate). The worker
// stores the reassembled query name; the gate stores the verdict, the
// record value, and the signature it computed over all three.
var (
	dnsSchemaB = gateabi.NewSchema("dnsd")

	fQName  = gateabi.Bytes(dnsSchemaB, "qname", MaxName)  // worker -> gate
	fStatus = gateabi.Word[uint64](dnsSchemaB, "status")   // gate -> worker
	fValue  = gateabi.Bytes(dnsSchemaB, "value", MaxValue) // gate -> worker
	fSig    = gateabi.Bytes(dnsSchemaB, "sig", dnsSigCap)  // gate -> worker
	_       = gateabi.ConnID(dnsSchemaB)
	_       = gateabi.FD(dnsSchemaB)

	dnsSchema = dnsSchemaB.Seal()
)

// GateSchema exposes the argument-block schema (for the conformance
// battery and the cross-app FuzzGateABI harness).
func GateSchema() *gateabi.Schema { return dnsSchema }

// Record is one zone entry.
type Record struct {
	Name  string
	Value string
}

// ConnContext is what the worker hook observes: the flow's descriptor
// and the slot's argument block.
type ConnContext struct {
	FD      int
	ArgAddr vm.Addr
}

// Hooks are test observability points.
type Hooks struct {
	// Worker runs at the top of each worker invocation (once per flow).
	Worker func(w *sthread.Sthread, ctx *ConnContext)
	// Resolve runs at the top of each resolve-gate invocation, before
	// the gate validates anything — so a test can assert the gate was
	// never reached for a malformed query.
	Resolve func()
}

// Config sizes the resolver.
type Config struct {
	Slots       int           // gate-pool slots (serve.DefaultSlots if <= 0)
	IdleTimeout time.Duration // flow-expiry window (serve.DefaultIdleTimeout if <= 0)
	Hooks       Hooks
}

// Resolver serves signed answers over datagrams with zero per-flow
// sthread creations. The embedded datagram runtime owns the packet
// loop (ServePackets), flow expiry, lifecycle (Drain/Undrain/Close),
// sizing, and observability.
type Resolver struct {
	root  *sthread.Sthread
	hooks Hooks

	zoneTag  tags.Tag
	zoneAddr vm.Addr

	// bufs recycles datagram scratch across batch sweeps; a lightly
	// loaded ring drains one entry per doorbell, so per-sweep allocation
	// would degenerate to per-flow allocation.
	bufs sync.Pool

	*serve.PacketRuntime[dnsConn]
}

// dnsConn is one flow's gate-side state. The FRAG reassembly position
// lives here rather than on the worker's stack so a live cluster handoff
// can move a half-reassembled query to the flow's new home: fragging
// marks a flow that acked a FRAG query and owes its client a
// continuation read, frag holds the first half.
type dnsConn struct {
	queries  int    // datagram queries answered on this flow
	fragging bool   // a FRAG query's ack was sent; next datagram is its continuation
	frag     []byte // the FRAG query's first half
}

// NewPooled places the zone — records and signing key, one blob, one
// tag — and builds the datagram runtime. The worker gate holds no
// privileges beyond the slot's argument tag; only the resolve gate can
// read the zone.
func NewPooled(root *sthread.Sthread, key *rsa.PrivateKey, zone []Record, cfg Config) (*Resolver, error) {
	if err := validateZone(zone); err != nil {
		return nil, err
	}
	r := &Resolver{root: root, hooks: cfg.Hooks}
	r.bufs.New = func() any { return make([]byte, maxDatagram) }
	var err error
	if r.zoneTag, r.zoneAddr, err = placeBlob(root, marshalZone(key, zone)); err != nil {
		return nil, err
	}
	r.PacketRuntime, err = serve.NewPacket(root, serve.PacketApp[dnsConn]{
		Name:        "dnsd",
		Slots:       cfg.Slots,
		Schema:      dnsSchema,
		OnPacket:    "worker",
		IdleTimeout: cfg.IdleTimeout,
		Export:      exportDNS,
		Import:      importDNS,
		Gates: []gatepool.GateDef{
			{
				Name:  "worker",
				Entry: r.workerEntry,
				// Explicit batched body: drain the slot ring one flow per
				// entry, sharing a single datagram buffer across the
				// whole sweep instead of allocating one per flow.
				Batch: func(w *sthread.Sthread, b *sthread.Batch, _ vm.Addr) {
					buf := r.bufs.Get().([]byte)
					for b.More() {
						b.Complete(r.workerServe(w, b.Arg(), buf))
					}
					r.bufs.Put(buf) //nolint:staticcheck // fixed-size scratch, no slicing
				},
			},
			{
				Name:    "resolve",
				SC:      policy.New().MustMemAdd(r.zoneTag, vm.PermRead),
				Trusted: r.zoneAddr,
				Entry:   r.resolveEntry,
			},
		},
		// A refused first packet gets a REFUSED answer, echoing the
		// query's name when it parses — clients see overload, not a
		// timeout. REFUSED carries no signature: it never saw the zone.
		Refuse: func(payload []byte, err error) []byte {
			name, _, ok := parseQuery(payload)
			if !ok {
				name = nil
			}
			return appendAnswer(nil, StatusRefused, name, nil, nil)
		},
	})
	if err != nil {
		root.App().Tags.TagDelete(r.zoneTag)
		return nil, err
	}
	return r, nil
}

// dnsExportVersion versions the dnsd handoff payload.
const dnsExportVersion = 1

// exportDNS serializes a flow for cluster handoff: the query count and
// the FRAG reassembly position. The zone blob — records and the signing
// key — never rides a record: it lives behind the resolve gate's tag at
// every runtime, and the new home's gate signs with its own copy.
func exportDNS(c *serve.Conn[dnsConn], _ []byte) []byte {
	st := &c.State
	var flags byte
	if st.fragging {
		flags |= 1
	}
	out := make([]byte, 0, 7+len(st.frag))
	out = append(out, dnsExportVersion, flags)
	out = binary.LittleEndian.AppendUint32(out, uint32(st.queries))
	frag := st.frag
	if len(frag) > MaxName {
		frag = frag[:MaxName] // unreachable: reassembly enforces MaxName
	}
	out = append(out, byte(len(frag)))
	return append(out, frag...)
}

// importDNS restores a handed-off flow, validating the payload as
// hostile input: version, exact framing, and the first-half length
// against MaxName — an oversized fragment must be refused here, not
// discovered at reassembly.
func importDNS(c *serve.Conn[dnsConn], rec *serve.HandoffRecord) error {
	b := rec.State
	if len(b) < 7 {
		return errors.New("dnsd: import: truncated payload")
	}
	if b[0] != dnsExportVersion {
		return errors.New("dnsd: import: unknown payload version")
	}
	flags := b[1]
	queries := int(binary.LittleEndian.Uint32(b[2:]))
	flen := int(b[6])
	if flen > MaxName || len(b) != 7+flen {
		return errors.New("dnsd: import: malformed fragment")
	}
	c.State.queries = queries
	c.State.fragging = flags&1 != 0
	if flen > 0 {
		c.State.frag = append([]byte(nil), b[7:]...)
	}
	return nil
}

// workerEntry is the per-slot recycled query parser: one invocation per
// flow, reading whole query datagrams from the flow descriptor until
// the wheel expires the flow (the read fails — a clean end). Malformed
// input is answered with FORMERR without ever invoking the resolve
// gate: the signing key is unreachable from the parse path.
func (r *Resolver) workerEntry(w *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
	return r.workerServe(w, arg, make([]byte, maxDatagram))
}

// workerServe is one flow against caller-owned datagram scratch; the
// batched body shares one buffer across every entry in a sweep.
func (r *Resolver) workerServe(w *sthread.Sthread, arg vm.Addr, buf []byte) vm.Addr {
	c := r.Lookup(w, arg)
	if c == nil {
		return 0
	}
	if r.hooks.Worker != nil {
		r.hooks.Worker(w, &ConnContext{FD: c.FD, ArgAddr: arg})
	}
	lease := c.Lease
	for {
		n, err := w.Task.ReadFD(c.FD, buf)
		if err != nil {
			return 1 // flow expired (or runtime closing): clean end
		}
		var name []byte
		ok := true
		if c.State.fragging {
			// The flow owes a continuation read — possibly from before a
			// handoff, with the first half restored by Import. Anything
			// but a valid continuation ends the reassembly as FORMERR.
			name = c.State.frag
			c.State.fragging, c.State.frag = false, nil
			part, pok := parseCont(buf[:n])
			if !pok || len(name)+len(part) > MaxName {
				ok = false
			} else {
				name = append(name, part...)
			}
		} else {
			var frag bool
			name, frag, ok = parseQuery(buf[:n])
			if ok && frag {
				// Ack the first half; the next datagram is its
				// continuation. The position is recorded on the conn
				// state before the ack, so a handoff interrupting the
				// wait finds it there.
				c.State.fragging, c.State.frag = true, name
				if _, err := w.Task.WriteFD(c.FD, []byte{'A'}); err != nil {
					return 0
				}
				continue
			}
		}
		if !ok || len(name) == 0 {
			r.reply(w, c.FD, StatusFormErr, nil, nil, nil)
			continue
		}
		c.State.queries++
		if fQName.Store(w, arg, name) != nil {
			r.reply(w, c.FD, StatusFormErr, name, nil, nil)
			continue
		}
		ret, err := lease.Call("resolve", w, arg)
		if err != nil {
			return 0 // the gate died: fail the flow, not just the query
		}
		if ret == 0 {
			r.reply(w, c.FD, StatusServFail, name, nil, nil)
			continue
		}
		status := byte(fStatus.Load(w, arg))
		value, verr := fValue.Load(w, arg)
		sig, serr := fSig.Load(w, arg)
		if verr != nil || serr != nil {
			r.reply(w, c.FD, StatusServFail, name, nil, nil)
			continue
		}
		r.reply(w, c.FD, status, name, value, sig)
	}
}

// reply sends one answer datagram. A write failure means the flow just
// closed under us; the next read observes it, so the error is dropped.
func (r *Resolver) reply(w *sthread.Sthread, fd int, status byte, name, value, sig []byte) {
	w.Task.WriteFD(fd, appendAnswer(nil, status, name, value, sig))
}

// resolveEntry is the zone compartment: parse the blob (records and
// key), look the query name up, and sign status, name, and value as one
// message. The worker supplies only the name and receives only the
// finished, signed answer — it cannot steer what gets signed.
func (r *Resolver) resolveEntry(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	if r.hooks.Resolve != nil {
		r.hooks.Resolve()
	}
	priv, zone, err := parseZone(loadBlob(g, trusted))
	if err != nil {
		return 0
	}
	name, err := fQName.Load(g, arg)
	if err != nil || len(name) == 0 {
		return 0
	}
	status := StatusNXDomain
	var value []byte
	for _, rec := range zone {
		if rec.Name == string(name) {
			status = StatusNoError
			value = []byte(rec.Value)
			break
		}
	}
	sig, err := signAnswer(priv, status, name, value)
	if err != nil {
		return 0
	}
	fStatus.Store(g, arg, uint64(status))
	if fValue.Store(g, arg, value) != nil {
		return 0
	}
	if fSig.Store(g, arg, sig) != nil {
		return 0
	}
	return 1
}

// ---- wire format -----------------------------------------------------------

// parseQuery validates one query datagram. Strict: exact length, no
// undefined flag bits — anything else is FORMERR and never reaches the
// resolve gate.
func parseQuery(pkt []byte) (name []byte, frag bool, ok bool) {
	if len(pkt) < 3 || pkt[0] != 'Q' || pkt[1]&^byte(flagFrag) != 0 {
		return nil, false, false
	}
	n := int(pkt[2])
	if len(pkt) != 3+n {
		return nil, false, false
	}
	return append([]byte(nil), pkt[3:]...), pkt[1]&flagFrag != 0, true
}

// parseCont validates one continuation datagram.
func parseCont(pkt []byte) (part []byte, ok bool) {
	if len(pkt) < 2 || pkt[0] != 'C' {
		return nil, false
	}
	n := int(pkt[1])
	if len(pkt) != 2+n {
		return nil, false
	}
	return append([]byte(nil), pkt[2:]...), true
}

// appendAnswer builds one answer datagram.
func appendAnswer(dst []byte, status byte, name, value, sig []byte) []byte {
	dst = append(dst, 'R', status, byte(len(name)))
	dst = append(dst, name...)
	dst = append(dst, byte(len(value)), byte(len(value)>>8))
	dst = append(dst, value...)
	dst = append(dst, byte(len(sig)), byte(len(sig)>>8))
	return append(dst, sig...)
}

// signedMessage is the exact byte sequence the zone key signs: status,
// length-prefixed name, value. The length prefix keeps (name, value)
// splits unambiguous.
func signedMessage(status byte, name, value []byte) []byte {
	msg := make([]byte, 0, 2+len(name)+len(value))
	msg = append(msg, status, byte(len(name)))
	msg = append(msg, name...)
	return append(msg, value...)
}

// signAnswer signs sha256(signedMessage) — the gate hashes the message
// it composed itself, so no caller obtains a signature over chosen
// bytes (§5.2).
func signAnswer(priv *rsa.PrivateKey, status byte, name, value []byte) ([]byte, error) {
	sum := sha256.Sum256(signedMessage(status, name, value))
	return rsa.SignPKCS1v15(rand.Reader, priv, 0, sum[:])
}

// ---- zone blob -------------------------------------------------------------

// marshalZone packs the signing key and the records into the one blob
// that lives behind the resolve gate's tag.
func marshalZone(priv *rsa.PrivateKey, zone []Record) []byte {
	key := minissl.MarshalPrivateKey(priv)
	b := le64(nil, len(key))
	b = append(b, key...)
	b = le64(b, len(zone))
	for _, rec := range zone {
		b = le64(b, len(rec.Name))
		b = append(b, rec.Name...)
		b = le64(b, len(rec.Value))
		b = append(b, rec.Value...)
	}
	return b
}

var errZone = errors.New("dnsd: malformed zone blob")

func parseZone(b []byte) (*rsa.PrivateKey, []Record, error) {
	key, b, err := cut(b)
	if err != nil {
		return nil, nil, err
	}
	priv, err := minissl.UnmarshalPrivateKey(key)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 8 {
		return nil, nil, errZone
	}
	count := binary.LittleEndian.Uint64(b)
	b = b[8:]
	zone := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		var name, value []byte
		if name, b, err = cut(b); err != nil {
			return nil, nil, err
		}
		if value, b, err = cut(b); err != nil {
			return nil, nil, err
		}
		zone = append(zone, Record{Name: string(name), Value: string(value)})
	}
	return priv, zone, nil
}

func le64(b []byte, n int) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(n))
}

func cut(b []byte) (field, rest []byte, err error) {
	if len(b) < 8 {
		return nil, nil, errZone
	}
	n := binary.LittleEndian.Uint64(b)
	if n > uint64(len(b)-8) {
		return nil, nil, errZone
	}
	return b[8 : 8+n], b[8+n:], nil
}

// placeBlob lands a length-prefixed blob in a fresh tag. On failure no
// tag is left behind.
func placeBlob(root *sthread.Sthread, blob []byte) (tags.Tag, vm.Addr, error) {
	tag, err := root.App().Tags.TagNew(root.Task)
	if err != nil {
		return 0, 0, err
	}
	addr, err := root.Smalloc(tag, 8+len(blob))
	if err != nil {
		root.App().Tags.TagDelete(tag)
		return 0, 0, err
	}
	root.Store64(addr, uint64(len(blob)))
	root.Write(addr+8, blob)
	return tag, addr, nil
}

func loadBlob(s *sthread.Sthread, addr vm.Addr) []byte {
	n := s.Load64(addr)
	out := make([]byte, n)
	s.Read(addr+8, out)
	return out
}
