package dnsd

import (
	"bytes"
	"crypto/rsa"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
)

// testKey is the zone-signing key shared by every test in the package —
// RSA keygen is the expensive part of the fixtures.
var (
	keyOnce sync.Once
	zoneKey *rsa.PrivateKey
)

func testZoneKey(t testing.TB) *rsa.PrivateKey {
	keyOnce.Do(func() {
		k, err := minissl.GenerateServerKey()
		if err != nil {
			panic(err)
		}
		zoneKey = k
	})
	return zoneKey
}

func testZone() []Record {
	return []Record{
		{Name: "www.example", Value: "192.0.2.80"},
		{Name: "mail.example", Value: "192.0.2.25"},
	}
}

type dnsRig struct {
	k  *kernel.Kernel
	rt *Resolver
}

// startResolver boots a kernel, builds the resolver, and runs the
// packet loop until drive returns.
func startResolver(t *testing.T, cfg Config, drive func(r *dnsRig)) {
	t.Helper()
	key := testZoneKey(t)
	k := kernel.New()
	app := sthread.Boot(k)
	done := make(chan error, 1)
	ready := make(chan *dnsRig, 1)
	quit := make(chan struct{})
	var pc *netsim.PacketConn
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			rt, err := NewPooled(root, key, testZone(), cfg)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			pc, err = root.Task.ListenPacket("dns:53")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			go rt.ServePackets(pc)
			ready <- &dnsRig{k: k, rt: rt}
			<-quit
		})
	}()
	r := <-ready
	if r == nil {
		t.FailNow()
	}
	drive(r)
	pc.Close()
	if err := r.rt.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	close(quit)
	if err := <-done; err != nil {
		t.Fatalf("main: %v", err)
	}
}

// TestResolveSigned: a known name resolves with a verifying signature;
// an unknown name gets a signed denial; tampering breaks verification.
func TestResolveSigned(t *testing.T) {
	startResolver(t, Config{Slots: 2, IdleTimeout: 150 * time.Millisecond}, func(r *dnsRig) {
		cli, err := r.k.Net.DialPacket()
		if err != nil {
			t.Fatal(err)
		}
		a, err := Query(cli, "dns:53", "www.example")
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != StatusNoError || string(a.Value) != "192.0.2.80" {
			t.Fatalf("answer status=%d value=%q, want NOERROR 192.0.2.80", a.Status, a.Value)
		}
		if err := a.Verify(&testZoneKey(t).PublicKey); err != nil {
			t.Fatalf("signature: %v", err)
		}

		nx, err := Query(cli, "dns:53", "nope.example")
		if err != nil {
			t.Fatal(err)
		}
		if nx.Status != StatusNXDomain || len(nx.Value) != 0 {
			t.Fatalf("answer status=%d value=%q, want signed NXDOMAIN", nx.Status, nx.Value)
		}
		if err := nx.Verify(&testZoneKey(t).PublicKey); err != nil {
			t.Fatalf("denial signature: %v", err)
		}

		// A forged value must not verify against the real signature, and
		// a denial cannot be replayed as a positive answer.
		forged := *a
		forged.Value = []byte("192.0.2.66")
		if err := forged.Verify(&testZoneKey(t).PublicKey); err == nil {
			t.Fatal("tampered value verified")
		}
		flipped := *nx
		flipped.Status = StatusNoError
		if err := flipped.Verify(&testZoneKey(t).PublicKey); err == nil {
			t.Fatal("status flip verified")
		}
	})
}

// TestFragQuery: a fragmented query parks the worker mid-invocation
// (ack received, no answer yet) and resolves once the continuation
// arrives.
func TestFragQuery(t *testing.T) {
	startResolver(t, Config{Slots: 2, IdleTimeout: 300 * time.Millisecond}, func(r *dnsRig) {
		cli, err := r.k.Net.DialPacket()
		if err != nil {
			t.Fatal(err)
		}
		fq, err := StartFrag(cli, "dns:53", "mail.example", 4)
		if err != nil {
			t.Fatal(err)
		}
		if s := r.rt.Snapshot(); s.Inflight != 1 || s.Pool.Busy != 1 {
			t.Fatalf("held flow: inflight=%d busy=%d, want 1/1", s.Inflight, s.Pool.Busy)
		}
		a, err := fq.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != StatusNoError || string(a.Value) != "192.0.2.25" {
			t.Fatalf("answer status=%d value=%q", a.Status, a.Value)
		}
		if err := a.Verify(&testZoneKey(t).PublicKey); err != nil {
			t.Fatalf("signature: %v", err)
		}
	})
}

// TestMalformedNeverReachesGate: malformed datagrams are answered with
// FORMERR and the resolve gate — the signing compartment — is never
// invoked for them.
func TestMalformedNeverReachesGate(t *testing.T) {
	var resolves atomic.Uint64
	cfg := Config{
		Slots:       2,
		IdleTimeout: 150 * time.Millisecond,
		Hooks:       Hooks{Resolve: func() { resolves.Add(1) }},
	}
	startResolver(t, cfg, func(r *dnsRig) {
		cli, err := r.k.Net.DialPacket()
		if err != nil {
			t.Fatal(err)
		}
		malformed := [][]byte{
			{},                              // empty datagram
			{'X', 0, 3, 'a', 'b', 'c'},      // wrong magic
			{'Q', 2, 3, 'a', 'b', 'c'},      // undefined flag bit
			{'Q', 0, 9, 'a'},                // length word past the datagram
			{'Q', 0, 1, 'a', 'b'},           // trailing bytes
			{'Q', 0, 0},                     // empty name
			bytes.Repeat([]byte{0xff}, 700), // binary garbage
		}
		buf := make([]byte, maxDatagram)
		for i, pkt := range malformed {
			if _, err := cli.WriteTo(pkt, "dns:53"); err != nil {
				t.Fatal(err)
			}
			n, _, err := cli.ReadFrom(buf)
			if err != nil {
				t.Fatalf("datagram %d: %v", i, err)
			}
			a, err := parseAnswer(buf[:n])
			if err != nil {
				t.Fatalf("datagram %d: %v", i, err)
			}
			if a.Status != StatusFormErr {
				t.Fatalf("datagram %d: status %d, want FORMERR", i, a.Status)
			}
		}
		if got := resolves.Load(); got != 0 {
			t.Fatalf("resolve gate invoked %d times on malformed input, want 0", got)
		}
		// The same flow still answers a well-formed query afterwards.
		a, err := Query(cli, "dns:53", "www.example")
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != StatusNoError {
			t.Fatalf("status %d after malformed batch, want NOERROR", a.Status)
		}
		if got := resolves.Load(); got != 1 {
			t.Fatalf("resolve gate invoked %d times, want exactly 1", got)
		}
	})
}

// TestMonolithic: the unpartitioned baseline speaks the same wire
// protocol — signed answers, signed denials, FRAG reassembly, FORMERR
// on junk — so a verifying client cannot tell the builds apart.
func TestMonolithic(t *testing.T) {
	key := testZoneKey(t)
	srv, err := NewMonolithic(key, testZone())
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New()
	pc, err := k.Net.ListenPacket("dns:53")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.ServePackets(pc) }()
	defer func() {
		pc.Close()
		if err := <-served; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	cli, err := k.Net.DialPacket()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	a, err := Query(cli, "dns:53", "www.example")
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != StatusNoError || string(a.Value) != "192.0.2.80" {
		t.Fatalf("answer status=%d value=%q", a.Status, a.Value)
	}
	if err := a.Verify(&key.PublicKey); err != nil {
		t.Fatalf("signature: %v", err)
	}

	fq, err := StartFrag(cli, "dns:53", "mail.example", 4)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := fq.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if fa.Status != StatusNoError || string(fa.Value) != "192.0.2.25" {
		t.Fatalf("frag answer status=%d value=%q", fa.Status, fa.Value)
	}
	if err := fa.Verify(&key.PublicKey); err != nil {
		t.Fatalf("frag signature: %v", err)
	}

	// Junk draws FORMERR; an orphan continuation too.
	for _, pkt := range [][]byte{{'Q', 0, 9, 'a'}, {'C', 1, 'x'}} {
		if _, err := cli.WriteTo(pkt, "dns:53"); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, maxDatagram)
		n, _, err := cli.ReadFrom(buf)
		if err != nil {
			t.Fatal(err)
		}
		fe, err := parseAnswer(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if fe.Status != StatusFormErr {
			t.Fatalf("junk %q: status %d, want FORMERR", pkt, fe.Status)
		}
	}
}

// TestZoneRoundTrip: the blob codec inverts.
func TestZoneRoundTrip(t *testing.T) {
	key := testZoneKey(t)
	zone := testZone()
	priv, got, err := parseZone(marshalZone(key, zone))
	if err != nil {
		t.Fatal(err)
	}
	if priv.D.Cmp(key.D) != 0 {
		t.Fatal("private key did not round-trip")
	}
	if len(got) != len(zone) {
		t.Fatalf("records = %d, want %d", len(got), len(zone))
	}
	for i := range zone {
		if got[i] != zone[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], zone[i])
		}
	}
	// Truncations fail, never fault.
	blob := marshalZone(key, zone)
	for cut := 0; cut < len(blob); cut += 7 {
		if _, _, err := parseZone(blob[:cut]); err == nil && cut < len(blob) {
			t.Fatalf("truncated blob (%d bytes) parsed", cut)
		}
	}
}
