package dnsd

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wedge/internal/kernel"
	"wedge/internal/sthread"
)

// fuzzResolver boots one resolver per fuzz process; each fuzz execution
// dials it from a fresh source address (a fresh flow) and sends the
// input as that flow's first datagram.
type fuzzResolver struct {
	k        *kernel.Kernel
	rt       *Resolver
	resolves atomic.Uint64 // resolve-gate invocations (the signing compartment)
}

var (
	fuzzOnce sync.Once
	fuzzRes  *fuzzResolver
)

func startFuzzResolver(f *testing.F) *fuzzResolver {
	fuzzOnce.Do(func() {
		key := testZoneKey(f)
		k := kernel.New()
		app := sthread.Boot(k)
		fz := &fuzzResolver{k: k}
		ready := make(chan struct{})
		go func() {
			err := app.Main(func(root *sthread.Sthread) {
				rt, err := NewPooled(root, key, testZone(), Config{
					Slots: 4,
					// Short window: flows parked by FRAG inputs give their
					// slots back quickly between executions.
					IdleTimeout: 100 * time.Millisecond,
					Hooks:       Hooks{Resolve: func() { fz.resolves.Add(1) }},
				})
				if err != nil {
					panic(err)
				}
				fz.rt = rt
				pc, err := root.Task.ListenPacket("dns:53")
				if err != nil {
					panic(err)
				}
				close(ready)
				rt.ServePackets(pc)
			})
			if err != nil {
				panic(err)
			}
		}()
		<-ready
		fuzzRes = fz
	})
	return fuzzRes
}

// FuzzDNSQuery feeds arbitrary first datagrams to the live worker
// compartment — the untrusted parser of §2, datagram edition. The
// properties fuzzed for: the worker never faults (Snapshot.Failed stays
// zero: a parser crash would be an sthread death the runtime counts as
// a failed flow), every first datagram draws exactly one reply (an 'A'
// ack, an 'R' answer, or an 'R' REFUSED under load — never silence, so
// the read below can never hang), and the signing compartment is
// unreachable on malformed input (a datagram parseQuery rejects never
// moves the resolve-gate counter).
func FuzzDNSQuery(f *testing.F) {
	seeds := [][]byte{
		append([]byte{'Q', 0, 11}, "www.example"...),  // resolves
		append([]byte{'Q', 0, 12}, "nope.example"...), // signed denial
		append([]byte{'Q', 1, 4}, "mail"...),          // FRAG first half
		{},                                            // empty datagram
		{'Q'},                                         // truncated header
		{'Q', 0, 0},                                   // empty name
		{'Q', 0, 255},                                 // length word past the datagram
		{'Q', 0, 1, 'a', 'b'},                         // trailing bytes
		{'Q', 2, 3, 'a', 'b', 'c'},                    // undefined flag bit
		{'C', 3, 'a', 'b', 'c'},                       // continuation with no query
		{'R', 0, 0, 0, 0, 0, 0},                       // an answer, reflected
		{0xff, 0xfe, 0xfd},                            // binary garbage
		append([]byte{'Q', 0, 3}, 0, 0xff, 0x80),      // name with wild bytes
	}
	for _, s := range seeds {
		f.Add(s)
	}
	fz := startFuzzResolver(f)

	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > maxDatagram {
			input = input[:maxDatagram] // the transport would truncate anyway
		}
		_, _, wellFormed := parseQuery(input)
		before := fz.resolves.Load()

		pc, err := fz.k.Net.DialPacket()
		if err != nil {
			t.Fatal(err)
		}
		defer pc.Close()
		if _, err := pc.WriteTo(input, "dns:53"); err != nil {
			t.Fatalf("write: %v", err)
		}
		buf := make([]byte, maxDatagram)
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		switch {
		case n == 1 && buf[0] == 'A':
			// FRAG ack; the parked worker expires on its own.
		case n >= 3 && buf[0] == 'R':
			a, err := parseAnswer(buf[:n])
			if err != nil {
				t.Fatalf("unparseable answer to %q: %v", input, err)
			}
			if !wellFormed {
				if a.Status != StatusFormErr && a.Status != StatusRefused {
					t.Fatalf("malformed %q answered with status %d", input, a.Status)
				}
				if got := fz.resolves.Load(); got != before {
					t.Fatalf("malformed %q reached the resolve gate (%d invocations)", input, got-before)
				}
			}
		default:
			t.Fatalf("reply %q to %q is neither ack nor answer", buf[:n], input)
		}
		if s := fz.rt.Snapshot(); s.Failed != 0 {
			t.Fatalf("worker compartment died: %d failed flows (input %q)", s.Failed, input)
		}
	})
}
