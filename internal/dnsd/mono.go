// The unpartitioned baseline resolver: parse, lookup, and signing all
// in one protection domain, so a parser compromise hands the attacker
// the zone key. It serves the identical wire protocol (FRAG included)
// as the pooled wedge, which makes the bench ladder's mono/pooled
// contrast a measurement of the partitioning machinery alone.

package dnsd

import (
	"crypto/rsa"
	"errors"
	"fmt"

	"wedge/internal/netsim"
)

// Monolithic is the no-isolation resolver build — the datagram analogue
// of httpd.NewMonolithic: one loop, no compartments, no flows, no
// expiry. Not safe for concurrent ServePackets calls; it serves one
// socket.
type Monolithic struct {
	key     *rsa.PrivateKey
	zone    []Record
	pending map[string][]byte // source address -> parked FRAG first half
}

// NewMonolithic validates the zone exactly as NewPooled does and builds
// the baseline server.
func NewMonolithic(key *rsa.PrivateKey, zone []Record) (*Monolithic, error) {
	if err := validateZone(zone); err != nil {
		return nil, err
	}
	return &Monolithic{key: key, zone: zone, pending: make(map[string][]byte)}, nil
}

// ServePackets answers query datagrams until the socket closes.
func (m *Monolithic) ServePackets(pc *netsim.PacketConn) error {
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, netsim.ErrClosed) {
				return nil
			}
			return err
		}
		if reply := m.handle(buf[:n], from); reply != nil {
			if _, err := pc.WriteTo(reply, from); err != nil {
				if errors.Is(err, netsim.ErrClosed) {
					return nil
				}
				return err
			}
		}
	}
}

// handle maps one datagram to its reply, mirroring workerEntry's
// semantics: FRAG halves park per source address, malformed input is
// FORMERR, everything else resolves against the zone.
func (m *Monolithic) handle(pkt []byte, from string) []byte {
	if len(pkt) > 0 && pkt[0] == 'C' {
		half, parked := m.pending[from]
		delete(m.pending, from)
		part, ok := parseCont(pkt)
		if !parked || !ok || len(half)+len(part) == 0 || len(half)+len(part) > MaxName {
			return appendAnswer(nil, StatusFormErr, nil, nil, nil)
		}
		return m.answer(append(half, part...))
	}
	name, frag, ok := parseQuery(pkt)
	if !ok {
		return appendAnswer(nil, StatusFormErr, nil, nil, nil)
	}
	if frag {
		m.pending[from] = name
		return []byte{'A'}
	}
	if len(name) == 0 {
		return appendAnswer(nil, StatusFormErr, nil, nil, nil)
	}
	return m.answer(name)
}

// answer looks the reassembled name up and signs the verdict — the same
// signedMessage the pooled build's resolve gate composes, so the two
// builds are wire-indistinguishable to a verifying client.
func (m *Monolithic) answer(name []byte) []byte {
	status := StatusNXDomain
	var value []byte
	for _, rec := range m.zone {
		if rec.Name == string(name) {
			status = StatusNoError
			value = []byte(rec.Value)
			break
		}
	}
	sig, err := signAnswer(m.key, status, name, value)
	if err != nil {
		return appendAnswer(nil, StatusServFail, name, nil, nil)
	}
	return appendAnswer(nil, status, name, value, sig)
}

// validateZone rejects records the wire format cannot carry.
func validateZone(zone []Record) error {
	for _, rec := range zone {
		if len(rec.Name) == 0 || len(rec.Name) > MaxName {
			return fmt.Errorf("dnsd: zone name %q: length %d outside [1,%d]", rec.Name, len(rec.Name), MaxName)
		}
		if len(rec.Value) > MaxValue {
			return fmt.Errorf("dnsd: zone value for %q: length %d exceeds %d", rec.Name, len(rec.Value), MaxValue)
		}
	}
	return nil
}
