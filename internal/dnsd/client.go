// Client helpers: build query datagrams, parse answers, verify the
// zone signature.
package dnsd

import (
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"wedge/internal/netsim"
)

// Answer is one parsed answer datagram.
type Answer struct {
	Status byte
	Name   []byte
	Value  []byte
	Sig    []byte
}

// Verify checks the zone signature over (status, name, value). Only
// NOERROR and NXDOMAIN answers are signed — the resolve gate signs
// answers and denials; REFUSED/FORMERR/SERVFAIL never saw the zone.
func (a *Answer) Verify(pub *rsa.PublicKey) error {
	if a.Status != StatusNoError && a.Status != StatusNXDomain {
		return fmt.Errorf("dnsd: status %d carries no signature", a.Status)
	}
	sum := sha256.Sum256(signedMessage(a.Status, a.Name, a.Value))
	return rsa.VerifyPKCS1v15(pub, 0, sum[:], a.Sig)
}

// Query resolves name in one round trip: one query datagram out, one
// answer datagram back.
func Query(pc *netsim.PacketConn, server, name string) (*Answer, error) {
	if len(name) == 0 || len(name) > MaxName {
		return nil, fmt.Errorf("dnsd: query name length %d outside [1,%d]", len(name), MaxName)
	}
	q := append([]byte{'Q', 0, byte(len(name))}, name...)
	if _, err := pc.WriteTo(q, server); err != nil {
		return nil, err
	}
	return readAnswer(pc)
}

// FragQuery is a fragmented query mid-flight: the first half sent and
// acked, the continuation pending. The server's worker is parked inside
// its invocation until Finish (or until the flow expires).
type FragQuery struct {
	pc     *netsim.PacketConn
	server string
	rest   []byte
}

// StartFrag sends the first split bytes of name with the FRAG flag and
// waits for the server's ack.
func StartFrag(pc *netsim.PacketConn, server, name string, split int) (*FragQuery, error) {
	if len(name) == 0 || len(name) > MaxName {
		return nil, fmt.Errorf("dnsd: query name length %d outside [1,%d]", len(name), MaxName)
	}
	if split <= 0 || split >= len(name) {
		return nil, fmt.Errorf("dnsd: split %d outside (0,%d)", split, len(name))
	}
	q := append([]byte{'Q', flagFrag, byte(split)}, name[:split]...)
	if _, err := pc.WriteTo(q, server); err != nil {
		return nil, err
	}
	buf := make([]byte, maxDatagram)
	n, _, err := pc.ReadFrom(buf)
	if err != nil {
		return nil, err
	}
	if n != 1 || buf[0] != 'A' {
		if a, err := parseAnswer(buf[:n]); err == nil {
			return nil, fmt.Errorf("dnsd: fragmented query answered with status %d before continuation", a.Status)
		}
		return nil, fmt.Errorf("dnsd: bad ack %q", buf[:n])
	}
	return &FragQuery{pc: pc, server: server, rest: []byte(name[split:])}, nil
}

// Finish sends the continuation and reads the answer.
func (q *FragQuery) Finish() (*Answer, error) {
	c := append([]byte{'C', byte(len(q.rest))}, q.rest...)
	if _, err := q.pc.WriteTo(c, q.server); err != nil {
		return nil, err
	}
	return readAnswer(q.pc)
}

func readAnswer(pc *netsim.PacketConn) (*Answer, error) {
	buf := make([]byte, maxDatagram)
	n, _, err := pc.ReadFrom(buf)
	if err != nil {
		return nil, err
	}
	return parseAnswer(buf[:n])
}

// parseAnswer validates one answer datagram, strictly: every length
// consistent, nothing trailing.
func parseAnswer(pkt []byte) (*Answer, error) {
	if len(pkt) < 3 || pkt[0] != 'R' {
		return nil, fmt.Errorf("dnsd: not an answer datagram (%d bytes)", len(pkt))
	}
	a := &Answer{Status: pkt[1]}
	nl := int(pkt[2])
	p := pkt[3:]
	if len(p) < nl+2 {
		return nil, fmt.Errorf("dnsd: answer truncated in name")
	}
	a.Name = append([]byte(nil), p[:nl]...)
	p = p[nl:]
	vl := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < vl+2 {
		return nil, fmt.Errorf("dnsd: answer truncated in value")
	}
	a.Value = append([]byte(nil), p[:vl]...)
	p = p[vl:]
	sl := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) != sl {
		return nil, fmt.Errorf("dnsd: answer signature length %d, have %d bytes", sl, len(p))
	}
	a.Sig = append([]byte(nil), p...)
	return a, nil
}
