package dnsd

import (
	"fmt"
	"testing"
	"time"

	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/serve/servetest"
	"wedge/internal/sthread"
)

// TestServeConformance runs the datagram conformance battery against
// the resolver. The residue window is the slot's value/signature area —
// principal A's record value and signed answer, which the pool must
// scrub before principal B's worker invocation can observe them. The
// short IdleTimeout is what the battery requires: every flow ends by a
// real wheel expiry.
func TestServeConformance(t *testing.T) {
	key := testZoneKey(t)
	zone := append(testZone(), Record{Name: "secret.example", Value: "zone-secret-hunter2"})

	dialQuery := func(k *kernel.Kernel, name string) (*netsim.PacketConn, *Answer, error) {
		pc, err := k.Net.DialPacket()
		if err != nil {
			return nil, nil, err
		}
		a, err := Query(pc, "dns:53", name)
		if err != nil {
			pc.Close()
			return nil, nil, err
		}
		return pc, a, nil
	}

	servetest.RunPacket(t, servetest.PacketApp{
		Name: "dnsd",
		Addr: "dns:53",
		New: func(root *sthread.Sthread, slots int, probe servetest.Probe) (servetest.PacketRuntime, error) {
			hooks := Hooks{}
			if probe != nil {
				hooks.Worker = func(w *sthread.Sthread, ctx *ConnContext) { probe(w, ctx.ArgAddr) }
			}
			return NewPooled(root, key, zone, Config{
				Slots:       slots,
				IdleTimeout: 250 * time.Millisecond,
				Hooks:       hooks,
			})
		},
		Session: func(k *kernel.Kernel) ([]byte, error) {
			pc, a, err := dialQuery(k, "secret.example")
			if err != nil {
				return nil, err
			}
			defer pc.Close()
			if a.Status != StatusNoError {
				return nil, fmt.Errorf("status %d, want NOERROR", a.Status)
			}
			if err := a.Verify(&key.PublicKey); err != nil {
				return nil, err
			}
			return a.Value, nil // the record value resident in the slot
		},
		Hold: func(k *kernel.Kernel) (*servetest.Held, error) {
			pc, err := k.Net.DialPacket()
			if err != nil {
				return nil, err
			}
			fq, err := StartFrag(pc, "dns:53", "www.example", 4)
			if err != nil {
				pc.Close()
				return nil, err
			}
			return &servetest.Held{
				Finish: func() error {
					defer pc.Close()
					a, err := fq.Finish()
					if err != nil {
						return err
					}
					if a.Status != StatusNoError {
						return fmt.Errorf("held query: status %d, want NOERROR", a.Status)
					}
					return a.Verify(&key.PublicKey)
				},
				Abandon: func() error { return pc.Close() },
			}, nil
		},
		Schema: GateSchema(),
		// The zone blob's tag outlives the runtime.
		StaticTags: 1,
	})
}
