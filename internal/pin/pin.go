// Package pin is the dynamic-instrumentation substrate standing in for
// Intel Pin (§4.2). Simulated programs execute against a Proc, which plays
// the role of the instrumented process: it owns the program's simulated
// memory, tracks the live call stack by instrumenting "every function entry
// and exit point", and exposes load/store/malloc/free events to tools such
// as Crowbar's cb-log.
//
// Three run modes reproduce the three bars of Figure 9:
//
//   - ModeNative: events are dispatched to no one; only the program's own
//     work runs.
//   - ModePin: each function body is "translated" the first time it is
//     fetched (the basic-block compilation cost Pin pays once) and every
//     subsequent execution pays a small dispatch overhead. No per-access
//     work is done. This models Pin with no instrumentation.
//   - ModeCBLog: as ModePin, plus every memory load and store invokes the
//     attached tool's callbacks with a full backtrace, the per-access cost
//     that dominates cb-log's 27x-over-Pin mean slowdown.
//
// The relative costs are mechanical: programs with high memory-access
// density per function call (tight kernels like h264ref's motion search)
// see large cb-log/Pin ratios; call- and I/O-heavy programs (ssh) see
// small ones — the same mechanism the paper reports.
package pin

import (
	"fmt"
	"sync"

	"wedge/internal/tags"
	"wedge/internal/vm"
)

// Mode selects the instrumentation level.
type Mode int

const (
	// ModeNative runs the program without any instrumentation.
	ModeNative Mode = iota
	// ModePin runs under the translation engine with no tool attached.
	ModePin
	// ModeCBLog runs with a tool receiving every memory access.
	ModeCBLog
)

func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModePin:
		return "pin"
	case ModeCBLog:
		return "crowbar"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// SegKind classifies a memory item the way cb-log reports it (§4.2):
// globals by variable name, stack by owning function, heap by allocation
// backtrace.
type SegKind int

const (
	// SegGlobal is a global variable.
	SegGlobal SegKind = iota
	// SegStack is a function's stack frame.
	SegStack
	// SegHeap is a heap allocation.
	SegHeap
)

func (k SegKind) String() string {
	switch k {
	case SegGlobal:
		return "global"
	case SegStack:
		return "stack"
	case SegHeap:
		return "heap"
	}
	return "?"
}

// Frame is one entry of the tracked backtrace: function name plus the
// source coordinates of its call site, as a debugger would recover from
// saved frame pointers.
type Frame struct {
	Func string
	File string
	Line int
}

func (f Frame) String() string { return fmt.Sprintf("%s (%s:%d)", f.Func, f.File, f.Line) }

// Tool receives instrumentation events. cb-log implements it; tests may
// implement lighter ones.
type Tool interface {
	// OnEnter fires at function entry, after the frame is pushed.
	OnEnter(p *Proc, bt []Frame)
	// OnExit fires at function exit, before the frame is popped.
	OnExit(p *Proc, bt []Frame)
	// OnAccess fires for every load and store with the live backtrace,
	// the segment the address falls in (nil if unknown), and the offset
	// within it.
	OnAccess(p *Proc, access vm.Access, addr vm.Addr, size int, seg *Segment, off uint64, bt []Frame)
	// OnMalloc fires after an allocation, with the allocation backtrace.
	OnMalloc(p *Proc, seg *Segment, bt []Frame)
	// OnFree fires before a heap segment is retired.
	OnFree(p *Proc, seg *Segment)
}

// Segment is one tracked memory item: a global, a live stack frame, or a
// heap allocation. cb-log keeps "a list of segments (base and limit)" and
// reports the segment plus offset for each access.
type Segment struct {
	Kind SegKind
	// Name is the variable name for globals and the function name for
	// stack frames; for heap segments it is a short label derived from
	// the allocation site.
	Name string
	Base vm.Addr
	Size int
	// AllocSite is the full backtrace of the original malloc, recorded
	// for heap segments (§4.2).
	AllocSite []Frame
}

// Contains reports whether addr falls inside the segment.
func (s *Segment) Contains(addr vm.Addr) bool {
	return addr >= s.Base && addr < s.Base+vm.Addr(s.Size)
}

// Describe renders the segment the way cb-log names items: globals by
// name, stack by frame, heap by allocation site.
func (s *Segment) Describe() string {
	switch s.Kind {
	case SegGlobal:
		return "global:" + s.Name
	case SegStack:
		return "stack:" + s.Name
	default:
		return "heap:" + s.Name
	}
}

// Proc is one simulated instrumented process.
type Proc struct {
	Mode Mode

	// AS is the program's memory. Workloads allocate from a private heap
	// carved out of it.
	AS *vm.AddressSpace

	tool Tool

	mu       sync.Mutex
	stack    []Frame
	segments []*Segment // sorted by Base
	heapBase vm.Addr

	// translated tracks which functions the translation engine has
	// already compiled; first execution pays translationWork.
	translated map[string]struct{}

	// Counters for tests and the Figure 9 harness.
	Calls       uint64
	Loads       uint64
	Stores      uint64
	Translated  uint64
	InstrETotal uint64 // total instrumentation events delivered

	// sink absorbs the simulated translation/dispatch work so the
	// compiler cannot elide it.
	sink uint64
}

// Work factors for the translation engine. They are deliberately simple
// spin loops: the point is that the engine's costs scale with the same
// quantities Pin's do (translations once per function, dispatch per call,
// tool work per access).
const (
	translationWork = 5000 // first-fetch compilation of a function body
	dispatchWork    = 600  // per-call overhead of running translated code
)

// heapSize is the arena carved for each Proc's program heap.
const heapSize = 8 << 20

// NewProc creates an instrumented process in the given mode with an empty
// address space and a private program heap.
func NewProc(mode Mode) (*Proc, error) {
	as := vm.NewAddressSpace()
	base, err := as.MapAnon(heapSize, vm.PermRW)
	if err != nil {
		return nil, err
	}
	if err := tags.InitHeap(as, base, heapSize); err != nil {
		return nil, err
	}
	return &Proc{
		Mode:       mode,
		AS:         as,
		heapBase:   base,
		translated: make(map[string]struct{}),
	}, nil
}

// Attach connects a tool (cb-log). Only ModeCBLog delivers access events;
// enter/exit/malloc events are delivered in any mode with a tool attached,
// which the trace-driven tests use.
func (p *Proc) Attach(t Tool) { p.tool = t }

// Backtrace returns a copy of the live backtrace, innermost frame last.
func (p *Proc) Backtrace() []Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Frame(nil), p.stack...)
}

// spin performs n units of simulated engine work.
func (p *Proc) spin(n int) {
	s := p.sink
	for i := 0; i < n; i++ {
		s = s*1664525 + 1013904223
	}
	p.sink = s
}

// Call executes body as the function fn declared at file:line: the entry
// and exit instrumentation of §4.2. In instrumented modes, the first
// execution of fn pays the translation cost and every execution pays the
// dispatch cost.
func (p *Proc) Call(fn, file string, line int, body func()) {
	p.Calls++
	if p.Mode != ModeNative {
		if _, ok := p.translated[fn]; !ok {
			p.translated[fn] = struct{}{}
			p.Translated++
			p.spin(translationWork)
		}
		p.spin(dispatchWork)
	}
	frame := Frame{Func: fn, File: file, Line: line}
	p.mu.Lock()
	p.stack = append(p.stack, frame)
	bt := p.stack
	p.mu.Unlock()

	if p.tool != nil {
		p.tool.OnEnter(p, bt)
		p.InstrETotal++
	}
	// Stack frame segment: created on entry, retired on exit, so stack
	// accesses classify to "the function in whose stack frame the access
	// falls".
	defer func() {
		if p.tool != nil {
			p.mu.Lock()
			bt := p.stack
			p.mu.Unlock()
			p.tool.OnExit(p, bt)
			p.InstrETotal++
		}
		p.mu.Lock()
		p.stack = p.stack[:len(p.stack)-1]
		p.mu.Unlock()
	}()
	body()
}

// DeclareGlobal registers a named global variable of the given size,
// allocating backing memory for it. Crowbar identifies global accesses "by
// variable name and source code location" via debugging symbols; this is
// the simulated equivalent of that symbol table entry.
func (p *Proc) DeclareGlobal(name string, size int) (vm.Addr, error) {
	n := size
	if n < 1 {
		n = 1
	}
	base, err := p.AS.MapAnon((n+vm.PageSize-1)&^(vm.PageSize-1), vm.PermRW)
	if err != nil {
		return 0, err
	}
	p.addSegment(&Segment{Kind: SegGlobal, Name: name, Base: base, Size: n})
	return base, nil
}

// StackVar allocates size bytes attributed to the current function's stack
// frame. (Simulated stacks are carved from the heap arena but classified
// as stack segments named after the owning function.)
func (p *Proc) StackVar(size int) (vm.Addr, error) {
	a, err := tags.HeapAlloc(p.AS, p.heapBase, size)
	if err != nil {
		return 0, err
	}
	fn := "?"
	p.mu.Lock()
	if len(p.stack) > 0 {
		fn = p.stack[len(p.stack)-1].Func
	}
	p.mu.Unlock()
	p.addSegment(&Segment{Kind: SegStack, Name: fn, Base: a, Size: size})
	return a, nil
}

// FreeStackVar retires a stack variable at function exit.
func (p *Proc) FreeStackVar(a vm.Addr) error {
	p.removeSegment(a)
	return tags.HeapFree(p.AS, p.heapBase, a)
}

// Malloc allocates from the program heap, instrumented as §4.2 requires:
// "we instrument every malloc and free, and create a segment for each
// allocated buffer", remembering the full allocation backtrace.
func (p *Proc) Malloc(size int) (vm.Addr, error) {
	a, err := tags.HeapAlloc(p.AS, p.heapBase, size)
	if err != nil {
		return 0, err
	}
	bt := p.Backtrace()
	name := "anon"
	if len(bt) > 0 {
		f := bt[len(bt)-1]
		name = fmt.Sprintf("%s:%d", f.Func, f.Line)
	}
	seg := &Segment{Kind: SegHeap, Name: name, Base: a, Size: size, AllocSite: bt}
	p.addSegment(seg)
	if p.tool != nil {
		p.tool.OnMalloc(p, seg, bt)
		p.InstrETotal++
	}
	return a, nil
}

// Free releases a Malloc'd buffer and retires its segment.
func (p *Proc) Free(a vm.Addr) error {
	p.mu.Lock()
	var seg *Segment
	for _, s := range p.segments {
		if s.Base == a && s.Kind == SegHeap {
			seg = s
			break
		}
	}
	p.mu.Unlock()
	if seg != nil && p.tool != nil {
		p.tool.OnFree(p, seg)
		p.InstrETotal++
	}
	p.removeSegment(a)
	return tags.HeapFree(p.AS, p.heapBase, a)
}

func (p *Proc) addSegment(s *Segment) {
	p.mu.Lock()
	p.segments = append(p.segments, s)
	p.mu.Unlock()
}

func (p *Proc) removeSegment(base vm.Addr) {
	p.mu.Lock()
	for i, s := range p.segments {
		if s.Base == base {
			p.segments = append(p.segments[:i], p.segments[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// findSegment locates the segment containing addr, if tracked.
func (p *Proc) findSegment(addr vm.Addr) *Segment {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.segments) - 1; i >= 0; i-- {
		if p.segments[i].Contains(addr) {
			return p.segments[i]
		}
	}
	return nil
}

// access dispatches one load/store event in ModeCBLog.
func (p *Proc) access(acc vm.Access, addr vm.Addr, size int) {
	if p.Mode == ModeCBLog && p.tool != nil {
		seg := p.findSegment(addr)
		var off uint64
		if seg != nil {
			off = uint64(addr - seg.Base)
		}
		p.mu.Lock()
		bt := p.stack
		p.mu.Unlock()
		p.tool.OnAccess(p, acc, addr, size, seg, off, bt)
		p.InstrETotal++
	}
}

// Load8 reads one byte.
func (p *Proc) Load8(a vm.Addr) byte {
	p.Loads++
	p.access(vm.AccessRead, a, 1)
	v, err := p.AS.Load8(a)
	if err != nil {
		panic(err)
	}
	return v
}

// Store8 writes one byte.
func (p *Proc) Store8(a vm.Addr, v byte) {
	p.Stores++
	p.access(vm.AccessWrite, a, 1)
	if err := p.AS.Store8(a, v); err != nil {
		panic(err)
	}
}

// Load32 reads a 32-bit word.
func (p *Proc) Load32(a vm.Addr) uint32 {
	p.Loads++
	p.access(vm.AccessRead, a, 4)
	v, err := p.AS.Load32(a)
	if err != nil {
		panic(err)
	}
	return v
}

// Store32 writes a 32-bit word.
func (p *Proc) Store32(a vm.Addr, v uint32) {
	p.Stores++
	p.access(vm.AccessWrite, a, 4)
	if err := p.AS.Store32(a, v); err != nil {
		panic(err)
	}
}

// Load64 reads a 64-bit word.
func (p *Proc) Load64(a vm.Addr) uint64 {
	p.Loads++
	p.access(vm.AccessRead, a, 8)
	v, err := p.AS.Load64(a)
	if err != nil {
		panic(err)
	}
	return v
}

// Store64 writes a 64-bit word.
func (p *Proc) Store64(a vm.Addr, v uint64) {
	p.Stores++
	p.access(vm.AccessWrite, a, 8)
	if err := p.AS.Store64(a, v); err != nil {
		panic(err)
	}
}

// ReadBytes reads a byte range (counted as one access of len(buf) bytes,
// as a rep-mov would be).
func (p *Proc) ReadBytes(a vm.Addr, buf []byte) {
	p.Loads++
	p.access(vm.AccessRead, a, len(buf))
	if err := p.AS.Read(a, buf); err != nil {
		panic(err)
	}
}

// WriteBytes writes a byte range.
func (p *Proc) WriteBytes(a vm.Addr, buf []byte) {
	p.Stores++
	p.access(vm.AccessWrite, a, len(buf))
	if err := p.AS.Write(a, buf); err != nil {
		panic(err)
	}
}
