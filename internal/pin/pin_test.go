package pin

import (
	"testing"

	"wedge/internal/vm"
)

// recorder captures events for assertions.
type recorder struct {
	enters, exits int
	accesses      []string
	mallocs       int
	frees         int
	lastBT        []Frame
}

func (r *recorder) OnEnter(_ *Proc, bt []Frame) { r.enters++; r.lastBT = append([]Frame(nil), bt...) }
func (r *recorder) OnExit(_ *Proc, bt []Frame)  { r.exits++ }
func (r *recorder) OnAccess(_ *Proc, a vm.Access, _ vm.Addr, _ int, seg *Segment, _ uint64, _ []Frame) {
	d := "nil"
	if seg != nil {
		d = seg.Describe()
	}
	r.accesses = append(r.accesses, a.String()+" "+d)
}
func (r *recorder) OnMalloc(*Proc, *Segment, []Frame) { r.mallocs++ }
func (r *recorder) OnFree(*Proc, *Segment)            { r.frees++ }

func TestBacktraceTracking(t *testing.T) {
	p, err := NewProc(ModeCBLog)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	p.Attach(rec)

	var depth2 []Frame
	p.Call("outer", "o.c", 1, func() {
		p.Call("inner", "i.c", 2, func() {
			depth2 = p.Backtrace()
		})
	})
	if len(depth2) != 2 || depth2[0].Func != "outer" || depth2[1].Func != "inner" {
		t.Fatalf("backtrace = %v", depth2)
	}
	if got := p.Backtrace(); len(got) != 0 {
		t.Fatalf("stack not unwound: %v", got)
	}
	if rec.enters != 2 || rec.exits != 2 {
		t.Fatalf("enters=%d exits=%d", rec.enters, rec.exits)
	}
}

func TestSegmentClassification(t *testing.T) {
	p, _ := NewProc(ModeCBLog)
	rec := &recorder{}
	p.Attach(rec)

	g, _ := p.DeclareGlobal("counter", 8)
	var h vm.Addr
	p.Call("f", "f.c", 1, func() {
		h, _ = p.Malloc(32)
		p.Store64(g, 1)
		p.Store64(h, 2)
		sv, _ := p.StackVar(8)
		p.Load64(sv)
		p.FreeStackVar(sv)
	})
	want := []string{"write global:counter", "write heap:f:1", "read stack:f"}
	if len(rec.accesses) != len(want) {
		t.Fatalf("accesses = %v", rec.accesses)
	}
	for i, w := range want {
		if rec.accesses[i] != w {
			t.Fatalf("access %d = %q, want %q", i, rec.accesses[i], w)
		}
	}
	if rec.mallocs != 1 {
		t.Fatalf("mallocs = %d", rec.mallocs)
	}
	if err := p.Free(h); err != nil {
		t.Fatal(err)
	}
	if rec.frees != 1 {
		t.Fatalf("frees = %d", rec.frees)
	}
}

func TestFreedSegmentNoLongerClassified(t *testing.T) {
	p, _ := NewProc(ModeCBLog)
	rec := &recorder{}
	p.Attach(rec)
	h, _ := p.Malloc(16)
	p.Free(h)
	if seg := p.findSegment(h); seg != nil {
		t.Fatalf("freed segment still tracked: %v", seg.Describe())
	}
}

func TestMemoryRoundTrips(t *testing.T) {
	p, _ := NewProc(ModeNative)
	a, err := p.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	p.Store8(a, 0xAB)
	if v := p.Load8(a); v != 0xAB {
		t.Fatalf("Load8 = %#x", v)
	}
	p.Store32(a+4, 0xDEADBEEF)
	if v := p.Load32(a + 4); v != 0xDEADBEEF {
		t.Fatalf("Load32 = %#x", v)
	}
	p.Store64(a+8, 0x0123456789ABCDEF)
	if v := p.Load64(a + 8); v != 0x0123456789ABCDEF {
		t.Fatalf("Load64 = %#x", v)
	}
	buf := []byte("hello")
	p.WriteBytes(a+16, buf)
	got := make([]byte, 5)
	p.ReadBytes(a+16, got)
	if string(got) != "hello" {
		t.Fatalf("ReadBytes = %q", got)
	}
	if p.Loads != 4 || p.Stores != 4 {
		t.Fatalf("Loads=%d Stores=%d", p.Loads, p.Stores)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeNative.String() != "native" || ModePin.String() != "pin" || ModeCBLog.String() != "crowbar" {
		t.Fatal("mode strings")
	}
	if SegGlobal.String() != "global" || SegStack.String() != "stack" || SegHeap.String() != "heap" {
		t.Fatal("segkind strings")
	}
}

// TestInstrumentationOverheadOrdering is the mechanical heart of Figure 9:
// for the same program, native < pin < cblog in instrumentation work.
func TestInstrumentationOverheadOrdering(t *testing.T) {
	run := func(mode Mode) *Proc {
		p, _ := NewProc(mode)
		if mode == ModeCBLog {
			p.Attach(&recorder{})
		}
		g, _ := p.DeclareGlobal("state", 4096)
		for i := 0; i < 50; i++ {
			p.Call("kernel", "k.c", 1, func() {
				for j := 0; j < 100; j++ {
					p.Store64(g+vm.Addr(j*8%4000), uint64(j))
					p.Load64(g + vm.Addr(j*8%4000))
				}
			})
		}
		return p
	}
	native := run(ModeNative)
	pinp := run(ModePin)
	cblog := run(ModeCBLog)
	if native.Translated != 0 {
		t.Fatal("native translated code")
	}
	if pinp.Translated == 0 {
		t.Fatal("pin mode translated nothing")
	}
	if cblog.InstrETotal <= pinp.InstrETotal {
		t.Fatalf("cblog events (%d) not above pin (%d)", cblog.InstrETotal, pinp.InstrETotal)
	}
}
