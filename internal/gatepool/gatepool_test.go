package gatepool

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// withRoot boots a fresh system and runs fn as the root sthread.
func withRoot(t *testing.T, fn func(root *sthread.Sthread)) {
	t.Helper()
	app := sthread.Boot(kernel.New())
	if err := app.Main(fn); err != nil {
		t.Fatalf("main: %v", err)
	}
}

// echoGate increments the word at arg+0 into arg+8.
func echoGate(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
	g.Store64(arg+8, g.Load64(arg)+1)
	return 1
}

// probeGate attempts to read the address named at arg+0, reporting whether
// the read was permitted. Used to show slots do not share argument memory.
func probeGate(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
	target := vm.Addr(g.Load64(arg))
	var b [8]byte
	if err := g.TryRead(target, b[:]); err != nil {
		return 0
	}
	return 1
}

// faultyGate faults (touches unmapped memory) when arg+0 holds 1,
// terminating the gate sthread; otherwise behaves like echoGate.
func faultyGate(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
	if g.Load64(arg) == 1 {
		g.Load64(vm.Addr(8)) // unmapped: protection fault kills the gate
	}
	return echoGate(g, arg, 0)
}

func newTestPool(t *testing.T, root *sthread.Sthread, slots int, entry sthread.GateFunc, noScrub bool) *Pool {
	t.Helper()
	p, err := New(root, Config{
		Name:    "test",
		Slots:   slots,
		Gates:   []GateDef{{Name: "gate", SC: policy.New(), Entry: entry}},
		NoScrub: noScrub,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestPoolCallRoundTrip(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		p := newTestPool(t, root, 2, echoGate, false)
		defer p.Close()
		l, err := p.Acquire("alice")
		if err != nil {
			t.Fatal(err)
		}
		root.Store64(l.Arg, 41)
		ret, err := l.Call("gate", root, l.Arg)
		if err != nil || ret != 1 {
			t.Fatalf("Call = %v, %v", ret, err)
		}
		if got := root.Load64(l.Arg + 8); got != 42 {
			t.Fatalf("gate echoed %d, want 42", got)
		}
		l.Release()
		st := p.Stats()
		if st.Acquires != 1 || st.Slots != 2 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

// TestPoolAffinity: a returning principal lands on the same slot, counted
// as an affinity hit, with no scrub after the first lease.
func TestPoolAffinity(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		p := newTestPool(t, root, 4, echoGate, false)
		defer p.Close()
		first, err := p.Acquire("alice")
		if err != nil {
			t.Fatal(err)
		}
		slot := first.Slot
		if !first.Scrubbed {
			t.Error("first lease of a slot should scrub (principal changed from none)")
		}
		first.Release()
		for i := 0; i < 3; i++ {
			l, err := p.Acquire("alice")
			if err != nil {
				t.Fatal(err)
			}
			if l.Slot != slot {
				t.Fatalf("lease %d landed on slot %d, want home slot %d", i, l.Slot, slot)
			}
			if l.Scrubbed || l.Stolen {
				t.Fatalf("affinity lease scrubbed=%v stolen=%v", l.Scrubbed, l.Stolen)
			}
			l.Release()
		}
		st := p.Stats()
		if st.AffinityHits != 3 || st.Steals != 0 {
			t.Fatalf("affinity=%d steals=%d, want 3/0", st.AffinityHits, st.Steals)
		}
	})
}

// TestPoolSlotsShareNoArgumentMemory: each slot's argument block lives in
// its own tag, so a gate leased to one principal cannot read another
// slot's argument block even while both are live.
func TestPoolSlotsShareNoArgumentMemory(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		p := newTestPool(t, root, 2, probeGate, false)
		defer p.Close()
		a, err := p.Acquire("alice")
		if err != nil {
			t.Fatal(err)
		}
		var b *Lease
		for {
			// Find the other slot regardless of where alice hashed.
			if b, err = p.Acquire(fmt.Sprintf("bob-%d", a.Slot)); err != nil {
				t.Fatal(err)
			}
			if b.Slot != a.Slot {
				break
			}
			t.Fatal("two live leases on one slot")
		}
		if a.ArgTag == b.ArgTag {
			t.Fatalf("slots share argument tag %d", a.ArgTag)
		}
		// Slot A's gate may read its own block...
		root.Store64(a.Arg, uint64(a.Arg))
		if ret, err := a.Call("gate", root, a.Arg); err != nil || ret != 1 {
			t.Fatalf("self probe = %v, %v (want readable)", ret, err)
		}
		// ...but not slot B's.
		root.Store64(a.Arg, uint64(b.Arg))
		if ret, err := a.Call("gate", root, a.Arg); err != nil || ret != 0 {
			t.Fatalf("cross-slot probe = %v, %v (want denied)", ret, err)
		}
		a.Release()
		b.Release()
	})
}

// TestPoolScrubBetweenPrincipals: the §3.3 residue channel. With
// scrubbing, a principal leasing a slot another principal used sees only
// zeroes; with NoScrub the stale argument bytes are still there.
func TestPoolScrubBetweenPrincipals(t *testing.T) {
	const secret = 0x5EC12E7
	for _, noScrub := range []bool{false, true} {
		name := "scrub"
		if noScrub {
			name = "noscrub"
		}
		t.Run(name, func(t *testing.T) {
			withRoot(t, func(root *sthread.Sthread) {
				p := newTestPool(t, root, 1, echoGate, noScrub)
				defer p.Close()
				a, err := p.Acquire("alice")
				if err != nil {
					t.Fatal(err)
				}
				root.Store64(a.Arg+16, secret) // sensitive argument residue
				a.Release()

				b, err := p.Acquire("mallory")
				if err != nil {
					t.Fatal(err)
				}
				got := root.Load64(b.Arg + 16)
				if noScrub {
					if b.Scrubbed || got != secret {
						t.Fatalf("NoScrub lease scrubbed=%v residue=%#x, want raw §3.3 exposure", b.Scrubbed, got)
					}
				} else {
					if !b.Scrubbed || got != 0 {
						t.Fatalf("lease scrubbed=%v residue=%#x, want scrubbed zeroes", b.Scrubbed, got)
					}
				}
				b.Release()
			})
		})
	}
}

// TestPoolStealAndQueue: with the home slot held, a second lease for the
// same principal steals an idle slot; with every slot held, Acquire blocks
// and the wait is charged to the home slot's queue depth.
func TestPoolStealAndQueue(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		p := newTestPool(t, root, 2, echoGate, false)
		defer p.Close()
		first, err := p.Acquire("alice")
		if err != nil {
			t.Fatal(err)
		}
		second, err := p.Acquire("alice")
		if err != nil {
			t.Fatal(err)
		}
		if !second.Stolen || second.Slot == first.Slot {
			t.Fatalf("second lease stolen=%v slot=%d (first %d)", second.Stolen, second.Slot, first.Slot)
		}

		got := make(chan *Lease)
		go func() {
			l, err := p.Acquire("alice")
			if err != nil {
				t.Error(err)
			}
			got <- l
		}()
		// Wait until the blocked Acquire is visible in the stats.
		for {
			if st := p.Stats(); st.Waits >= 1 {
				depth := 0
				for _, g := range st.Gates {
					depth += g.QueueDepth
				}
				if depth != 1 {
					t.Fatalf("queue depth = %d, want 1", depth)
				}
				break
			}
		}
		first.Release()
		third := <-got
		if third == nil {
			t.Fatal("blocked acquire returned nil")
		}
		third.Release()
		second.Release()
	})
}

// TestPoolResize: growth adds live slots; shrinking retires them, closing
// busy slots only once their leases release.
func TestPoolResize(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		p := newTestPool(t, root, 1, echoGate, false)
		defer p.Close()
		if err := p.Resize(3); err != nil {
			t.Fatal(err)
		}
		if st := p.Stats(); st.Slots != 3 || st.Grown != 2 {
			t.Fatalf("after grow: %+v", st)
		}

		// Hold every slot, then shrink under the leases.
		var leases []*Lease
		for i := 0; i < 3; i++ {
			l, err := p.Acquire(fmt.Sprintf("p%d", i))
			if err != nil {
				t.Fatal(err)
			}
			leases = append(leases, l)
		}
		if err := p.Resize(1); err != nil {
			t.Fatal(err)
		}
		if st := p.Stats(); st.Slots != 1 || st.Shrunk != 2 {
			t.Fatalf("after shrink: slots=%d shrunk=%d", st.Slots, st.Shrunk)
		}
		for _, l := range leases {
			l.Release()
		}
		if st := p.Stats(); len(st.Gates) != 1 {
			t.Fatalf("retired slots not closed: %d remain", len(st.Gates))
		}
		// The survivor still serves.
		l, err := p.Acquire("after")
		if err != nil {
			t.Fatal(err)
		}
		root.Store64(l.Arg, 1)
		if ret, err := l.Call("gate", root, l.Arg); err != nil || ret != 1 {
			t.Fatalf("post-shrink call = %v, %v", ret, err)
		}
		l.Release()
	})
}

// TestPoolDrainQuiesce: Drain blocks until leases release and rejects new
// acquisitions until Undrain.
func TestPoolDrainQuiesce(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		p := newTestPool(t, root, 2, echoGate, false)
		defer p.Close()
		l, err := p.Acquire("alice")
		if err != nil {
			t.Fatal(err)
		}
		drained := make(chan struct{})
		go func() {
			p.Drain()
			close(drained)
		}()
		for {
			if p.Stats().Draining {
				break
			}
		}
		if _, err := p.Acquire("bob"); err != ErrDraining {
			t.Fatalf("Acquire during drain = %v, want ErrDraining", err)
		}
		select {
		case <-drained:
			t.Fatal("drain completed with a lease outstanding")
		default:
		}
		l.Release()
		<-drained
		p.Undrain()
		l2, err := p.Acquire("bob")
		if err != nil {
			t.Fatal(err)
		}
		l2.Release()
	})
}

// TestPoolReplacesDeadGate: the liveness probe. A gate whose entry faults
// dies; the next lease of its slot replaces it transparently.
func TestPoolReplacesDeadGate(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		p := newTestPool(t, root, 1, faultyGate, false)
		defer p.Close()
		l, err := p.Acquire("alice")
		if err != nil {
			t.Fatal(err)
		}
		root.Store64(l.Arg, 1) // poison: the gate faults and dies
		if _, err := l.Call("gate", root, l.Arg); err != sthread.ErrGateExited {
			t.Fatalf("call on dying gate = %v, want ErrGateExited", err)
		}
		l.Release()

		l2, err := p.Acquire("alice")
		if err != nil {
			t.Fatal(err)
		}
		root.Store64(l2.Arg, 40)
		ret, err := l2.Call("gate", root, l2.Arg)
		if err != nil || ret != 1 {
			t.Fatalf("call on replaced gate = %v, %v", ret, err)
		}
		if got := root.Load64(l2.Arg + 8); got != 41 {
			t.Fatalf("replaced gate echoed %d", got)
		}
		l2.Release()
		if st := p.Stats(); st.Replaced != 1 {
			t.Fatalf("replaced = %d, want 1", st.Replaced)
		}
	})
}

// TestPoolStress: many principals hammering a small pool from many
// goroutines, with a resizer running underneath — the -race exercise for
// the scheduler's locking.
func TestPoolStress(t *testing.T) {
	const (
		goroutines = 8
		iters      = 25
		principals = 5
	)
	withRoot(t, func(root *sthread.Sthread) {
		p := newTestPool(t, root, 3, echoGate, false)

		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					l, err := p.Acquire(fmt.Sprintf("principal-%d", (g+i)%principals))
					if err != nil {
						t.Errorf("acquire: %v", err)
						return
					}
					root.Store64(l.Arg, uint64(i))
					ret, err := l.Call("gate", root, l.Arg)
					if err != nil || ret != 1 {
						t.Errorf("call: %v, %v", ret, err)
					} else if got := root.Load64(l.Arg + 8); got != uint64(i)+1 {
						t.Errorf("goroutine %d iter %d: echo %d", g, i, got)
					}
					l.Release()
				}
			}(g)
		}
		resizeDone := make(chan struct{})
		go func() {
			defer close(resizeDone)
			for _, n := range []int{4, 2, 5, 3} {
				if err := p.Resize(n); err != nil {
					t.Errorf("resize %d: %v", n, err)
				}
				p.Stats()
			}
		}()
		wg.Wait()
		<-resizeDone

		st := p.Stats()
		if st.Acquires != goroutines*iters {
			t.Fatalf("acquires = %d, want %d", st.Acquires, goroutines*iters)
		}
		var invocations uint64
		for _, g := range st.Gates {
			invocations += g.Invocations
		}
		// Invocations on slots retired mid-run are gone from the
		// snapshot; the surviving slots must still account for most.
		if invocations == 0 {
			t.Fatal("no invocations recorded")
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Acquire("late"); err != ErrClosed {
			t.Fatalf("acquire after close = %v, want ErrClosed", err)
		}
	})
}

// TestResizeDuringDrainRejected: a Resize racing a Drain must not admit
// fresh live slots past the drain barrier — Drain's contract is that the
// pool is quiescent when it returns. Both the blocked-drain window (a
// lease still out) and the drained-but-not-undrained window must reject
// with ErrDraining, and the slot count must be unchanged afterwards.
func TestResizeDuringDrainRejected(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		p := newTestPool(t, root, 2, echoGate, false)
		defer p.Close()

		// Hold a lease so Drain blocks at its barrier.
		l, err := p.Acquire("alice")
		if err != nil {
			t.Fatal(err)
		}
		drainDone := make(chan struct{})
		go func() {
			p.Drain()
			close(drainDone)
		}()
		// Wait until the drain barrier is up.
		for !p.Stats().Draining {
			runtime.Gosched()
		}
		if _, err := p.Acquire("bob"); err != ErrDraining {
			t.Fatalf("Acquire during drain = %v, want ErrDraining", err)
		}
		if err := p.Resize(4); err != ErrDraining {
			t.Fatalf("Resize during blocked Drain = %v, want ErrDraining", err)
		}
		l.Release()
		<-drainDone

		// Quiescent but still draining: Resize must still be rejected.
		if err := p.Resize(4); err != ErrDraining {
			t.Fatalf("Resize after Drain (before Undrain) = %v, want ErrDraining", err)
		}
		if got := p.Stats().Slots; got != 2 {
			t.Fatalf("slots = %d after rejected resizes, want 2", got)
		}

		p.Undrain()
		if err := p.Resize(4); err != nil {
			t.Fatalf("Resize after Undrain: %v", err)
		}
		if got := p.Stats().Slots; got != 4 {
			t.Fatalf("slots = %d after Undrain resize, want 4", got)
		}
	})
}
