// Package gatepool schedules a pool of recycled callgates (§3.3, §4.1).
//
// A single recycled callgate buys Table 2's throughput (+42% cached, +29%
// uncached) at two costs the paper names: every caller serializes through
// one gate sthread, and "should a recycled callgate be exploited, and
// called by sthreads acting on behalf of different principals, sensitive
// arguments from one caller may become visible to another" (§3.3). The
// pool addresses both by partitioning the hot shared structure:
//
//   - N slots, each owning a private argument tag and one long-lived
//     recycled gate per configured entry point. Callers leased different
//     slots never share argument memory at all.
//   - Sharded dispatch: a principal hashes (FNV-1a) to a home slot, so a
//     returning principal reuses the slot still warm with its own
//     residue. When the home slot is busy, dispatch steals an idle slot
//     rather than queueing.
//   - Inter-principal scrubbing: when a slot passes between principals,
//     the pool zeroes the slot's argument block before the new principal
//     can observe it, closing the §3.3 residue channel for argument
//     memory. (A gate's sthread-private heap still persists — the PAM
//     scratch lesson of §5.2 — which is why dispatch prefers principal
//     affinity in the first place.)
//
// Slots can be added and retired at runtime (Resize), the pool can be
// drained to quiescence, and every scheduling decision is counted and
// exported by Stats.
package gatepool

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"wedge/internal/gateabi"
	"wedge/internal/kernel"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// Errors.
var (
	ErrDraining = errors.New("gatepool: pool is draining")
	ErrClosed   = errors.New("gatepool: pool is closed")
	ErrNoGate   = errors.New("gatepool: no gate with that name")
	ErrBadSize  = errors.New("gatepool: pool size out of range")
)

// DefaultArgSize is the per-slot argument block size when the config
// leaves it zero.
const DefaultArgSize = 1024

// GateDef names one recycled entry point every slot instantiates. The
// slot's argument tag is added read-write to SC, so each gate instance can
// reach exactly its own slot's argument block. The block's layout is the
// pool's Schema (every gate of a slot shares one block, so the schema
// lives on the Config, not per gate); entries read and write it through
// the schema's typed field handles.
type GateDef struct {
	Name    string
	SC      *policy.SC // base policy; nil means no privileges beyond the arg tag
	Entry   sthread.GateFunc
	Trusted vm.Addr

	// Batch, when set, makes this def the slot's ring-draining worker in a
	// batched pool (Config.BatchDepth > 0): the gate loops run-to-completion
	// over published ring entries instead of serving one Call at a time.
	// Exactly one def of a batched pool sets it; Entry is ignored for that
	// def. See batch.go.
	Batch sthread.BatchFunc
}

// Config sizes and populates a pool.
type Config struct {
	Name     string // diagnostic prefix for gate sthread names
	Slots    int    // initial slot count (default 1)
	MaxSlots int    // Resize ceiling (default max(Slots, 64))
	ArgSize  int    // bytes of per-slot argument block (default DefaultArgSize)
	Gates    []GateDef

	// Schema, when set, is the declarative layout of every slot's
	// argument block: the block size (and so the inter-principal scrub
	// footprint) derives from it, superseding ArgSize. The serve runtime
	// always populates it; raw pools may size the block by hand.
	Schema *gateabi.Schema

	// NoScrub disables inter-principal argument scrubbing, reproducing
	// the raw §3.3 exposure. It exists for tests and ablations — the
	// residue tests prove scrubbing is what closes the leak — and should
	// never be set in servers handling multiple principals.
	NoScrub bool

	// BatchDepth, when positive, puts the pool in batched dataplane mode:
	// each slot's argument arena becomes a ring of BatchDepth schema-sized
	// entry blocks drained run-to-completion by the def with Batch set,
	// and scrubbing moves from per-call to per-principal-switch. Capped at
	// 64 (the dirty-position bitmask). Zero keeps the classic one-call-
	// per-wakeup protocol.
	BatchDepth int
}

// slot is one shard: an argument tag, its preallocated block, and a
// long-lived recycled gate per GateDef.
type slot struct {
	index   int
	argTag  tags.Tag
	argBase vm.Addr
	gates   map[string]*sthread.Recycled

	busy      bool
	retiring  bool   // close when released (pool shrank past this slot)
	principal string // last principal leased; "" before first lease
	waiters   int    // callers blocked with this slot as their home

	// br is the slot's ring state in batched mode, nil in classic mode.
	br *slotRing

	// invocations is atomic so Lease.Call stays off the pool lock — it
	// sits on the per-request hot path.
	invocations atomic.Uint64
	// Counters below are read and written under the pool lock.
	scrubs        uint64
	scrubsSkipped uint64 // same-principal consecutive entries that skipped the scrub
	steals        uint64 // leases granted here to principals homed elsewhere
	replaced      uint64 // dead gates replaced by the liveness probe
}

// Pool is a sharded recycled-callgate scheduler. All methods are safe for
// concurrent use.
type Pool struct {
	root *sthread.Sthread
	cfg  Config

	mu       sync.Mutex
	freed    *sync.Cond // signaled whenever a lease is released
	retired  *sync.Cond // broadcast whenever a ring's recycle cursor advances
	slots    []*slot
	draining bool
	closed   bool

	// Batched mode plumbing, fixed at New.
	batchDef  GateDef // the def with Batch set
	entrySize int     // ArgSize rounded up to 8

	// Pool-wide counters.
	acquires      uint64
	affinityHits  uint64
	steals        uint64
	waits         uint64 // Acquire calls that had to block
	scrubs        uint64
	scrubsSkipped uint64
	replaced      uint64
	grown         uint64
	shrunk        uint64
	migrations    uint64 // queued entries moved to an idle slot's ring
}

// Lease is exclusive use of one slot, from Acquire until Release. The
// holder (and sthreads it creates) may read and write the slot's argument
// block and invoke the slot's gates.
type Lease struct {
	Principal string
	Slot      int      // slot index at acquisition
	ArgTag    tags.Tag // grant this to the sthread that fills the block
	Arg       vm.Addr  // base of the slot's argument block
	Scrubbed  bool     // the block was zeroed because the principal changed
	Stolen    bool     // dispatched off the home slot

	pool *Pool
	s    *slot
	done bool

	// Batched-mode binding. seq identifies the lease's ring entry on s;
	// migration (work stealing of undispatched entries) may re-point the
	// whole binding — s, seq, Slot, Arg, ArgTag — at another slot under
	// the pool lock, setting rebound so the awaiting producer re-reads it.
	batch   bool
	seq     uint64
	rebound bool
}

// New builds a pool on root: root creates every slot's tag and gates, so
// each gate runs with root as its creator exactly as a hand-built recycled
// gate would.
func New(root *sthread.Sthread, cfg Config) (*Pool, error) {
	if len(cfg.Gates) == 0 {
		return nil, errors.New("gatepool: config needs at least one GateDef")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.MaxSlots < cfg.Slots {
		cfg.MaxSlots = cfg.Slots
		if cfg.MaxSlots < 64 {
			cfg.MaxSlots = 64
		}
	}
	if cfg.Schema != nil {
		cfg.ArgSize = cfg.Schema.Size()
	}
	if cfg.ArgSize <= 0 {
		cfg.ArgSize = DefaultArgSize
	}
	if cfg.Name == "" {
		cfg.Name = "gatepool"
	}
	p := &Pool{root: root, cfg: cfg}
	p.entrySize = (cfg.ArgSize + 7) &^ 7
	if cfg.BatchDepth > 0 {
		if cfg.BatchDepth > 64 {
			return nil, fmt.Errorf("gatepool: BatchDepth %d exceeds 64", cfg.BatchDepth)
		}
		var workers int
		for _, def := range cfg.Gates {
			if def.Batch != nil {
				p.batchDef = def
				workers++
			}
		}
		if workers != 1 {
			return nil, fmt.Errorf("gatepool: batched pool needs exactly one GateDef with Batch set, got %d", workers)
		}
	}
	p.freed = sync.NewCond(&p.mu)
	p.retired = sync.NewCond(&p.mu)
	for i := 0; i < cfg.Slots; i++ {
		s, err := p.newSlot(i)
		if err != nil {
			p.mu.Lock()
			p.closeSlotsLocked(p.slots)
			p.slots = nil
			p.mu.Unlock()
			return nil, err
		}
		p.slots = append(p.slots, s)
	}
	return p, nil
}

// newSlot allocates one shard: a fresh tag, an argument block inside it,
// and one recycled gate per def with the tag added read-write.
func (p *Pool) newSlot(index int) (*slot, error) {
	root := p.root
	argTag, err := root.App().Tags.TagNew(root.Task)
	if err != nil {
		return nil, err
	}
	size := p.cfg.ArgSize
	if p.cfg.BatchDepth > 0 {
		// The arena is the whole ring: control words, per-entry headers,
		// and BatchDepth schema-sized entry blocks.
		size = sthread.BatchRingBytes(p.cfg.BatchDepth, p.entrySize)
	}
	argBase, err := root.Smalloc(argTag, size)
	if err != nil {
		root.App().Tags.TagDelete(argTag)
		return nil, err
	}
	s := &slot{index: index, argTag: argTag, argBase: argBase,
		gates: make(map[string]*sthread.Recycled, len(p.cfg.Gates))}
	for _, def := range p.cfg.Gates {
		var gate *sthread.Recycled
		var err error
		if p.cfg.BatchDepth > 0 && def.Batch != nil {
			gate, err = p.newBatchGate(s, def)
		} else {
			gate, err = p.newGate(s, def)
		}
		if err != nil {
			for _, g := range s.gates {
				g.Close()
			}
			root.App().Tags.TagDelete(argTag)
			return nil, err
		}
		s.gates[def.Name] = gate
	}
	return s, nil
}

func (p *Pool) newGate(s *slot, def GateDef) (*sthread.Recycled, error) {
	sc := def.SC
	if sc == nil {
		sc = policy.New()
	}
	eff := sc.Clone()
	if err := eff.MemAdd(s.argTag, vm.PermRW); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s/%s-%d", p.cfg.Name, def.Name, s.index)
	gate, err := p.root.NewRecycled(name, eff, def.Entry, def.Trusted)
	if err != nil {
		return nil, err
	}
	if p.cfg.BatchDepth > 0 {
		// A batched pool's nested classic gates run-to-completion on the
		// caller's goroutine: a classic Call is synchronous either way,
		// so the inline mode observes identical semantics while skipping
		// the two futex handoffs per invocation.
		gate.SetInlineCalls(true)
	}
	return gate, nil
}

// homeFor shards a principal: FNV-1a over the principal name, modulo the
// current slot count.
func homeFor(principal string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(principal))
	return int(h.Sum64() % uint64(n))
}

// Acquire leases a slot for principal, blocking while every eligible slot
// is busy. Dispatch prefers the principal's home slot (shard affinity);
// when the home slot is held it steals another idle slot, preferring one
// this principal used before. The leased slot's gates are liveness-probed
// and replaced if dead, and the argument block is scrubbed whenever the
// slot changes hands between principals.
func (p *Pool) Acquire(principal string) (*Lease, error) {
	p.mu.Lock()
	waitingOn := -1 // home slot index currently charged with our wait
	for {
		if p.closed {
			p.unchargeWait(waitingOn)
			p.mu.Unlock()
			return nil, ErrClosed
		}
		if p.draining {
			p.unchargeWait(waitingOn)
			p.mu.Unlock()
			return nil, ErrDraining
		}
		var s *slot
		var stolen bool
		if p.cfg.BatchDepth > 0 {
			s, stolen = p.selectBatchLocked(principal)
		} else {
			s, stolen = p.selectLocked(principal)
		}
		if s != nil {
			p.unchargeWait(waitingOn)
			var lease *Lease
			var err error
			if p.cfg.BatchDepth > 0 {
				lease, err = p.leaseBatchLocked(s, principal, stolen)
			} else {
				lease, err = p.leaseLocked(s, principal, stolen)
			}
			p.mu.Unlock()
			return lease, err
		}
		// Every eligible slot is busy: block until a release, charging
		// the wait to the principal's home slot so Stats can show where
		// the queueing is.
		if waitingOn == -1 {
			p.waits++
			if n := p.liveCountLocked(); n > 0 {
				waitingOn = homeFor(principal, n)
				if home := p.liveSlotLocked(waitingOn); home != nil {
					home.waiters++
				}
			}
		}
		p.freed.Wait()
	}
}

// unchargeWait drops the queue-depth charge taken while blocking.
func (p *Pool) unchargeWait(waitingOn int) {
	if waitingOn >= 0 {
		if home := p.liveSlotLocked(waitingOn); home != nil && home.waiters > 0 {
			home.waiters--
		}
	}
}

// liveCountLocked counts slots eligible for dispatch.
func (p *Pool) liveCountLocked() int {
	n := 0
	for _, s := range p.slots {
		if !s.retiring {
			n++
		}
	}
	return n
}

// liveSlotLocked returns the i-th non-retiring slot, or nil.
func (p *Pool) liveSlotLocked(i int) *slot {
	for _, s := range p.slots {
		if s.retiring {
			continue
		}
		if i == 0 {
			return s
		}
		i--
	}
	return nil
}

// selectLocked picks a free slot for principal, or nil if all are busy.
// The bool reports whether the pick was a steal (not the home slot).
func (p *Pool) selectLocked(principal string) (*slot, bool) {
	n := p.liveCountLocked()
	if n == 0 {
		return nil, false
	}
	home := p.liveSlotLocked(homeFor(principal, n))
	if home != nil && !home.busy {
		return home, false
	}
	// Steal: prefer an idle slot this principal already warmed, so the
	// steal costs no scrub; otherwise any idle slot.
	var idle *slot
	for _, s := range p.slots {
		if s.retiring || s.busy || s == home {
			continue
		}
		if s.principal == principal {
			return s, true
		}
		if idle == nil {
			idle = s
		}
	}
	if idle != nil {
		return idle, true
	}
	return nil, false
}

// leaseLocked marks s busy for principal, probing gate liveness and
// scrubbing the argument block on a principal change.
func (p *Pool) leaseLocked(s *slot, principal string, stolen bool) (*Lease, error) {
	// Liveness probe: replace any gate whose sthread died (its entry
	// faulted on some earlier invocation).
	for _, def := range p.cfg.Gates {
		if g := s.gates[def.Name]; g != nil {
			if g.Alive() {
				continue
			}
			g.Close() // retire the dead gate's control tag
		}
		gate, err := p.newGate(s, def)
		if err != nil {
			return nil, fmt.Errorf("gatepool: replacing dead gate %q: %w", def.Name, err)
		}
		s.gates[def.Name] = gate
		s.replaced++
		p.replaced++
	}

	scrubbed := false
	if s.principal != principal {
		if !p.cfg.NoScrub {
			if err := p.root.Zero(s.argBase, p.cfg.ArgSize); err != nil {
				return nil, fmt.Errorf("gatepool: scrubbing slot %d: %w", s.index, err)
			}
			scrubbed = true
			s.scrubs++
			p.scrubs++
		}
		s.principal = principal
	} else if s.principal == principal && principal != "" {
		p.affinityHits++
	}
	if stolen {
		s.steals++
		p.steals++
	}
	s.busy = true
	p.acquires++
	return &Lease{
		Principal: principal,
		Slot:      s.index,
		ArgTag:    s.argTag,
		Arg:       s.argBase,
		Scrubbed:  scrubbed,
		Stolen:    stolen,
		pool:      p,
		s:         s,
	}, nil
}

// Gate returns the leased slot's recycled gate with the given name, or nil.
func (l *Lease) Gate(name string) *sthread.Recycled { return l.s.gates[name] }

// Call invokes the leased slot's named gate on behalf of caller, counting
// the invocation against the slot.
func (l *Lease) Call(name string, caller *sthread.Sthread, arg vm.Addr) (vm.Addr, error) {
	return l.invoke(name, func(g *sthread.Recycled) (vm.Addr, error) {
		return g.Call(caller, arg)
	})
}

// CallFD is Call with a per-invocation argument descriptor (see
// sthread.Recycled.CallFD).
func (l *Lease) CallFD(name string, caller *sthread.Sthread, arg vm.Addr, fd int, perm kernel.FDPerm) (vm.Addr, error) {
	return l.invoke(name, func(g *sthread.Recycled) (vm.Addr, error) {
		return g.CallFD(caller, arg, fd, perm)
	})
}

func (l *Lease) invoke(name string, call func(*sthread.Recycled) (vm.Addr, error)) (vm.Addr, error) {
	g := l.s.gates[name]
	if g == nil {
		return 0, fmt.Errorf("%w: %q", ErrNoGate, name)
	}
	l.s.invocations.Add(1)
	return call(g)
}

// Release returns the slot to the pool. Releasing twice is a no-op. If the
// pool shrank while the lease was held, the slot is closed instead of
// returned.
func (l *Lease) Release() {
	p := l.pool
	p.mu.Lock()
	if l.done {
		p.mu.Unlock()
		return
	}
	l.done = true
	if l.batch {
		p.releaseBatchLocked(l)
	} else {
		l.s.busy = false
		if l.s.retiring {
			p.removeSlotLocked(l.s)
		}
	}
	// One slot freed: one waiter can proceed. Drain also waits on freed,
	// so wake it too once the pool falls idle.
	p.freed.Signal()
	if p.draining {
		p.freed.Broadcast()
	}
	p.mu.Unlock()
}

// Resize grows or shrinks the pool to n slots. Growth creates fresh slots
// immediately; shrinking retires the highest-indexed slots, closing idle
// ones now and busy ones when their leases are released. A Resize during
// a Drain fails with ErrDraining: Drain's contract is that the pool is
// quiescent when it returns, and slots admitted while it blocks (or
// between Drain and Undrain) would arrive live past that barrier.
func (p *Pool) Resize(n int) error {
	if n < 1 || n > p.cfg.MaxSlots {
		return fmt.Errorf("%w: %d (max %d)", ErrBadSize, n, p.cfg.MaxSlots)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.draining {
		return ErrDraining
	}
	// The slot count is recomputed under the lock on every iteration:
	// newSlot runs unlocked (it creates tags and gate sthreads), so a
	// concurrent Resize — or a Drain barrier going up — may have changed
	// the pool meanwhile.
	for p.liveCountLocked() < n {
		idx := p.nextIndexLocked()
		p.mu.Unlock()
		s, err := p.newSlot(idx)
		p.mu.Lock()
		if err != nil {
			return err
		}
		if p.closed || p.draining || p.liveCountLocked() >= n {
			p.closeSlotsLocked([]*slot{s})
			if p.closed {
				return ErrClosed
			}
			if p.draining {
				return ErrDraining
			}
			break
		}
		p.slots = append(p.slots, s)
		p.grown++
	}
	for live := p.liveCountLocked(); live > n; live-- {
		// Retire the last live slot.
		var victim *slot
		for _, s := range p.slots {
			if !s.retiring {
				victim = s
			}
		}
		victim.retiring = true
		p.shrunk++
		if !p.slotBusyLocked(victim) {
			p.removeSlotLocked(victim)
		}
	}
	p.freed.Broadcast()
	return nil
}

// nextIndexLocked returns a slot index not currently in use (indices are
// diagnostic; affinity uses position among live slots).
func (p *Pool) nextIndexLocked() int {
	max := -1
	for _, s := range p.slots {
		if s.index > max {
			max = s.index
		}
	}
	return max + 1
}

// removeSlotLocked closes a retiring slot's gates, frees its argument
// block, retires its tag, and drops it from the slice.
func (p *Pool) removeSlotLocked(victim *slot) {
	for i, s := range p.slots {
		if s == victim {
			p.slots = append(p.slots[:i], p.slots[i+1:]...)
			break
		}
	}
	p.closeSlotsLocked([]*slot{victim})
}

// closeSlotsLocked tears down slots: gates first (their control tags go
// with them), then the argument tags. Called with p.mu held; gate Close
// blocks only on gates that are idle, which retired slots are.
func (p *Pool) closeSlotsLocked(ss []*slot) {
	for _, s := range ss {
		for _, g := range s.gates {
			g.Close()
		}
		p.root.Sfree(s.argBase)
		p.root.App().Tags.TagDelete(s.argTag)
	}
}

// LiveSlots reports the number of slots eligible for dispatch — cheaper
// than Stats for callers (admission control) that need only the count.
func (p *Pool) LiveSlots() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.liveCountLocked()
}

// MaxSlots reports the Resize ceiling the pool was configured with.
func (p *Pool) MaxSlots() int { return p.cfg.MaxSlots }

// Drain stops new acquisitions and blocks until every lease has been
// released: the pool is quiescent when it returns. Acquire fails with
// ErrDraining while a drain is in progress. Undrain re-opens the pool.
func (p *Pool) Drain() {
	p.mu.Lock()
	p.draining = true
	p.freed.Broadcast() // wake blocked Acquires so they observe the drain
	for {
		busy := 0
		for _, s := range p.slots {
			if p.slotBusyLocked(s) {
				busy++
			}
		}
		if busy == 0 {
			break
		}
		p.freed.Wait()
	}
	p.mu.Unlock()
}

// slotBusyLocked reports whether a slot still has work in flight: a held
// lease in classic mode, any unrecycled ring entry in batched mode.
func (p *Pool) slotBusyLocked(s *slot) bool {
	if s.br != nil {
		return s.br.inflightLocked() > 0
	}
	return s.busy
}

// Undrain re-admits acquisitions after a Drain.
func (p *Pool) Undrain() {
	p.mu.Lock()
	p.draining = false
	p.mu.Unlock()
	p.freed.Broadcast()
}

// Close drains the pool, shuts every gate down, and retires every tag.
// The pool is unusable afterwards.
func (p *Pool) Close() error {
	p.Drain()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ss := p.slots
	p.slots = nil
	p.closeSlotsLocked(ss)
	p.freed.Broadcast()
	p.mu.Unlock()
	return nil
}

// GateStats is one slot's snapshot.
type GateStats struct {
	Slot        int
	Busy        bool
	Retiring    bool
	Principal   string // last principal leased (classic) / ring residue owner (batched)
	QueueDepth  int    // callers currently blocked with this home slot
	Invocations uint64
	Scrubs      uint64
	// ScrubsSkipped counts consecutive same-principal entries that were
	// dispatched without a scrub — the batched mode's principal-switch
	// elision. Always zero in classic mode, where every switch scrubs and
	// same-principal reuse never dirties in between.
	ScrubsSkipped uint64
	Steals        uint64
	Replaced      uint64
	// Inflight is the batched slot's unrecycled entry count (0 classic).
	Inflight int
}

// Stats is a point-in-time snapshot of the pool's scheduling counters.
type Stats struct {
	Slots    int // live (non-retiring) slots
	Busy     int
	Draining bool
	Closed   bool

	Acquires     uint64
	AffinityHits uint64
	Steals       uint64
	Waits        uint64
	// Scrubs counts blocks actually zeroed between principals;
	// ScrubsSkipped counts the dispatches that proved a scrub unnecessary
	// (same principal back to back on one slot's ring).
	Scrubs        uint64
	ScrubsSkipped uint64
	Replaced      uint64
	Grown         uint64
	Shrunk        uint64

	// Batched dataplane counters (zero in classic mode): the configured
	// ring depth, the number of run-to-completion sweeps the workers made,
	// and the entries those sweeps drained — Batches < BatchEntries is the
	// amortization working.
	RingDepth    int
	Batches      uint64
	BatchEntries uint64
	// Migrations counts committed-but-undispatched entries a draining
	// worker stole from a stuck sibling's ring — the liveness escape
	// hatch that keeps one blocked invocation from wedging queued work.
	Migrations uint64
	// Backlog is the instantaneous count of committed entries no worker
	// has dispatched yet — the batched analogue of callers blocked in
	// Acquire, which ring admission mostly eliminates.
	Backlog int

	Gates []GateStats
}

// Stats returns a consistent snapshot of pool and per-slot counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Slots:    p.liveCountLocked(),
		Draining: p.draining,
		Closed:   p.closed,

		Acquires:      p.acquires,
		AffinityHits:  p.affinityHits,
		Steals:        p.steals,
		Waits:         p.waits,
		Scrubs:        p.scrubs,
		ScrubsSkipped: p.scrubsSkipped,
		Replaced:      p.replaced,
		Grown:         p.grown,
		Shrunk:        p.shrunk,
		RingDepth:     p.cfg.BatchDepth,
		Migrations:    p.migrations,
	}
	for _, s := range p.slots {
		busy := p.slotBusyLocked(s)
		if busy {
			st.Busy++
		}
		gs := GateStats{
			Slot:          s.index,
			Busy:          busy,
			Retiring:      s.retiring,
			Principal:     s.principal,
			QueueDepth:    s.waiters,
			Invocations:   s.invocations.Load(),
			Scrubs:        s.scrubs,
			ScrubsSkipped: s.scrubsSkipped,
			Steals:        s.steals,
			Replaced:      s.replaced,
		}
		if s.br != nil {
			gs.Principal = s.br.lastPrincipal
			gs.Inflight = s.br.inflightLocked()
			st.Batches += s.br.ring.Batches()
			st.BatchEntries += s.br.ring.Entries()
			st.Backlog += int(s.br.pubSeq - s.br.hookSeq)
		}
		st.Gates = append(st.Gates, gs)
	}
	return st
}
