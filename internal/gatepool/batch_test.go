package gatepool

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// batchEcho is the standard batched worker body: each entry's first word
// incremented into its second, the entry's own value returned.
func batchEcho(g *sthread.Sthread, b *sthread.Batch, _ vm.Addr) {
	for b.More() {
		v := g.Load64(b.Arg())
		g.Store64(b.Arg()+8, v+1)
		b.Complete(vm.Addr(v))
	}
}

func newBatchPool(t *testing.T, root *sthread.Sthread, slots, depth int, body sthread.BatchFunc, noScrub bool) *Pool {
	t.Helper()
	p, err := New(root, Config{
		Name:       "btest",
		Slots:      slots,
		BatchDepth: depth,
		NoScrub:    noScrub,
		Gates: []GateDef{
			{Name: "worker", SC: policy.New(), Batch: body},
			{Name: "echo", SC: policy.New(), Entry: echoGate},
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

// batchSession acquires, marshals one word, commits, awaits, releases.
func batchSession(t *testing.T, p *Pool, root *sthread.Sthread, principal string, v uint64) uint64 {
	t.Helper()
	l, err := p.Acquire(principal)
	if err != nil {
		t.Fatalf("acquire %s: %v", principal, err)
	}
	defer l.Release()
	root.Store64(l.Arg, v)
	ret, err := l.CallBatch(root, 0, -1, 0)
	if err != nil {
		t.Fatalf("callbatch %s: %v", principal, err)
	}
	if got := root.Load64(l.Arg + 8); got != v+1 {
		t.Fatalf("entry result = %d, want %d", got, v+1)
	}
	return uint64(ret)
}

func TestBatchPoolRoundTrip(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		p := newBatchPool(t, root, 2, 4, batchEcho, false)
		defer p.Close()
		// Push more sessions than slots*depth so positions recycle.
		for i := uint64(0); i < 20; i++ {
			if ret := batchSession(t, p, root, "alice", 100+i); ret != 100+i {
				t.Fatalf("ret = %d", ret)
			}
		}
		st := p.Stats()
		if st.Acquires != 20 || st.Busy != 0 {
			t.Fatalf("acquires=%d busy=%d", st.Acquires, st.Busy)
		}
		if st.BatchEntries != 20 {
			t.Fatalf("batch entries = %d", st.BatchEntries)
		}
	})
}

// TestBatchPoolScrubOnSwitch checks the principal-switch scrub and the
// same-principal skip, and that skips never happen across a switch.
func TestBatchPoolScrubOnSwitch(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		p := newBatchPool(t, root, 1, 4, batchEcho, false)
		defer p.Close()
		// alice twice (same position reuse is a skip candidate on the
		// second dispatch once her first entry's residue is resident),
		// then bob (his dispatch must scrub alice's finished positions).
		batchSession(t, p, root, "alice", 1)
		batchSession(t, p, root, "alice", 2)
		st := p.Stats()
		if st.ScrubsSkipped == 0 {
			t.Fatalf("no scrub skip on consecutive same-principal entries: %+v", st)
		}
		scrubsBefore := st.Scrubs
		batchSession(t, p, root, "bob", 3)
		st = p.Stats()
		if st.Scrubs == scrubsBefore {
			t.Fatalf("no scrub on principal switch: %+v", st)
		}
		// bob's entry at position 2 must not see alice's bytes at
		// positions 0 and 1 once he dispatches again.
		l, err := p.Acquire("bob")
		if err != nil {
			t.Fatal(err)
		}
		for pos := uint64(0); pos < 2; pos++ {
			addr := l.s.br.ring.EntryAddr(pos)
			for off := vm.Addr(0); off < 16; off += 8 {
				if w := root.Load64(addr + off); w != 0 {
					t.Fatalf("alice residue %#x at pos %d off %d after bob's dispatch", w, pos, off)
				}
			}
		}
		l.Release()
	})
}

// TestBatchPoolSkipNeverSurvivesReassignment: the same-principal scrub
// skip is warm-slot state, and it must die with the slot. A principal
// whose warm slot is retired by a shrink and replaced by a grow must not
// carry a skip onto the replacement (the warm state was never there),
// and a principal landing on a surviving slot that holds another
// principal's finished bytes must take the scrub path, never a skip —
// across a Drain/Undrain cycle in between.
func TestBatchPoolSkipNeverSurvivesReassignment(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		p := newBatchPool(t, root, 2, 4, batchEcho, false)
		defer p.Close()
		// Principals routed by home shard: P homes on slot 1 (the slot a
		// shrink retires), Q and R on slot 0 (the slot that survives).
		pick := func(home int, avoid string) string {
			for i := 0; ; i++ {
				name := fmt.Sprintf("principal-%d", i)
				if name != avoid && homeFor(name, 2) == home {
					return name
				}
			}
		}
		P := pick(1, "")
		Q := pick(0, "")
		R := pick(0, Q)

		batchSession(t, p, root, P, 1)
		batchSession(t, p, root, P, 2) // same slot, same principal: the one legitimate skip
		batchSession(t, p, root, Q, 3) // plants Q's bytes on the surviving slot
		st := p.Stats()
		if st.ScrubsSkipped != 1 {
			t.Fatalf("warm-up skips = %d, want exactly 1: %+v", st.ScrubsSkipped, st)
		}
		skipsBefore, scrubsBefore := st.ScrubsSkipped, st.Scrubs

		// Retire P's warm slot (a shrink retires the last live slot) and
		// grow a fresh replacement; the Drain/Undrain cycle in between
		// must not perturb any of it.
		if err := p.Resize(1); err != nil {
			t.Fatalf("shrink: %v", err)
		}
		p.Drain()
		p.Undrain()
		if err := p.Resize(2); err != nil {
			t.Fatalf("grow: %v", err)
		}

		// P's home shard now resolves to the replacement slot: its first
		// dispatch there must not count a skip — the warm state died with
		// the retired slot.
		batchSession(t, p, root, P, 4)
		if st := p.Stats(); st.ScrubsSkipped != skipsBefore {
			t.Fatalf("skip leaked across the slot reassignment: %+v", st)
		}
		// Back-to-back on the replacement the skip is legitimate again:
		// rebuilt from P's own new bytes, not inherited.
		batchSession(t, p, root, P, 5)
		if st := p.Stats(); st.ScrubsSkipped != skipsBefore+1 {
			t.Fatalf("no skip on consecutive same-principal entries after the rebuild: %+v", st)
		}

		// R homes on the surviving slot, where Q's finished bytes still
		// sit: a genuine principal switch, so R's dispatch must scrub and
		// must not skip.
		batchSession(t, p, root, R, 6)
		st = p.Stats()
		if st.Scrubs == scrubsBefore {
			t.Fatalf("no scrub dispatching %s over %s's finished bytes: %+v", R, Q, st)
		}
		if st.ScrubsSkipped != skipsBefore+1 {
			t.Fatalf("bogus skip on a principal switch: %+v", st)
		}
		// Q's position on the surviving slot must read zero after R ran.
		p.mu.Lock()
		addr := p.liveSlotLocked(0).br.ring.EntryAddr(0)
		p.mu.Unlock()
		for off := vm.Addr(0); off < 16; off += 8 {
			if w := root.Load64(addr + off); w != 0 {
				t.Fatalf("%s residue %#x at off %d after %s's dispatch", Q, w, off, R)
			}
		}
	})
}

// TestBatchPoolNestedClassicGate drives the classic Call protocol from
// inside a batch body, the shape every pooled app's nested gates use.
func TestBatchPoolNestedClassicGate(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		var p *Pool
		var lease *Lease
		var mu sync.Mutex
		body := func(g *sthread.Sthread, b *sthread.Batch, _ vm.Addr) {
			for b.More() {
				mu.Lock()
				l := lease
				mu.Unlock()
				ret, err := l.Call("echo", g, b.Arg())
				if err != nil || ret != 1 {
					b.Complete(0)
					continue
				}
				b.Complete(1)
			}
		}
		p = newBatchPool(t, root, 1, 2, body, false)
		defer p.Close()
		l, err := p.Acquire("alice")
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		lease = l
		mu.Unlock()
		root.Store64(l.Arg, 7)
		ret, err := l.CallBatch(root, 0, -1, 0)
		if err != nil || ret != 1 {
			t.Fatalf("CallBatch = %v, %v", ret, err)
		}
		if got := root.Load64(l.Arg + 8); got != 8 {
			t.Fatalf("nested echo wrote %d, want 8", got)
		}
		l.Release()
	})
}

// TestBatchPoolStealRescue wedges one slot's worker inside a body and
// queues stepper sessions so at least one binds behind the wedge (the
// least-loaded fallback); a sibling slot must steal and complete it while
// the wedged body never returns — the liveness property serve's drain
// and resize semantics depend on.
func TestBatchPoolStealRescue(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		block := make(chan struct{})
		started := make(chan struct{})
		var once sync.Once
		step := make(chan struct{}, 8)
		body := func(g *sthread.Sthread, b *sthread.Batch, _ vm.Addr) {
			for b.More() {
				v := g.Load64(b.Arg())
				switch v {
				case 999:
					once.Do(func() { close(started) })
					<-block // wedge this invocation for the whole test
				case 777:
					<-step // hold until the test releases the steppers
				}
				g.Store64(b.Arg()+8, v+1)
				b.Complete(vm.Addr(v))
			}
		}
		p := newBatchPool(t, root, 2, 4, body, false)
		defer p.Close()

		// Wedge one slot.
		held, err := p.Acquire("holder")
		if err != nil {
			t.Fatal(err)
		}
		root.Store64(held.Arg, 999)
		heldDone := make(chan struct{})
		go func() {
			held.CallBatch(root, 0, -1, 0)
			held.Release()
			close(heldDone)
		}()
		<-started

		// Three steppers: the first lands on the free slot and blocks in
		// its body; with no idle slot left, the least-loaded fallback
		// then forces at least one of the rest behind the wedge.
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				l, err := p.Acquire(fmt.Sprintf("stepper-%d", i))
				if err != nil {
					t.Errorf("stepper %d acquire: %v", i, err)
					return
				}
				defer l.Release()
				root.Store64(l.Arg, 777)
				if _, err := l.CallBatch(root, 0, -1, 0); err != nil {
					t.Errorf("stepper %d: %v", i, err)
				}
			}(i)
		}
		// Wait for all steppers to hold ring entries, then let them run.
		for p.Stats().Acquires < 4 {
			runtime.Gosched()
		}
		for i := 0; i < 3; i++ {
			step <- struct{}{}
		}
		wg.Wait() // every stepper completed while the wedge is still held

		if st := p.Stats(); st.Migrations == 0 {
			t.Fatalf("steppers completed without any migration: %+v", st)
		}
		close(block)
		<-heldDone
	})
}

// TestBatchPoolCancelBeforeCommit releases a reserved entry without
// committing; the worker must retire it and the ring must drain.
func TestBatchPoolCancelBeforeCommit(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		p := newBatchPool(t, root, 1, 2, batchEcho, false)
		defer p.Close()
		l, err := p.Acquire("alice")
		if err != nil {
			t.Fatal(err)
		}
		l.Release() // cancel
		p.Drain()   // must reach quiescence: the cancelled entry drains
		p.Undrain()
		if ret := batchSession(t, p, root, "bob", 9); ret != 9 {
			t.Fatalf("ret = %d", ret)
		}
	})
}

// TestBatchPoolDeadWorkerRespawn faults the batch worker and checks the
// next acquisition replaces it.
func TestBatchPoolDeadWorkerRespawn(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		body := func(g *sthread.Sthread, b *sthread.Batch, _ vm.Addr) {
			for b.More() {
				if g.Load64(b.Arg()) == 666 {
					g.Load64(vm.Addr(8)) // fault
				}
				b.Complete(1)
			}
		}
		p := newBatchPool(t, root, 1, 2, body, false)
		defer p.Close()
		l, err := p.Acquire("alice")
		if err != nil {
			t.Fatal(err)
		}
		root.Store64(l.Arg, 666)
		if _, err := l.CallBatch(root, 0, -1, 0); !errors.Is(err, sthread.ErrGateExited) {
			t.Fatalf("want ErrGateExited, got %v", err)
		}
		l.Release()
		// Next session must respawn the worker and complete.
		l2, err := p.Acquire("bob")
		if err != nil {
			t.Fatal(err)
		}
		root.Store64(l2.Arg, 1)
		if ret, err := l2.CallBatch(root, 0, -1, 0); err != nil || ret != 1 {
			t.Fatalf("post-respawn CallBatch = %v, %v", ret, err)
		}
		l2.Release()
		if st := p.Stats(); st.Replaced == 0 {
			t.Fatalf("no replacement counted: %+v", st)
		}
	})
}

// TestBatchPoolConfigRejects checks the batched config validation.
func TestBatchPoolConfigRejects(t *testing.T) {
	withRoot(t, func(root *sthread.Sthread) {
		if _, err := New(root, Config{BatchDepth: 2,
			Gates: []GateDef{{Name: "g", Entry: echoGate}}}); err == nil {
			t.Fatal("batched pool without a Batch def accepted")
		}
		if _, err := New(root, Config{BatchDepth: 65,
			Gates: []GateDef{{Name: "g", Batch: batchEcho}}}); err == nil {
			t.Fatal("depth 65 accepted")
		}
		p, err := New(root, Config{
			Gates: []GateDef{{Name: "g", Entry: echoGate}}})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		l, err := p.Acquire("x")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.CallBatch(root, 0, -1, 0); !errors.Is(err, ErrNotBatched) {
			t.Fatalf("CallBatch on classic pool: %v", err)
		}
		l.Release()
	})
}
