// Batched dataplane mode (Config.BatchDepth > 0): every slot's argument
// arena holds a ring of schema-sized entry blocks, producers reserve and
// commit entries instead of holding the slot exclusively, and one
// long-lived worker gate per slot drains the ring run-to-completion
// (sthread.NewRecycledBatch). The classic per-call costs this removes:
// the per-invocation futex round trip (one doorbell covers a whole
// batch), the per-call scrub (scrubbing happens per principal switch),
// and the slot-exclusive lease (a slot pipelines up to BatchDepth
// entries).
//
// Residue rules. With multiple principals' entries resident in one ring
// at once, the arena is shared in a way a classic slot never is: the
// worker invocation for principal P can reach the argument bytes of
// *pending* entries reserved by other principals. That concurrent-window
// exposure is inherent to batching and is documented, not defended. What
// the pool does defend — the batched analogue of the §3.3 scrub — is
// residue of *finished* work: before the worker runs an entry for P,
// every ring position whose resident bytes belong to a different
// principal's completed (or freed) entry is zeroed. Consecutive entries
// for the same principal skip that zeroing entirely (ScrubsSkipped),
// which is the warm-slot affinity win the scheduler aims dispatch at.
//
// Liveness. A producer's entry may sit queued behind a worker stuck in a
// long invocation. To keep the pool work-conserving — and to keep one
// blocked session from wedging others, which the serve runtime's drain
// and resize semantics depend on — a worker that drains its own ring
// steals the oldest undispatched entry from the most backlogged other
// slot: the victim entry is cancelled in place, its metadata and
// argument bytes move to the thief's ring, and the producer's lease is
// re-pointed before it is released from Await.
package gatepool

import (
	"errors"
	"fmt"

	"wedge/internal/kernel"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// ErrNotBatched rejects batch-protocol calls on a classic pool (and vice
// versa).
var ErrNotBatched = errors.New("gatepool: pool is not in batched mode")

var errCancelled = errors.New("gatepool: ring entry cancelled before dispatch")

// slotRing is one slot's batched-mode state. All fields are guarded by
// the pool lock except the ring itself, which has its own discipline.
type slotRing struct {
	ring     *sthread.BatchRing
	gateName string

	nextSeq  uint64 // next sequence number to reserve
	pubSeq   uint64 // contiguous committed watermark given to PublishTo
	hookSeq  uint64 // next sequence the dispatch hook will observe
	recycled uint64 // entries fully retired (consumed and released), in order

	inBody bool // the worker is inside an entry body right now

	// owner[pos] names the principal whose bytes sit in ring position pos
	// (argument block + header), or "" when the position is clean. Set at
	// reserve, cleared by scrubbing.
	owner   []string
	entries []ringEntry

	lastPrincipal string // most recently dispatched principal, for stats
}

// ringEntry is the host-side record of one reservation. The struct is
// overwritten wholesale when its position is reserved again.
type ringEntry struct {
	seq       uint64
	lease     *Lease
	principal string

	active    bool // reserved and not yet consumed
	committed bool // published (or eligible for publishing)
	cancelled bool // dispatch must skip it (early release or migration)
	consumed  bool // the worker (or a dead-gate fast path) retired it
	released  bool // the producer released the lease

	connID uint64
	fd     int
	fdPerm kernel.FDPerm
	caller *kernel.Task
}

func (br *slotRing) inflightLocked() int { return int(br.nextSeq - br.recycled) }

// entryFor returns the ring entry currently occupying seq's position,
// valid only while seq is unrecycled.
func (br *slotRing) entryFor(seq uint64) *ringEntry {
	return &br.entries[seq%uint64(len(br.entries))]
}

// advancePubLocked moves the publish watermark over the contiguous
// committed prefix and returns it.
func (br *slotRing) advancePubLocked() uint64 {
	for br.pubSeq < br.nextSeq {
		e := br.entryFor(br.pubSeq)
		if e.seq != br.pubSeq || !e.committed {
			break
		}
		br.pubSeq++
	}
	return br.pubSeq
}

// recycleLocked returns fully retired positions (consumed and released,
// in sequence order) to the free pool.
func (br *slotRing) recycleLocked() {
	for br.recycled < br.nextSeq {
		e := br.entryFor(br.recycled)
		if e.seq != br.recycled || !e.consumed || !e.released {
			break
		}
		br.recycled++
	}
}

// Batched reports whether the pool runs the ring protocol.
func (p *Pool) Batched() bool { return p.cfg.BatchDepth > 0 }

// BatchDepth reports the per-slot ring depth (0 for a classic pool).
func (p *Pool) BatchDepth() int { return p.cfg.BatchDepth }

// newBatchGate builds the slot's ring worker: the ring lives at the
// slot's arena base, and the dispatch/complete hooks give the pool its
// per-entry control points (scrub, demux, fd grant/revoke, recycling).
func (p *Pool) newBatchGate(s *slot, def GateDef) (*sthread.Recycled, error) {
	sc := def.SC
	if sc == nil {
		sc = policy.New()
	}
	eff := sc.Clone()
	if err := eff.MemAdd(s.argTag, vm.PermRW); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s/%s-%d", p.cfg.Name, def.Name, s.index)
	gate, ring, err := p.root.NewRecycledBatch(name, eff, def.Batch, sthread.BatchConfig{
		Base:      s.argBase,
		Depth:     p.cfg.BatchDepth,
		EntrySize: p.entrySize,
		Trusted:   def.Trusted,
		Hooks: sthread.BatchHooks{
			Dispatch: func(seq uint64) error { return p.batchDispatch(s, seq) },
			Complete: func(seq uint64, ret vm.Addr) { p.batchComplete(s, seq) },
		},
	})
	if err != nil {
		return nil, err
	}
	s.br = &slotRing{
		ring:     ring,
		gateName: def.Name,
		owner:    make([]string, p.cfg.BatchDepth),
		entries:  make([]ringEntry, p.cfg.BatchDepth),
	}
	return gate, nil
}

// selectBatchLocked picks a slot with ring space for principal, or nil
// when every usable ring is full. Preference order: an idle slot still
// warm with this principal's bytes, then any idle slot (starting from
// the principal's home shard), then the least-loaded slot — queueing
// behind an active worker is allowed because work stealing guarantees a
// queued entry outlives a stuck one.
func (p *Pool) selectBatchLocked(principal string) (*slot, bool) {
	n := p.liveCountLocked()
	if n == 0 {
		return nil, false
	}
	home := p.liveSlotLocked(homeFor(principal, n))
	var idleWarm, idleAny, least *slot
	for _, s := range p.slots {
		if s.retiring || s.br == nil {
			continue
		}
		br := s.br
		if br.inflightLocked() >= p.cfg.BatchDepth {
			continue
		}
		if g := s.gates[br.gateName]; g == nil || !g.Alive() {
			// A dead worker is selectable only once its ring has drained —
			// leaseBatchLocked respawns it on arrival.
			if br.inflightLocked() > 0 {
				continue
			}
		}
		if br.hookSeq == br.pubSeq && !br.inBody {
			if br.lastPrincipal == principal && idleWarm == nil {
				idleWarm = s
			}
			if idleAny == nil || s == home {
				idleAny = s
			}
		}
		if least == nil || br.inflightLocked() < least.br.inflightLocked() {
			least = s
		}
	}
	pick := idleWarm
	if pick == nil {
		pick = idleAny
	}
	if pick == nil {
		pick = least
	}
	if pick == nil {
		return nil, false
	}
	return pick, pick != home
}

// scrubPosLocked zeroes one ring position's argument block and header
// and clears its owner.
func (p *Pool) scrubPosLocked(s *slot, pos int) error {
	br := s.br
	if err := p.root.Zero(br.ring.EntryAddr(uint64(pos)), p.entrySize); err != nil {
		return err
	}
	hdr := br.ring.HdrAddr(uint64(pos))
	p.root.Task.AtomicStore64(hdr, 0)
	p.root.Task.AtomicStore64(hdr+8, 0)
	br.owner[pos] = ""
	return nil
}

// leaseBatchLocked reserves the next ring entry on s for principal. The
// position is scrubbed here if it still holds another principal's bytes,
// so the producer gets a clean block to marshal into; dead gates (the
// worker and the slot's classic nested gates alike) are replaced first.
func (p *Pool) leaseBatchLocked(s *slot, principal string, stolen bool) (*Lease, error) {
	br := s.br
	// Respawn a dead worker — selection only routed us here if the ring
	// is fully drained, so the whole arena (stale residue included) can
	// be reset wholesale.
	if g := s.gates[br.gateName]; g == nil || !g.Alive() {
		if g != nil {
			g.Close()
		}
		size := sthread.BatchRingBytes(p.cfg.BatchDepth, p.entrySize)
		if err := p.root.Zero(s.argBase, size); err != nil {
			return nil, fmt.Errorf("gatepool: resetting slot %d ring: %w", s.index, err)
		}
		gate, err := p.newBatchGate(s, p.batchDef)
		if err != nil {
			return nil, fmt.Errorf("gatepool: replacing dead batch gate %q: %w", p.batchDef.Name, err)
		}
		s.gates[p.batchDef.Name] = gate
		br = s.br
		s.replaced++
		p.replaced++
	}
	// Liveness-probe the classic nested gates, as leaseLocked does.
	for _, def := range p.cfg.Gates {
		if def.Batch != nil {
			continue
		}
		if g := s.gates[def.Name]; g != nil {
			if g.Alive() {
				continue
			}
			g.Close()
		}
		gate, err := p.newGate(s, def)
		if err != nil {
			return nil, fmt.Errorf("gatepool: replacing dead gate %q: %w", def.Name, err)
		}
		s.gates[def.Name] = gate
		s.replaced++
		p.replaced++
	}

	seq := br.nextSeq
	pos := int(seq % uint64(p.cfg.BatchDepth))
	scrubbed := false
	switch owner := br.owner[pos]; {
	case owner == "" || p.cfg.NoScrub:
	case owner != principal:
		if err := p.scrubPosLocked(s, pos); err != nil {
			return nil, fmt.Errorf("gatepool: scrubbing slot %d pos %d: %w", s.index, pos, err)
		}
		scrubbed = true
		s.scrubs++
		p.scrubs++
	default:
		// Reusing a position warm with our own bytes: the affinity win.
		p.affinityHits++
	}
	br.owner[pos] = principal
	br.nextSeq++
	lease := &Lease{
		Principal: principal,
		Slot:      s.index,
		ArgTag:    s.argTag,
		Arg:       br.ring.EntryAddr(seq),
		Scrubbed:  scrubbed,
		Stolen:    stolen,
		pool:      p,
		s:         s,
		batch:     true,
		seq:       seq,
	}
	br.entries[pos] = ringEntry{
		seq:       seq,
		lease:     lease,
		principal: principal,
		active:    true,
		fd:        -1,
	}
	if stolen {
		s.steals++
		p.steals++
	}
	s.principal = principal
	p.acquires++
	return lease, nil
}

// CallBatch commits the lease's ring entry and blocks until the slot
// worker completes it, returning the worker's return word. connID is
// stored into the schema's demux words at dispatch (along with fd, when
// the schema declares them); fd, when non-negative, is granted to the
// worker for the duration of the entry and revoked at completion. The
// one-publish-per-commit doorbell is amortized by the ring: if the
// worker is mid-batch the publish costs no wake at all.
func (l *Lease) CallBatch(caller *sthread.Sthread, connID uint64, fd int, perm kernel.FDPerm) (vm.Addr, error) {
	p := l.pool
	if !l.batch {
		return 0, ErrNotBatched
	}
	p.mu.Lock()
	if l.done {
		p.mu.Unlock()
		return 0, errors.New("gatepool: CallBatch on a released lease")
	}
	br := l.s.br
	e := br.entryFor(l.seq)
	if e.seq != l.seq || e.committed {
		p.mu.Unlock()
		return 0, errors.New("gatepool: CallBatch entry already committed")
	}
	e.connID = connID
	e.fd = fd
	e.fdPerm = perm
	if caller != nil {
		e.caller = caller.Task
	}
	e.committed = true
	target := br.advancePubLocked()
	ring := br.ring
	p.mu.Unlock()
	if err := ring.PublishTo(target); err != nil {
		return 0, err
	}
	return l.batchAwait()
}

// batchAwait blocks on the lease's current ring binding, chasing it
// across migrations: a steal aborts the producer out of the old ring and
// sets rebound, and the loop re-reads the binding and waits again.
func (l *Lease) batchAwait() (vm.Addr, error) {
	p := l.pool
	for {
		p.mu.Lock()
		ring, seq := l.s.br.ring, l.seq
		p.mu.Unlock()
		ret, err := ring.Await(seq)
		if err != nil {
			p.mu.Lock()
			if l.rebound {
				l.rebound = false
				p.mu.Unlock()
				continue
			}
			p.mu.Unlock()
		}
		return ret, err
	}
}

// Dispatched reports whether service of this lease's work has begun: a
// classic lease dispatches the moment it calls, so it is always true; a
// batched lease's ring entry may still be queued behind a busy worker.
// Expiry policies use it — a connection whose worker has not yet read a
// byte is waiting, not idle, and reaping it would silently drop its
// queued input.
func (l *Lease) Dispatched() bool {
	if !l.batch {
		return true
	}
	p := l.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if l.done || l.s == nil || l.s.br == nil {
		return true
	}
	return l.s.br.hookSeq > l.seq
}

// batchDispatch is the worker-side gate into an entry: it runs on the
// worker goroutine just before the body sees the entry. Cancelled
// entries are consumed here without running; live ones get the
// principal-switch scrub, their demux words, and their fd grant.
func (p *Pool) batchDispatch(s *slot, seq uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	br := s.br
	br.hookSeq = seq + 1
	// An entry may not dispatch until every earlier entry on this ring is
	// fully retired — consumed by the worker AND released by its producer.
	// The release half is the point: after CallBatch returns, the producer
	// is still reading its result bytes and running its per-connection
	// unwind (EndConn), and the classic exclusive lease guaranteed both
	// finished before the next connection could touch the slot. Waiting
	// here preserves that invariant — a later entry's scrub cannot destroy
	// results a producer has not read, and slot-owned cleanup (e.g. sshd's
	// worker demotion) lands before the next principal's service begins.
	// The wait is producer-unwind-short, so the run-to-completion sweep
	// keeps its amortized doorbell; it does not park the worker's futex.
	for br.recycled < seq {
		p.retired.Wait()
	}
	e := br.entryFor(seq)
	if e.seq != seq || e.cancelled {
		p.consumeLocked(s, e)
		return errCancelled
	}

	// Principal-switch scrub: zero every position whose resident bytes
	// belong to a different principal's finished entry. Positions holding
	// other principals' *pending* entries are left alone — that window is
	// the documented batching exposure, and zeroing them would destroy
	// their producers' arguments.
	if !p.cfg.NoScrub {
		zeroed, dirtySkipped := false, false
		for pos := range br.owner {
			owner := br.owner[pos]
			if owner == "" {
				continue
			}
			if owner == e.principal {
				if uint64(pos) != seq%uint64(len(br.entries)) {
					dirtySkipped = true
				}
				continue
			}
			if pe := &br.entries[pos]; pe.active && !pe.consumed {
				continue
			}
			if err := p.scrubPosLocked(s, pos); err != nil {
				p.consumeLocked(s, e)
				return err
			}
			zeroed = true
		}
		if zeroed {
			s.scrubs++
			p.scrubs++
		} else if dirtySkipped {
			s.scrubsSkipped++
			p.scrubsSkipped++
		}
	}
	br.lastPrincipal = e.principal
	s.principal = e.principal

	// Demux words go in after the scrub pass, straight into the entry
	// block the worker is about to read.
	if sch := p.cfg.Schema; sch != nil && sch.HasDemux() {
		arg := br.ring.EntryAddr(seq)
		p.root.Store64(arg+sch.ConnIDOff(), e.connID)
		fdw := uint64(0)
		if e.fd >= 0 {
			fdw = uint64(e.fd)
		}
		p.root.Store64(arg+sch.FDOff(), fdw)
	}

	if e.fd >= 0 && e.caller != nil {
		g := s.gates[br.gateName]
		if g == nil {
			p.consumeLocked(s, e)
			return errCancelled
		}
		if err := e.caller.ShareFDTo(g.Sthread().Task, e.fd, e.fdPerm); err != nil {
			p.consumeLocked(s, e)
			return fmt.Errorf("gatepool: granting fd %d: %w", e.fd, err)
		}
	}
	br.inBody = true
	return nil
}

// batchComplete retires an entry the worker finished: revoke its fd,
// recycle its position, and — if this drained the slot's ring — steal
// queued work from the most backlogged sibling so the worker keeps
// running to completion instead of parking.
func (p *Pool) batchComplete(s *slot, seq uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	br := s.br
	br.inBody = false
	e := br.entryFor(seq)
	if e.seq == seq {
		if e.fd >= 0 {
			if g := s.gates[br.gateName]; g != nil {
				g.Sthread().Task.CloseFD(e.fd)
			}
		}
		s.invocations.Add(1)
		p.consumeLocked(s, e)
	}
	if br.hookSeq == br.pubSeq && !p.closed {
		p.stealIntoLocked(s)
	}
}

// consumeLocked marks an entry consumed and drives the recycle cursor,
// waking waiters and reaping a retiring slot that just went quiet. Safe
// from both producer and worker contexts; the worker context defers the
// actual removal to a fresh goroutine because closing the slot's gates
// joins the worker itself.
func (p *Pool) consumeLocked(s *slot, e *ringEntry) {
	e.consumed = true
	e.active = false
	e.lease = nil
	s.br.recycleLocked()
	p.retired.Broadcast()
	p.freed.Signal()
	if p.draining {
		p.freed.Broadcast()
	}
	if s.retiring && s.br.inflightLocked() == 0 {
		go p.reapRetiring(s)
	}
}

// reapRetiring removes a retiring slot once its ring has drained,
// re-checking everything under the lock: the slot may already be gone,
// or new work may never arrive (retiring slots take no reservations).
func (p *Pool) reapRetiring(s *slot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || !s.retiring || s.br == nil || s.br.inflightLocked() != 0 {
		return
	}
	for _, live := range p.slots {
		if live == s {
			p.removeSlotLocked(s)
			p.freed.Broadcast()
			return
		}
	}
}

// stealIntoLocked migrates the oldest undispatched entry from the most
// backlogged stuck sibling onto dst's ring. Only victims whose worker is
// parked inside an entry body are robbed: a worker that is sweeping will
// reach its queue on its own, and a dead gate's producers have already
// been failed by Await.
func (p *Pool) stealIntoLocked(dst *slot) {
	dbr := dst.br
	if dst.retiring || dbr.inflightLocked() >= p.cfg.BatchDepth {
		return
	}
	if g := dst.gates[dbr.gateName]; g == nil || !g.Alive() {
		return
	}
	var victim *slot
	var backlog uint64
	for _, v := range p.slots {
		if v == dst || v.br == nil || !v.br.inBody {
			continue
		}
		if g := v.gates[v.br.gateName]; g == nil || !g.Alive() {
			continue
		}
		if q := v.br.pubSeq - v.br.hookSeq; q > backlog {
			victim, backlog = v, q
		}
	}
	if victim == nil {
		return
	}
	vbr := victim.br
	var src *ringEntry
	for seq := vbr.hookSeq; seq < vbr.pubSeq; seq++ {
		e := vbr.entryFor(seq)
		if e.seq == seq && e.committed && !e.cancelled && !e.consumed && e.lease != nil {
			src = e
			break
		}
	}
	if src == nil {
		return
	}

	l := src.lease
	oldSeq := src.seq
	nseq := dbr.nextSeq
	npos := int(nseq % uint64(p.cfg.BatchDepth))
	if owner := dbr.owner[npos]; owner != "" && owner != src.principal && !p.cfg.NoScrub {
		if p.scrubPosLocked(dst, npos) != nil {
			return
		}
		dst.scrubs++
		p.scrubs++
	}
	dbr.owner[npos] = src.principal
	// Move the argument bytes the producer marshalled before committing.
	as := p.root.Task.AS
	from := vbr.ring.EntryAddr(oldSeq)
	to := dbr.ring.EntryAddr(nseq)
	for off := vm.Addr(0); off < vm.Addr(p.entrySize); off += 8 {
		w, err := as.Load64(from + off)
		if err != nil {
			return
		}
		if as.Store64(to+off, w) != nil {
			return
		}
	}
	dbr.entries[npos] = ringEntry{
		seq:       nseq,
		lease:     l,
		principal: src.principal,
		active:    true,
		committed: true,
		connID:    src.connID,
		fd:        src.fd,
		fdPerm:    src.fdPerm,
		caller:    src.caller,
	}
	dbr.nextSeq++
	// Cancel the original in place: the victim worker will consume it
	// when it finally sweeps past, and the producer will never Release
	// it, so retire the released half here.
	src.cancelled = true
	src.released = true
	src.lease = nil
	// Re-point the lease, then kick its producer out of the old Await.
	l.s = dst
	l.seq = nseq
	l.Slot = dst.index
	l.Arg = to
	l.ArgTag = dst.argTag
	l.Stolen = true
	l.rebound = true
	dst.steals++
	p.steals++
	p.migrations++
	target := dbr.advancePubLocked()
	dbr.ring.PublishTo(target)
	vbr.ring.AbortPending(oldSeq)
}

// releaseBatchLocked is the batched arm of Lease.Release: an uncommitted
// entry is cancelled and published so the worker retires it; a committed
// one just sheds its released flag. Entries stranded by a dead worker
// are consumed here so the ring can drain and the gate respawn.
func (p *Pool) releaseBatchLocked(l *Lease) {
	s := l.s
	br := s.br
	e := br.entryFor(l.seq)
	if e.seq != l.seq || e.lease != l && e.lease != nil {
		return
	}
	e.released = true
	if !e.committed {
		e.cancelled = true
		e.committed = true
		target := br.advancePubLocked()
		br.ring.PublishTo(target)
	}
	if !e.consumed {
		if g := s.gates[br.gateName]; g == nil || !g.Alive() {
			e.consumed = true
			e.active = false
			e.lease = nil
		}
	}
	br.recycleLocked()
	p.retired.Broadcast()
	if s.retiring && br.inflightLocked() == 0 {
		for _, live := range p.slots {
			if live == s {
				p.removeSlotLocked(s)
				break
			}
		}
	}
}
