// ConnTable: the conn-id demultiplexer shared by the pool-serving
// servers (httpd, sshd, pop3). A pooled server stores each connection's
// gate-side state here, writes the issued id into the slot's argument
// block, and a gate invocation looks the state back up by the id it
// reads from the block.
//
// The id is worker-supplied and therefore untrusted: a compromised
// worker can name any connection's id. The isolation argument — shared
// by every user of this table — is the slot pin the caller must apply on
// top of the lookup: a gate holds no argument tag but its own slot's, so
// requiring the looked-up state to anchor at exactly the gate's argument
// base (state's Lease.Arg == the invocation's arg) keeps cross-slot
// state unreachable even under a forged id.
//
// For datagram serving the table additionally carries last-touch
// timestamps: a flow is "a source address we heard from recently", so
// idle expiry needs to ask "has id i been quiet for d?" and remove it
// atomically with the answer (RemoveIfIdle) — a separate Get+Delete
// would race a packet arriving between the two. Ids are monotonic and
// never reused, so an expired flow's id can never alias a later flow:
// a stale id written into a slot's argument block after expiry simply
// fails the lookup.

package gatepool

import (
	"sync"
	"time"
)

type connEntry[T any] struct {
	v     T
	touch time.Time
}

// ConnTable issues connection ids and stores per-connection values of
// type T. The zero value is ready to use. All methods are safe for
// concurrent use.
type ConnTable[T any] struct {
	mu   sync.Mutex
	next uint64
	m    map[uint64]connEntry[T]
}

// Put stores v under a fresh id (stamped as touched now) and returns the
// id. Ids are monotonic: no id is ever issued twice, even after Delete
// or RemoveIfIdle, so expiry cannot cause id aliasing.
func (c *ConnTable[T]) Put(v T) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[uint64]connEntry[T])
	}
	c.next++
	c.m[c.next] = connEntry[T]{v: v, touch: time.Now()}
	return c.next
}

// Get returns the value stored under id. Callers must additionally pin
// the result to the invoking slot (see the package comment above).
func (c *ConnTable[T]) Get(id uint64) (T, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[id]
	return e.v, ok
}

// Delete drops the value stored under id.
func (c *ConnTable[T]) Delete(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, id)
}

// Touch refreshes id's last-activity stamp, reporting whether the id is
// still present (false means the entry already expired or was deleted —
// the caller is looking at a dead flow and must re-register).
func (c *ConnTable[T]) Touch(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[id]
	if !ok {
		return false
	}
	e.touch = time.Now()
	c.m[id] = e
	return true
}

// LastTouch returns id's last-activity stamp.
func (c *ConnTable[T]) LastTouch(id uint64) (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[id]
	return e.touch, ok
}

// RemoveIfIdle removes id iff its last touch is at least idle ago,
// returning the removed value. The check and the removal are one
// critical section: a Touch that lands first keeps the entry alive, a
// Touch that lands after sees the entry gone and reports false — there
// is no window where expiry removes a flow that just spoke.
func (c *ConnTable[T]) RemoveIfIdle(id uint64, idle time.Duration) (T, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[id]
	if !ok || time.Since(e.touch) < idle {
		var zero T
		return zero, false
	}
	delete(c.m, id)
	return e.v, true
}

// Len reports the number of live entries.
func (c *ConnTable[T]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
