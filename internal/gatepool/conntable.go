// ConnTable: the conn-id demultiplexer shared by the pool-serving
// servers (httpd, sshd, pop3, privsep, dnsd). A pooled server stores
// each connection's gate-side state here, writes the issued id into the
// slot's argument block, and a gate invocation looks the state back up
// by the id it reads from the block.
//
// The id is worker-supplied and therefore untrusted: a compromised
// worker can name any connection's id. The isolation argument — shared
// by every user of this table — is the slot pin the caller must apply on
// top of the lookup: a gate holds no argument tag but its own slot's, so
// requiring the looked-up state to anchor at exactly the gate's argument
// base (state's Lease.Arg == the invocation's arg) keeps cross-slot
// state unreachable even under a forged id.
//
// For datagram serving the table additionally carries last-touch
// timestamps: a flow is "a source address we heard from recently", so
// idle expiry needs to ask "has id i been quiet for d?" and remove it
// atomically with the answer (RemoveIfIdle) — a separate Get+Delete
// would race a packet arriving between the two. Ids are monotonic per
// shard and never reused, so an expired flow's id can never alias a
// later flow: a stale id written into a slot's argument block after
// expiry simply fails the lookup.
//
// # Sharded layout
//
// The table was first built as one Go map behind one mutex — fine for
// dozens of connections, a serial bottleneck at the million-principal
// scale the runtime now targets. The current layout is sharded and
// fixed-probe:
//
//   - A power-of-two shard count sized from GOMAXPROCS at first use
//     (Reshard changes it live). Every entry's owning shard is encoded
//     in the low connShardBits of its id, so a lookup takes exactly one
//     shard lock — no search, no global ordering.
//   - Put balances load with two-choice shard selection: sample two
//     shards, insert into the less occupied (an atomic read each; the
//     classic power-of-two-choices bound keeps the deepest shard within
//     a constant factor of the mean without any global coordination).
//   - Within a shard, entries live in fixed-width buckets addressed by
//     two-choice hashing on the id: an id has exactly two candidate
//     buckets (two independent multiplicative hashes), insertion takes
//     a free slot in the emptier one, and a lookup probes at most
//     2×connBucketWidth slots — a hard bound, never a chain walk. When
//     both candidates are full the shard doubles its bucket array and
//     rehashes (cuckoo-style placement without the kick sequence: at
//     our load factors growth is cheaper than displacement and keeps
//     deletion trivially correct — clearing a slot can never break
//     another id's probe path).
//   - Each shard carries its own generation counter; an id is
//     (generation << connShardBits) | shard index. Generations only
//     grow, and Reshard seeds every new shard at the global maximum, so
//     no id is ever issued twice — the property the stale-id-fails-
//     lookup isolation argument rests on — while id allocation stays a
//     per-shard increment with no cross-shard contention.
//
// Idle timestamps are monotonic (Monotime: immune to wall-clock steps —
// an NTP step must move neither a live flow into the reaper's window
// nor a dead one out of it) and lazily tracked: a table that never
// expires (a stream app with no IdleTimeout) skips the clock read and
// the stamp store entirely until TrackIdle arms them. Touch is a single
// bounded probe and an in-place stamp — no rehash, no entry copy.

package gatepool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// connShardBits is the width of the shard-index field in an id; the
// shard count can never exceed 1<<connShardBits. Fixed (rather than
// derived from the live shard count) so ids issued under one shard
// count still decode to their owning shard after a Reshard.
const connShardBits = 8

// connMaxShards bounds Reshard.
const connMaxShards = 1 << connShardBits

// connBucketWidth is the slot count of one probe bucket. Two candidate
// buckets per id makes every lookup at most 2×connBucketWidth probes.
const connBucketWidth = 8

// connClockBase anchors Monotime. time.Since reads the runtime's
// monotonic clock, so stamps derived from it are immune to wall-clock
// steps (the failure mode of the old time.Now().UnixNano() stamps).
var connClockBase = time.Now()

// Monotime is the table's clock: nanoseconds of monotonic time since
// process start, never zero (zero marks an unstamped slot) and never
// affected by NTP steps. The serve runtime shares it for its stream
// idle stamps.
func Monotime() int64 { return int64(time.Since(connClockBase)) + 1 }

// ConnTableStats is a point-in-time occupancy census, surfaced through
// serve.Snapshot so soak runs can watch table health (a skewed MaxShard
// or a runaway Grows means the hashing is misbehaving under the load).
type ConnTableStats struct {
	Shards   int    // live shard count
	Entries  int    // live entries across all shards
	MaxShard int    // deepest shard's live-entry count
	Capacity int    // total bucket slots across all shards
	Grows    uint64 // bucket-array doublings since creation
}

// connBucket is one fixed-width probe unit: parallel arrays so a probe
// walks 64 bytes of ids before touching values at all.
type connBucket[T any] struct {
	ids   [connBucketWidth]uint64 // 0 = empty slot
	touch [connBucketWidth]int64  // Monotime stamp; 0 = unstamped
	vals  [connBucketWidth]T
}

// connShard is one lock domain: a generation counter and a growable
// two-choice bucket array.
type connShard[T any] struct {
	mu    sync.Mutex
	moved bool // a Reshard migrated this shard; callers must reload state
	gen   uint64
	mask  uint32 // bucket count - 1 (bucket count is a power of two)
	grows uint64
	bkts  []connBucket[T]
	n     atomic.Int64 // live entries (read lock-free by Len and Put)
}

// connState is the published shard array; immutable once stored, so
// readers take no global lock — they load the pointer, pick a shard,
// and lock only that.
type connState[T any] struct {
	mask   uint64 // len(shards) - 1
	shards []*connShard[T]
}

// ConnTable issues connection ids and stores per-connection values of
// type T. The zero value is ready to use. All methods are safe for
// concurrent use.
type ConnTable[T any] struct {
	state atomic.Pointer[connState[T]]
	mu    sync.Mutex // serializes lazy init and Reshard
	rr    atomic.Uint64
	track atomic.Bool
	clock atomic.Pointer[func() int64]
}

// now reads the table's clock. Called only outside shard locks: the
// injected clock is a dynamic function value, and the lockcallback
// discipline (no dynamic calls under a gatepool mutex) applies to the
// table like everything else in the package.
func (c *ConnTable[T]) now() int64 {
	if f := c.clock.Load(); f != nil {
		return (*f)()
	}
	return Monotime()
}

// SetClock injects a clock for tests (nanosecond readings; must never
// return zero or go backwards). Production tables use Monotime.
func (c *ConnTable[T]) SetClock(now func() int64) {
	if now == nil {
		c.clock.Store(nil)
		return
	}
	c.clock.Store(&now)
}

// TrackIdle arms touch tracking: from now on Put stamps new entries,
// Touch refreshes stamps, and RemoveIfIdle can expire. Existing entries
// are stamped as touched now (an entry that predates arming must not
// read as idle-forever). Untracked tables never expire anything and
// never read the clock — the lazy default for apps with no IdleTimeout.
func (c *ConnTable[T]) TrackIdle() {
	if c.track.Swap(true) {
		return
	}
	stamp := c.now()
	// Stamp every pre-existing entry, restarting over the fresh state if
	// a Reshard migrates shards mid-pass (migration preserves stamps, so
	// the restart converges).
	for {
		st := c.state.Load()
		if st == nil {
			return
		}
		retry := false
		for _, s := range st.shards {
			s.mu.Lock()
			if s.moved {
				s.mu.Unlock()
				retry = true
				break
			}
			for b := range s.bkts {
				bkt := &s.bkts[b]
				for j := 0; j < connBucketWidth; j++ {
					if bkt.ids[j] != 0 && bkt.touch[j] == 0 {
						bkt.touch[j] = stamp
					}
				}
			}
			s.mu.Unlock()
		}
		if !retry {
			return
		}
		runtime.Gosched()
	}
}

// defaultConnShards sizes the initial shard array: a power of two at
// least four times the host parallelism (writers outnumber cores under
// churn; headroom keeps two Put choices from colliding), floored for
// small hosts, capped at the id encoding's limit.
func defaultConnShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > connMaxShards {
		n = connMaxShards
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newConnState builds a shard array; gen seeds every shard's generation
// counter (0 for a fresh table, the global maximum for a Reshard).
func newConnState[T any](shards int, gen uint64) *connState[T] {
	st := &connState[T]{mask: uint64(shards - 1), shards: make([]*connShard[T], shards)}
	for i := range st.shards {
		st.shards[i] = &connShard[T]{gen: gen, mask: 3, bkts: make([]connBucket[T], 4)}
	}
	return st
}

// load returns the published state, lazily creating it on first use.
func (c *ConnTable[T]) load() *connState[T] {
	if st := c.state.Load(); st != nil {
		return st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.state.Load(); st != nil {
		return st
	}
	st := newConnState[T](defaultConnShards(), 0)
	c.state.Store(st)
	return st
}

// lockShardAt locks the shard an id (or raw index) routes to under the
// current state, retrying across a concurrent Reshard: a shard marked
// moved has been migrated into a newer state, so the caller must
// reload and re-route. ok is false only when the table has never been
// written.
func (c *ConnTable[T]) lockShardAt(id uint64) (*connShard[T], bool) {
	for {
		st := c.state.Load()
		if st == nil {
			return nil, false
		}
		s := st.shards[id&st.mask]
		s.mu.Lock()
		if !s.moved {
			return s, true
		}
		s.mu.Unlock()
		runtime.Gosched() // migration in progress; the new state is about to publish
	}
}

// hash1/hash2 are two independent multiplicative mixes of the id; the
// high bits (best mixed) pick the candidate buckets.
func connHash1(id uint64) uint64 {
	id *= 0x9e3779b97f4a7c15
	return id >> 32
}

func connHash2(id uint64) uint64 {
	id ^= id >> 33
	id *= 0xbf58476d1ce4e5b9
	return id >> 32
}

// findSlot locates id in the shard's two candidate buckets. Caller
// holds the shard lock.
func (s *connShard[T]) findSlot(id uint64) (*connBucket[T], int) {
	b1 := &s.bkts[connHash1(id)&uint64(s.mask)]
	for j := 0; j < connBucketWidth; j++ {
		if b1.ids[j] == id {
			return b1, j
		}
	}
	b2 := &s.bkts[connHash2(id)&uint64(s.mask)]
	for j := 0; j < connBucketWidth; j++ {
		if b2.ids[j] == id {
			return b2, j
		}
	}
	return nil, 0
}

// place inserts an id into its emptier candidate bucket, growing the
// bucket array until a free slot exists. Caller holds the shard lock.
func (s *connShard[T]) place(id uint64, touch int64, v T) {
	for {
		b1 := &s.bkts[connHash1(id)&uint64(s.mask)]
		b2 := &s.bkts[connHash2(id)&uint64(s.mask)]
		if freeSlots(b2) > freeSlots(b1) {
			b1 = b2
		}
		for j := 0; j < connBucketWidth; j++ {
			if b1.ids[j] == 0 {
				b1.ids[j] = id
				b1.touch[j] = touch
				b1.vals[j] = v
				return
			}
		}
		s.grow()
	}
}

func freeSlots[T any](b *connBucket[T]) int {
	free := 0
	for j := 0; j < connBucketWidth; j++ {
		if b.ids[j] == 0 {
			free++
		}
	}
	return free
}

// grow doubles the bucket array and rehashes every entry under the new
// mask. Rehashing is two-choice placement again; if the doubled array
// still cannot place an entry (pathological clustering) the loop in
// place doubles once more.
func (s *connShard[T]) grow() {
	old := s.bkts
	s.mask = s.mask*2 + 1
	s.bkts = make([]connBucket[T], s.mask+1)
	s.grows++
	for b := range old {
		bkt := &old[b]
		for j := 0; j < connBucketWidth; j++ {
			if bkt.ids[j] != 0 {
				s.rehome(bkt.ids[j], bkt.touch[j], bkt.vals[j])
			}
		}
	}
}

// rehome is place without the growth loop, used during grow itself; on
// the rare double-collision it grows again and restarts (grow calls
// rehome on a fresh, larger array, so this terminates).
func (s *connShard[T]) rehome(id uint64, touch int64, v T) {
	b1 := &s.bkts[connHash1(id)&uint64(s.mask)]
	b2 := &s.bkts[connHash2(id)&uint64(s.mask)]
	if freeSlots(b2) > freeSlots(b1) {
		b1 = b2
	}
	for j := 0; j < connBucketWidth; j++ {
		if b1.ids[j] == 0 {
			b1.ids[j] = id
			b1.touch[j] = touch
			b1.vals[j] = v
			return
		}
	}
	s.grow()
}

// Put stores v under a fresh id and returns the id. Ids encode their
// owning shard and only ever grow within it: no id is ever issued
// twice, even after Delete, RemoveIfIdle, or Reshard, so expiry cannot
// cause id aliasing. The entry is stamped as touched now only when the
// table tracks idleness (TrackIdle); untracked tables skip the clock
// entirely.
func (c *ConnTable[T]) Put(v T) uint64 {
	var stamp int64
	if c.track.Load() {
		stamp = c.now()
	}
	for {
		st := c.load()
		// Two-choice shard selection: two samples driven by a mixed
		// rotating counter, insert into the less occupied.
		r := c.rr.Add(1)
		i1 := connHash1(r) & st.mask
		i2 := connHash2(r) & st.mask
		if st.shards[i2].n.Load() < st.shards[i1].n.Load() {
			i1 = i2
		}
		s := st.shards[i1]
		s.mu.Lock()
		if s.moved {
			s.mu.Unlock()
			runtime.Gosched()
			continue // a Reshard replaced the state; pick again
		}
		s.gen++
		id := s.gen<<connShardBits | i1
		s.place(id, stamp, v)
		s.n.Add(1)
		s.mu.Unlock()
		return id
	}
}

// Get returns the value stored under id. Callers must additionally pin
// the result to the invoking slot (see the package comment above).
func (c *ConnTable[T]) Get(id uint64) (T, bool) {
	var zero T
	if id == 0 {
		return zero, false
	}
	s, ok := c.lockShardAt(id)
	if !ok {
		return zero, false
	}
	b, j := s.findSlot(id)
	if b == nil {
		s.mu.Unlock()
		return zero, false
	}
	v := b.vals[j]
	s.mu.Unlock()
	return v, true
}

// Delete drops the value stored under id.
func (c *ConnTable[T]) Delete(id uint64) {
	if id == 0 {
		return
	}
	s, ok := c.lockShardAt(id)
	if !ok {
		return
	}
	if b, j := s.findSlot(id); b != nil {
		var zero T
		b.ids[j] = 0
		b.touch[j] = 0
		b.vals[j] = zero
		s.n.Add(-1)
	}
	s.mu.Unlock()
}

// Touch refreshes id's last-activity stamp, reporting whether the id is
// still present (false means the entry already expired or was deleted —
// the caller is looking at a dead flow and must re-register). This is
// the hottest packet-mode operation: one bounded probe, one in-place
// store — no rehash, no entry copy, and no clock read on untracked
// tables.
func (c *ConnTable[T]) Touch(id uint64) bool {
	if id == 0 {
		return false
	}
	var stamp int64
	if c.track.Load() {
		stamp = c.now()
	}
	s, ok := c.lockShardAt(id)
	if !ok {
		return false
	}
	b, j := s.findSlot(id)
	if b == nil {
		s.mu.Unlock()
		return false
	}
	if stamp != 0 {
		b.touch[j] = stamp
	}
	s.mu.Unlock()
	return true
}

// IdleFor reports how long id has been without activity (zero on a
// table not tracking idleness) and whether the id is still present.
func (c *ConnTable[T]) IdleFor(id uint64) (time.Duration, bool) {
	if id == 0 {
		return 0, false
	}
	var now int64
	if c.track.Load() {
		now = c.now()
	}
	s, ok := c.lockShardAt(id)
	if !ok {
		return 0, false
	}
	b, j := s.findSlot(id)
	if b == nil {
		s.mu.Unlock()
		return 0, false
	}
	var idle time.Duration
	if t := b.touch[j]; t != 0 && now > t {
		idle = time.Duration(now - t)
	}
	s.mu.Unlock()
	return idle, true
}

// RemoveIfIdle removes id iff its last touch is at least idle ago,
// returning the removed value. The check and the removal are one
// critical section: a Touch that lands first keeps the entry alive, a
// Touch that lands after sees the entry gone and reports false — there
// is no window where expiry removes a flow that just spoke. On a table
// not tracking idleness nothing is ever idle and nothing is removed.
func (c *ConnTable[T]) RemoveIfIdle(id uint64, idle time.Duration) (T, bool) {
	var zero T
	if id == 0 || !c.track.Load() {
		return zero, false
	}
	now := c.now()
	s, ok := c.lockShardAt(id)
	if !ok {
		return zero, false
	}
	b, j := s.findSlot(id)
	if b == nil || b.touch[j] == 0 || time.Duration(now-b.touch[j]) < idle {
		s.mu.Unlock()
		return zero, false
	}
	v := b.vals[j]
	b.ids[j] = 0
	b.touch[j] = 0
	b.vals[j] = zero
	s.n.Add(-1)
	s.mu.Unlock()
	return v, true
}

// Range calls f for every live entry until f returns false. Each shard
// is visited under its own lock with f called outside it (f may call
// back into the table — Delete, Touch — without deadlock; the
// lockcallback discipline forbids dynamic calls under a gatepool mutex
// anyway). The iteration is a point-in-time census per shard: entries
// added or removed concurrently may or may not be seen, which is the
// right contract for its one caller — the serve runtime's handoff scan,
// which re-checks each id under the runtime lock before acting on it.
func (c *ConnTable[T]) Range(f func(id uint64, v T) bool) {
	for {
		st := c.state.Load()
		if st == nil {
			return
		}
		retry := false
		for _, s := range st.shards {
			var ids []uint64
			var vals []T
			s.mu.Lock()
			if s.moved {
				s.mu.Unlock()
				retry = true
				break
			}
			for b := range s.bkts {
				bkt := &s.bkts[b]
				for j := 0; j < connBucketWidth; j++ {
					if bkt.ids[j] != 0 {
						ids = append(ids, bkt.ids[j])
						vals = append(vals, bkt.vals[j])
					}
				}
			}
			s.mu.Unlock()
			for i, id := range ids {
				if !f(id, vals[i]) {
					return
				}
			}
		}
		if !retry {
			return
		}
		runtime.Gosched()
	}
}

// Len reports the number of live entries. Lock-free: a sum of per-shard
// atomic counters.
func (c *ConnTable[T]) Len() int {
	st := c.state.Load()
	if st == nil {
		return 0
	}
	total := int64(0)
	for _, s := range st.shards {
		total += s.n.Load()
	}
	return int(total)
}

// Stats returns the occupancy census. Takes each shard lock briefly
// (restarting if a Reshard migrates shards mid-census); intended for
// snapshots and soak accounting, not hot paths.
func (c *ConnTable[T]) Stats() ConnTableStats {
	for {
		st := c.state.Load()
		if st == nil {
			return ConnTableStats{}
		}
		stats := ConnTableStats{Shards: len(st.shards)}
		retry := false
		for _, s := range st.shards {
			s.mu.Lock()
			if s.moved {
				s.mu.Unlock()
				retry = true
				break
			}
			n := int(s.n.Load())
			stats.Entries += n
			if n > stats.MaxShard {
				stats.MaxShard = n
			}
			stats.Capacity += len(s.bkts) * connBucketWidth
			stats.Grows += s.grows
			s.mu.Unlock()
		}
		if !retry {
			return stats
		}
		runtime.Gosched()
	}
}

// Reshard changes the shard count to the next power of two at or above
// n (clamped to [1, 256]), migrating every live entry. Ids survive: an
// entry's encoded shard index re-routes under the new mask, and every
// new shard's generation counter starts at the old global maximum, so
// the no-id-reuse guarantee holds across the migration. Safe to call
// concurrently with every other method.
func (c *ConnTable[T]) Reshard(n int) {
	if n < 1 {
		n = 1
	}
	if n > connMaxShards {
		n = connMaxShards
	}
	n = ceilPow2(n)
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.state.Load()
	if old == nil {
		c.state.Store(newConnState[T](n, 0))
		return
	}
	if len(old.shards) == n {
		return
	}
	// First pass: freeze each old shard (migrate + mark moved) while
	// collecting the global maximum generation. Operations that raced
	// onto a frozen shard spin briefly in lockShardAt until the new
	// state publishes.
	var maxGen uint64
	fresh := newConnState[T](n, 0)
	for _, s := range old.shards {
		s.mu.Lock()
		if s.gen > maxGen {
			maxGen = s.gen
		}
		for b := range s.bkts {
			bkt := &s.bkts[b]
			for j := 0; j < connBucketWidth; j++ {
				if id := bkt.ids[j]; id != 0 {
					dst := fresh.shards[id&fresh.mask]
					dst.place(id, bkt.touch[j], bkt.vals[j])
					dst.n.Add(1)
				}
			}
		}
		s.moved = true
		s.mu.Unlock()
	}
	for _, s := range fresh.shards {
		s.gen = maxGen
	}
	c.state.Store(fresh)
}
