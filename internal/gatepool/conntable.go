// ConnTable: the conn-id demultiplexer shared by the pool-serving
// servers (httpd, sshd, pop3). A pooled server stores each connection's
// gate-side state here, writes the issued id into the slot's argument
// block, and a gate invocation looks the state back up by the id it
// reads from the block.
//
// The id is worker-supplied and therefore untrusted: a compromised
// worker can name any connection's id. The isolation argument — shared
// by every user of this table — is the slot pin the caller must apply on
// top of the lookup: a gate holds no argument tag but its own slot's, so
// requiring the looked-up state to anchor at exactly the gate's argument
// base (state's Lease.Arg == the invocation's arg) keeps cross-slot
// state unreachable even under a forged id.

package gatepool

import "sync"

// ConnTable issues connection ids and stores per-connection values of
// type T. The zero value is ready to use. All methods are safe for
// concurrent use.
type ConnTable[T any] struct {
	mu   sync.Mutex
	next uint64
	m    map[uint64]T
}

// Put stores v under a fresh id and returns the id.
func (c *ConnTable[T]) Put(v T) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[uint64]T)
	}
	c.next++
	c.m[c.next] = v
	return c.next
}

// Get returns the value stored under id. Callers must additionally pin
// the result to the invoking slot (see the package comment above).
func (c *ConnTable[T]) Get(id uint64) (T, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[id]
	return v, ok
}

// Delete drops the value stored under id.
func (c *ConnTable[T]) Delete(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, id)
}
