package gatepool

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConnTableBasics: Put issues usable ids, Get returns exactly what
// was stored, Delete removes it, and the zero value is ready to use.
func TestConnTableBasics(t *testing.T) {
	var ct ConnTable[string]
	if _, ok := ct.Get(0); ok {
		t.Fatal("empty table returned a value")
	}
	a := ct.Put("alice")
	b := ct.Put("bob")
	if a == b {
		t.Fatalf("two Puts issued the same id %d", a)
	}
	if v, ok := ct.Get(a); !ok || v != "alice" {
		t.Fatalf("Get(%d) = %q/%v, want alice/true", a, v, ok)
	}
	if v, ok := ct.Get(b); !ok || v != "bob" {
		t.Fatalf("Get(%d) = %q/%v, want bob/true", b, v, ok)
	}
	ct.Delete(a)
	if _, ok := ct.Get(a); ok {
		t.Fatalf("Get(%d) after Delete still resolves", a)
	}
	if v, ok := ct.Get(b); !ok || v != "bob" {
		t.Fatalf("Delete(%d) disturbed id %d: %q/%v", a, b, v, ok)
	}
	ct.Delete(a) // deleting twice is a no-op
	ct.Delete(b)
	if n := ct.Len(); n != 0 {
		t.Fatalf("Len after deleting everything = %d, want 0", n)
	}
}

// TestConnTableNoIDReuse: ids are never reissued after removal. This is
// the property the slot-pin isolation argument leans on: a gate holding
// a stale conn id (a worker-supplied, untrusted value) must miss, never
// alias a later connection that happened to recycle the id.
func TestConnTableNoIDReuse(t *testing.T) {
	var ct ConnTable[int]
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := ct.Put(i)
		if seen[id] {
			t.Fatalf("id %d reissued after removal (iteration %d)", id, i)
		}
		seen[id] = true
		ct.Delete(id)
		if _, ok := ct.Get(id); ok {
			t.Fatalf("stale id %d still resolves", id)
		}
	}
}

// TestConnTableNoIDReuseAcrossReshard: the no-reuse guarantee must
// survive shard-count changes in both directions — the migrated
// generation counters seed every new shard at the global maximum.
func TestConnTableNoIDReuseAcrossReshard(t *testing.T) {
	var ct ConnTable[int]
	seen := make(map[uint64]int)
	issue := func(round, n int) {
		for i := 0; i < n; i++ {
			id := ct.Put(round*1000 + i)
			if prev, dup := seen[id]; dup {
				t.Fatalf("round %d: id %d reissued (first issued as %d)", round, id, prev)
			}
			seen[id] = round*1000 + i
			if i%2 == 0 {
				ct.Delete(id)
			}
		}
	}
	issue(0, 500)
	ct.Reshard(64)
	issue(1, 500)
	ct.Reshard(2)
	issue(2, 500)
	ct.Reshard(16)
	issue(3, 500)
	// Every undeleted id still resolves to exactly its own value.
	for id, v := range seen {
		got, ok := ct.Get(id)
		if ok && got != v {
			t.Fatalf("id %d resolves to %d, want %d — cross-entry aliasing", id, got, v)
		}
	}
}

// TestConnTableReshardMigrates: live entries and their touch stamps
// survive a reshard; stats reflect the new layout.
func TestConnTableReshardMigrates(t *testing.T) {
	var ct ConnTable[int]
	ct.TrackIdle()
	var fake atomic.Int64
	fake.Store(1)
	ct.SetClock(fake.Load)
	ids := make([]uint64, 0, 300)
	for i := 0; i < 300; i++ {
		ids = append(ids, ct.Put(i))
	}
	fake.Store(1000)
	ct.Reshard(4)
	if s := ct.Stats(); s.Shards != 4 || s.Entries != 300 {
		t.Fatalf("after Reshard(4): stats %+v, want 4 shards / 300 entries", s)
	}
	for i, id := range ids {
		v, ok := ct.Get(id)
		if !ok || v != i {
			t.Fatalf("entry %d lost in migration: %d/%v", i, v, ok)
		}
		// The stamp migrated: entries put at t=1 read as idle for 999ns.
		if idle, ok := ct.IdleFor(id); !ok || idle != 999 {
			t.Fatalf("entry %d idle=%v/%v after migration, want 999ns", i, idle, ok)
		}
	}
	for _, id := range ids {
		ct.Delete(id)
	}
	if n := ct.Len(); n != 0 {
		t.Fatalf("Len after migration churn = %d, want 0", n)
	}
}

// TestConnTableConcurrent: concurrent register/lookup/remove across
// goroutines — every goroutine sees exactly its own values, ids stay
// globally unique, and the table ends empty. Run under -race in CI.
func TestConnTableConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 200
	)
	type entry struct {
		worker int
		round  int
	}
	var ct ConnTable[entry]
	ids := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			live := make([]uint64, 0, rounds)
			for r := 0; r < rounds; r++ {
				id := ct.Put(entry{worker: w, round: r})
				live = append(live, id)
				// Look back at an id this goroutine still owns.
				probe := live[r/2]
				if v, ok := ct.Get(probe); !ok || v.worker != w {
					t.Errorf("worker %d: Get(%d) = %+v/%v, want own entry", w, probe, v, ok)
					return
				}
				// Remove every other id as we go.
				if r%2 == 1 {
					victim := live[len(live)-1]
					live = live[:len(live)-1]
					ct.Delete(victim)
					if _, ok := ct.Get(victim); ok {
						t.Errorf("worker %d: deleted id %d still resolves", w, victim)
						return
					}
				}
			}
			for _, id := range live {
				ct.Delete(id)
			}
			ids[w] = live
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for w, live := range ids {
		for _, id := range live {
			if seen[id] {
				t.Fatalf("id %d issued to two goroutines", id)
			}
			seen[id] = true
			if _, ok := ct.Get(id); ok {
				t.Fatalf("worker %d: id %d survives final Delete", w, id)
			}
		}
	}
}

// TestConnTableShardedProperty is the sharded table's concurrency
// property test: workers churn Put/Get/Touch/Delete/RemoveIfIdle while
// a driver fires Reshard calls across the run. Asserted properties:
// no id is ever issued twice (across workers and reshards), a Get never
// returns another entry's value (no cross-shard aliasing under
// migration), and after every worker deletes its survivors the table's
// Len converges to zero. Run under -race -cpu 1,4 in CI.
func TestConnTableShardedProperty(t *testing.T) {
	const (
		workers = 8
		rounds  = 400
	)
	type entry struct {
		worker, seq int
	}
	var ct ConnTable[entry]
	ct.TrackIdle()

	stop := make(chan struct{})
	var reshards sync.WaitGroup
	reshards.Add(1)
	go func() {
		defer reshards.Done()
		sizes := []int{2, 64, 8, 1, 32, 16}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ct.Reshard(sizes[i%len(sizes)])
			runtime.Gosched()
		}
	}()

	issued := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			all := make([]uint64, 0, rounds)
			live := make([]uint64, 0, rounds)
			for r := 0; r < rounds; r++ {
				id := ct.Put(entry{worker: w, seq: r})
				all = append(all, id)
				live = append(live, id)
				probe := live[rng.Intn(len(live))]
				if v, ok := ct.Get(probe); ok && v.worker != w {
					t.Errorf("worker %d: Get(%d) aliased worker %d's entry", w, probe, v.worker)
					return
				}
				switch rng.Intn(4) {
				case 0:
					victim := live[len(live)-1]
					live = live[:len(live)-1]
					ct.Delete(victim)
				case 1:
					ct.Touch(live[rng.Intn(len(live))])
				case 2:
					// A fresh entry is never idle for an hour: RemoveIfIdle
					// must refuse, and the entry must survive.
					id := live[rng.Intn(len(live))]
					if _, ok := ct.RemoveIfIdle(id, time.Hour); ok {
						t.Errorf("worker %d: fresh id %d removed as hour-idle", w, id)
						return
					}
				}
			}
			for _, id := range live {
				ct.Delete(id)
			}
			issued[w] = all
		}(w)
	}
	wg.Wait()
	close(stop)
	reshards.Wait()

	seen := make(map[uint64]int)
	for w, all := range issued {
		for _, id := range all {
			if prev, dup := seen[id]; dup {
				t.Fatalf("id %d issued to both worker %d and worker %d", id, prev, w)
			}
			seen[id] = w
		}
	}
	if n := ct.Len(); n != 0 {
		t.Fatalf("Len after churn = %d, want 0 (stats: %+v)", n, ct.Stats())
	}
	if s := ct.Stats(); s.Entries != 0 {
		t.Fatalf("stats report %d residual entries after churn: %+v", s.Entries, s)
	}
}

// TestConnTableScale drives the table past the bucket-growth path:
// enough live entries that every shard doubles several times, then
// verifies integrity and full drain-back-to-zero.
func TestConnTableScale(t *testing.T) {
	var ct ConnTable[int]
	const n = 200_000
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = ct.Put(i)
	}
	s := ct.Stats()
	if s.Entries != n {
		t.Fatalf("stats entries %d, want %d", s.Entries, n)
	}
	if s.Grows == 0 {
		t.Fatalf("no bucket growth at %d entries: %+v", n, s)
	}
	// Two-choice shard selection keeps the deepest shard near the mean.
	mean := n / s.Shards
	if s.MaxShard > 2*mean {
		t.Fatalf("shard skew: max %d vs mean %d (%+v)", s.MaxShard, mean, s)
	}
	for i := 0; i < n; i += 9973 {
		if v, ok := ct.Get(ids[i]); !ok || v != i {
			t.Fatalf("Get(%d) = %d/%v, want %d", ids[i], v, ok, i)
		}
	}
	for _, id := range ids {
		ct.Delete(id)
	}
	if got := ct.Len(); got != 0 {
		t.Fatalf("Len after draining %d entries = %d, want 0", n, got)
	}
}

// TestConnTableLazyTouch: an untracked table must never read the clock
// (Put/Touch are stamp-free) and must never expire anything; arming
// TrackIdle stamps pre-existing entries so they do not read as
// idle-forever.
func TestConnTableLazyTouch(t *testing.T) {
	var ct ConnTable[int]
	var reads atomic.Int64
	ct.SetClock(func() int64 { return reads.Add(1) })

	id := ct.Put(1)
	if !ct.Touch(id) {
		t.Fatal("Touch on live entry = false")
	}
	if _, ok := ct.RemoveIfIdle(id, 0); ok {
		t.Fatal("untracked table expired an entry")
	}
	if idle, ok := ct.IdleFor(id); !ok || idle != 0 {
		t.Fatalf("untracked IdleFor = %v/%v, want 0/true", idle, ok)
	}
	if n := reads.Load(); n != 0 {
		t.Fatalf("untracked table read the clock %d times", n)
	}

	ct.TrackIdle()
	if reads.Load() == 0 {
		t.Fatal("TrackIdle did not stamp existing entries")
	}
	if _, ok := ct.RemoveIfIdle(id, time.Hour); ok {
		t.Fatal("freshly-stamped entry removed as hour-idle")
	}
	ct.Delete(id)
}

// TestConnTableTouch: Touch refreshes the last-activity stamp on live
// entries and reports false on dead ones. Driven by an injected clock,
// so the assertion is exact.
func TestConnTableTouch(t *testing.T) {
	var ct ConnTable[int]
	ct.TrackIdle()
	var fake atomic.Int64
	fake.Store(1)
	ct.SetClock(fake.Load)

	id := ct.Put(7)
	fake.Store(500)
	if idle, ok := ct.IdleFor(id); !ok || idle != 499 {
		t.Fatalf("IdleFor = %v/%v, want 499ns/true", idle, ok)
	}
	if !ct.Touch(id) {
		t.Fatal("Touch on live entry = false")
	}
	if idle, ok := ct.IdleFor(id); !ok || idle != 0 {
		t.Fatalf("IdleFor after Touch = %v/%v, want 0/true", idle, ok)
	}
	ct.Delete(id)
	if ct.Touch(id) {
		t.Fatal("Touch on deleted entry = true")
	}
	if _, ok := ct.IdleFor(id); ok {
		t.Fatal("IdleFor on deleted entry present")
	}
}

// TestConnTableRemoveIfIdle: removal happens only past the idle
// threshold, exactly once, and a Touch resets the clock. The injected
// clock makes the thresholds exact — no sleeps.
func TestConnTableRemoveIfIdle(t *testing.T) {
	var ct ConnTable[string]
	ct.TrackIdle()
	var fake atomic.Int64
	fake.Store(1)
	ct.SetClock(fake.Load)

	id := ct.Put("flow")
	if _, ok := ct.RemoveIfIdle(id, time.Hour); ok {
		t.Fatal("fresh entry removed as idle")
	}
	if _, ok := ct.Get(id); !ok {
		t.Fatal("failed RemoveIfIdle deleted the entry anyway")
	}
	fake.Add(int64(3 * time.Millisecond))
	v, ok := ct.RemoveIfIdle(id, time.Millisecond)
	if !ok || v != "flow" {
		t.Fatalf("RemoveIfIdle = %q/%v, want flow/true", v, ok)
	}
	if _, ok := ct.RemoveIfIdle(id, 0); ok {
		t.Fatal("second RemoveIfIdle on the same id succeeded")
	}

	id2 := ct.Put("live")
	fake.Add(int64(3 * time.Millisecond))
	ct.Touch(id2)
	if _, ok := ct.RemoveIfIdle(id2, 2*time.Millisecond); ok {
		t.Fatal("entry removed as idle right after Touch")
	}
	ct.Delete(id2)
}

// TestConnTableExpireTouchRace races Touch against RemoveIfIdle on the
// same id (the register/touch/expire/re-register cycle; run under -race
// in CI). The two outcomes must stay mutually exclusive — either the
// toucher saw the entry alive and it survived, or the expirer took it
// and the toucher saw it dead — and re-registering afterwards must issue
// a fresh id, never revive the old one.
func TestConnTableExpireTouchRace(t *testing.T) {
	var ct ConnTable[int]
	ct.TrackIdle()
	for round := 0; round < 200; round++ {
		id := ct.Put(round)
		time.Sleep(100 * time.Microsecond)

		var touched, removed atomic.Bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			touched.Store(ct.Touch(id))
		}()
		go func() {
			defer wg.Done()
			_, ok := ct.RemoveIfIdle(id, 50*time.Microsecond)
			removed.Store(ok)
		}()
		wg.Wait()

		_, alive := ct.Get(id)
		if removed.Load() == alive {
			t.Fatalf("round %d: removed=%v but alive=%v", round, removed.Load(), alive)
		}
		if !removed.Load() && !touched.Load() {
			t.Fatalf("round %d: neither removed nor touched; entry stuck in limbo", round)
		}
		id2 := ct.Put(round)
		if id2 == id {
			t.Fatalf("round %d: id reused across the expiry race", round)
		}
		ct.Delete(id2)
		ct.Delete(id)
	}
}

// BenchmarkConnTableTouch measures the hot packet-mode path: one
// bounded probe and one in-place stamp per datagram. The old global
// table paid two map hashes plus a full-entry copy under one global
// mutex here.
func BenchmarkConnTableTouch(b *testing.B) {
	var ct ConnTable[int]
	ct.TrackIdle()
	ids := make([]uint64, 1024)
	for i := range ids {
		ids[i] = ct.Put(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.Touch(ids[i&1023])
	}
}

// BenchmarkConnTableTouchParallel is the same path under contention —
// where the sharding pays: the old table serialized every toucher on
// one mutex.
func BenchmarkConnTableTouchParallel(b *testing.B) {
	var ct ConnTable[int]
	ct.TrackIdle()
	ids := make([]uint64, 8192)
	for i := range ids {
		ids[i] = ct.Put(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := rand.Intn(len(ids))
		for pb.Next() {
			ct.Touch(ids[i&8191])
			i++
		}
	})
}

// BenchmarkConnTableUntrackedPut measures the lazy-touch win: a table
// with no idle expiry never reads the clock on Put.
func BenchmarkConnTableUntrackedPut(b *testing.B) {
	var ct ConnTable[int]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.Delete(ct.Put(i))
	}
}

// BenchmarkConnTableChurnParallel is the soak shape in miniature:
// concurrent register/lookup/deregister across shards.
func BenchmarkConnTableChurnParallel(b *testing.B) {
	var ct ConnTable[int]
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := ct.Put(1)
			ct.Get(id)
			ct.Delete(id)
		}
	})
}

// TestConnTableRange: Range visits every live entry exactly once, an
// early false stops the walk, and a walk racing Put/Delete neither
// deadlocks nor panics — the property the serve runtime's
// HandoffPrincipal principal scan depends on.
func TestConnTableRange(t *testing.T) {
	var ct ConnTable[int]
	want := make(map[uint64]int)
	for i := 0; i < 200; i++ {
		want[ct.Put(i)] = i
	}
	got := make(map[uint64]int)
	ct.Range(func(id uint64, v int) bool {
		got[id] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for id, v := range want {
		if got[id] != v {
			t.Fatalf("Range saw id %d = %d, want %d", id, got[id], v)
		}
	}

	seen := 0
	ct.Range(func(id uint64, v int) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("early-stop walk visited %d entries, want 10", seen)
	}

	// Churn concurrently with walks; Range must stay coherent (each
	// visited value is one that was genuinely in the table).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1000; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := ct.Put(i)
			ct.Delete(id)
		}
	}()
	for i := 0; i < 50; i++ {
		ct.Range(func(id uint64, v int) bool { return true })
	}
	close(stop)
	wg.Wait()
}
