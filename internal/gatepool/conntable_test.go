package gatepool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConnTableBasics: Put issues usable ids, Get returns exactly what
// was stored, Delete removes it, and the zero value is ready to use.
func TestConnTableBasics(t *testing.T) {
	var ct ConnTable[string]
	if _, ok := ct.Get(0); ok {
		t.Fatal("empty table returned a value")
	}
	a := ct.Put("alice")
	b := ct.Put("bob")
	if a == b {
		t.Fatalf("two Puts issued the same id %d", a)
	}
	if v, ok := ct.Get(a); !ok || v != "alice" {
		t.Fatalf("Get(%d) = %q/%v, want alice/true", a, v, ok)
	}
	if v, ok := ct.Get(b); !ok || v != "bob" {
		t.Fatalf("Get(%d) = %q/%v, want bob/true", b, v, ok)
	}
	ct.Delete(a)
	if _, ok := ct.Get(a); ok {
		t.Fatalf("Get(%d) after Delete still resolves", a)
	}
	if v, ok := ct.Get(b); !ok || v != "bob" {
		t.Fatalf("Delete(%d) disturbed id %d: %q/%v", a, b, v, ok)
	}
	ct.Delete(a) // deleting twice is a no-op
	ct.Delete(b)
}

// TestConnTableNoIDReuse: ids are never reissued after removal. This is
// the property the slot-pin isolation argument leans on: a gate holding
// a stale conn id (a worker-supplied, untrusted value) must miss, never
// alias a later connection that happened to recycle the id.
func TestConnTableNoIDReuse(t *testing.T) {
	var ct ConnTable[int]
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := ct.Put(i)
		if seen[id] {
			t.Fatalf("id %d reissued after removal (iteration %d)", id, i)
		}
		seen[id] = true
		ct.Delete(id)
		if _, ok := ct.Get(id); ok {
			t.Fatalf("stale id %d still resolves", id)
		}
	}
}

// TestConnTableConcurrent: concurrent register/lookup/remove across
// goroutines — every goroutine sees exactly its own values, ids stay
// globally unique, and the table ends empty. Run under -race in CI.
func TestConnTableConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 200
	)
	type entry struct {
		worker int
		round  int
	}
	var ct ConnTable[entry]
	ids := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			live := make([]uint64, 0, rounds)
			for r := 0; r < rounds; r++ {
				id := ct.Put(entry{worker: w, round: r})
				live = append(live, id)
				// Look back at an id this goroutine still owns.
				probe := live[r/2]
				if v, ok := ct.Get(probe); !ok || v.worker != w {
					t.Errorf("worker %d: Get(%d) = %+v/%v, want own entry", w, probe, v, ok)
					return
				}
				// Remove every other id as we go.
				if r%2 == 1 {
					victim := live[len(live)-1]
					live = live[:len(live)-1]
					ct.Delete(victim)
					if _, ok := ct.Get(victim); ok {
						t.Errorf("worker %d: deleted id %d still resolves", w, victim)
						return
					}
				}
			}
			for _, id := range live {
				ct.Delete(id)
			}
			ids[w] = live
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for w, live := range ids {
		for _, id := range live {
			if seen[id] {
				t.Fatalf("id %d issued to two goroutines", id)
			}
			seen[id] = true
			if _, ok := ct.Get(id); ok {
				t.Fatalf("worker %d: id %d survives final Delete", w, id)
			}
		}
	}
}

// TestConnTableTouch: Touch refreshes the last-activity stamp on live
// entries and reports false on dead ones.
func TestConnTableTouch(t *testing.T) {
	var ct ConnTable[int]
	id := ct.Put(7)
	t0, ok := ct.LastTouch(id)
	if !ok {
		t.Fatal("LastTouch missing on fresh entry")
	}
	time.Sleep(2 * time.Millisecond)
	if !ct.Touch(id) {
		t.Fatal("Touch on live entry = false")
	}
	t1, _ := ct.LastTouch(id)
	if !t1.After(t0) {
		t.Fatalf("Touch did not advance stamp: %v -> %v", t0, t1)
	}
	ct.Delete(id)
	if ct.Touch(id) {
		t.Fatal("Touch on deleted entry = true")
	}
	if _, ok := ct.LastTouch(id); ok {
		t.Fatal("LastTouch on deleted entry present")
	}
}

// TestConnTableRemoveIfIdle: removal happens only past the idle
// threshold, exactly once, and a Touch resets the clock.
func TestConnTableRemoveIfIdle(t *testing.T) {
	var ct ConnTable[string]
	id := ct.Put("flow")
	if _, ok := ct.RemoveIfIdle(id, time.Hour); ok {
		t.Fatal("fresh entry removed as idle")
	}
	if _, ok := ct.Get(id); !ok {
		t.Fatal("failed RemoveIfIdle deleted the entry anyway")
	}
	time.Sleep(3 * time.Millisecond)
	v, ok := ct.RemoveIfIdle(id, time.Millisecond)
	if !ok || v != "flow" {
		t.Fatalf("RemoveIfIdle = %q/%v, want flow/true", v, ok)
	}
	if _, ok := ct.RemoveIfIdle(id, 0); ok {
		t.Fatal("second RemoveIfIdle on the same id succeeded")
	}

	id2 := ct.Put("live")
	time.Sleep(3 * time.Millisecond)
	ct.Touch(id2)
	if _, ok := ct.RemoveIfIdle(id2, 2*time.Millisecond); ok {
		t.Fatal("entry removed as idle right after Touch")
	}
}

// TestConnTableExpireTouchRace races Touch against RemoveIfIdle on the
// same id (the register/touch/expire/re-register cycle; run under -race
// in CI). The two outcomes must stay mutually exclusive — either the
// toucher saw the entry alive and it survived, or the expirer took it
// and the toucher saw it dead — and re-registering afterwards must issue
// a fresh id, never revive the old one.
func TestConnTableExpireTouchRace(t *testing.T) {
	var ct ConnTable[int]
	for round := 0; round < 200; round++ {
		id := ct.Put(round)
		time.Sleep(100 * time.Microsecond)

		var touched, removed atomic.Bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			touched.Store(ct.Touch(id))
		}()
		go func() {
			defer wg.Done()
			_, ok := ct.RemoveIfIdle(id, 50*time.Microsecond)
			removed.Store(ok)
		}()
		wg.Wait()

		_, alive := ct.Get(id)
		if removed.Load() == alive {
			t.Fatalf("round %d: removed=%v but alive=%v", round, removed.Load(), alive)
		}
		if !removed.Load() && !touched.Load() {
			t.Fatalf("round %d: neither removed nor touched; entry stuck in limbo", round)
		}
		id2 := ct.Put(round)
		if id2 == id {
			t.Fatalf("round %d: id reused across the expiry race", round)
		}
		ct.Delete(id2)
		ct.Delete(id)
	}
}
