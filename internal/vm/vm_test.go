package vm

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	as := NewAddressSpace()
	base, err := as.MapAnon(2*PageSize, PermRW)
	if err != nil {
		t.Fatalf("MapAnon: %v", err)
	}
	msg := []byte("hello, wedge")
	if err := as.Write(base+10, msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(msg))
	if err := as.Read(base+10, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip mismatch: %q != %q", got, msg)
	}
}

func TestFreshFramesZeroed(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.MapAnon(PageSize, PermRW)
	buf := make([]byte, PageSize)
	if err := as.Read(base, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("fresh frame byte %d = %#x, want 0", i, b)
		}
	}
}

func TestCrossPageAccess(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.MapAnon(3*PageSize, PermRW)
	data := make([]byte, 2*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	// Straddle two page boundaries.
	if err := as.Write(base+PageSize/2, data); err != nil {
		t.Fatalf("cross-page write: %v", err)
	}
	got := make([]byte, len(data))
	if err := as.Read(base+PageSize/2, got); err != nil {
		t.Fatalf("cross-page read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip mismatch")
	}
}

func TestUnmappedFault(t *testing.T) {
	as := NewAddressSpace()
	err := as.Read(0x5000, make([]byte, 1))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if f.Mapped || f.Access != AccessRead {
		t.Fatalf("unexpected fault detail: %+v", f)
	}
	if f.Error() == "" {
		t.Fatal("empty fault message")
	}
}

func TestReadOnlyFault(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.MapAnon(PageSize, PermRead)
	if err := as.Read(base, make([]byte, 8)); err != nil {
		t.Fatalf("read of read-only page: %v", err)
	}
	err := as.Write(base, []byte{1})
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault on write, got %v", err)
	}
	if f.Access != AccessWrite || !f.Mapped {
		t.Fatalf("unexpected fault detail: %+v", f)
	}
}

func TestWriteOnlyRejected(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.MapAnon(PageSize, PermWrite); err == nil {
		t.Fatal("write-only mapping must be rejected (§3.1)")
	}
	base, _ := as.MapAnon(PageSize, PermRW)
	if err := as.Protect(base, PageSize, PermWrite); err == nil {
		t.Fatal("write-only Protect must be rejected")
	}
}

func TestProtect(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.MapAnon(PageSize, PermRW)
	if err := as.Write(base, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if err := as.Protect(base, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(base, []byte{43}); err == nil {
		t.Fatal("write after downgrade to read-only should fault")
	}
	b, err := as.Load8(base)
	if err != nil || b != 42 {
		t.Fatalf("Load8 = %d, %v; want 42, nil", b, err)
	}
}

func TestUnmapFaultsAfter(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.MapAnon(PageSize, PermRW)
	if err := as.Unmap(base, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.Read(base, make([]byte, 1)); err == nil {
		t.Fatal("read after unmap should fault")
	}
}

func TestMapOverlapRejected(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.MapAnon(2*PageSize, PermRW)
	if err := as.Map(base+PageSize, PageSize, PermRW); err == nil {
		t.Fatal("overlapping Map must fail")
	}
}

func TestCloneCOWIsolation(t *testing.T) {
	parent := NewAddressSpace()
	base, _ := parent.MapAnon(PageSize, PermRW)
	if err := parent.Write(base, []byte("parent-data")); err != nil {
		t.Fatal(err)
	}
	child := parent.CloneCOW()

	// Child sees parent's data.
	got := make([]byte, 11)
	if err := child.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "parent-data" {
		t.Fatalf("child sees %q", got)
	}

	// Child write does not affect parent.
	if err := child.Write(base, []byte("child-write")); err != nil {
		t.Fatalf("child COW write: %v", err)
	}
	if err := parent.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "parent-data" {
		t.Fatalf("parent corrupted by child write: %q", got)
	}

	// Parent write after the child broke COW must not affect child.
	if err := parent.Write(base, []byte("parent-upd8")); err != nil {
		t.Fatal(err)
	}
	if err := child.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "child-write" {
		t.Fatalf("child corrupted by parent write: %q", got)
	}
	if child.COWFaults() == 0 {
		t.Fatal("expected child to take a COW fault")
	}
}

func TestCloneCOWPreservesReadOnly(t *testing.T) {
	parent := NewAddressSpace()
	base, _ := parent.MapAnon(PageSize, PermRead)
	child := parent.CloneCOW()
	pte, ok := child.Lookup(base)
	if !ok {
		t.Fatal("page not cloned")
	}
	if pte.Perm.CanWrite() {
		t.Fatalf("read-only page became writable in clone: %s", pte.Perm)
	}
}

func TestShareInto(t *testing.T) {
	owner := NewAddressSpace()
	base, _ := owner.MapAnon(PageSize, PermRW)
	if err := owner.Write(base, []byte("shared!")); err != nil {
		t.Fatal(err)
	}

	reader := NewAddressSpace()
	if err := owner.ShareInto(reader, base, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	if err := reader.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared!" {
		t.Fatalf("reader sees %q", got)
	}
	// Read-only grant: writes fault.
	if err := reader.Write(base, []byte("x")); err == nil {
		t.Fatal("read-only grant allowed a write")
	}
	// Writes by owner are visible to reader (true sharing, not a copy).
	if err := owner.Write(base, []byte("SHARED!")); err != nil {
		t.Fatal(err)
	}
	if err := reader.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "SHARED!" {
		t.Fatalf("reader sees stale %q", got)
	}
}

func TestShareIntoRWBidirectional(t *testing.T) {
	owner := NewAddressSpace()
	base, _ := owner.MapAnon(PageSize, PermRW)
	peer := NewAddressSpace()
	if err := owner.ShareInto(peer, base, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := peer.Write(base, []byte("from-peer")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9)
	if err := owner.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "from-peer" {
		t.Fatalf("owner sees %q", got)
	}
}

func TestShareIntoUnmappedSource(t *testing.T) {
	owner := NewAddressSpace()
	dst := NewAddressSpace()
	if err := owner.ShareInto(dst, 0x40000, PageSize, PermRead); err == nil {
		t.Fatal("sharing unmapped source must fail")
	}
}

func TestShareIntoCOWGrant(t *testing.T) {
	owner := NewAddressSpace()
	base, _ := owner.MapAnon(PageSize, PermRW)
	if err := owner.Write(base, []byte("orig")); err != nil {
		t.Fatal(err)
	}
	child := NewAddressSpace()
	if err := owner.ShareInto(child, base, PageSize, PermRead|PermCOW); err != nil {
		t.Fatal(err)
	}
	if err := child.Write(base, []byte("priv")); err != nil {
		t.Fatalf("COW grant write: %v", err)
	}
	got := make([]byte, 4)
	if err := owner.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "orig" {
		t.Fatalf("owner corrupted by COW-grant child: %q", got)
	}
}

func TestFrameRefcounting(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.MapAnon(PageSize, PermRW)
	pte, _ := as.Lookup(base)
	if pte.Frame.Refs() != 1 {
		t.Fatalf("fresh frame refs = %d", pte.Frame.Refs())
	}
	clone := as.CloneCOW()
	if pte.Frame.Refs() != 2 {
		t.Fatalf("after clone refs = %d", pte.Frame.Refs())
	}
	clone.Release()
	if pte.Frame.Refs() != 1 {
		t.Fatalf("after release refs = %d", pte.Frame.Refs())
	}
	as.Release()
	if pte.Frame.Refs() != 0 {
		t.Fatalf("after full release refs = %d", pte.Frame.Refs())
	}
}

func TestLoadStoreWidths(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.MapAnon(PageSize, PermRW)
	if err := as.Store32(base, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v32, err := as.Load32(base)
	if err != nil || v32 != 0xdeadbeef {
		t.Fatalf("Load32 = %#x, %v", v32, err)
	}
	if err := as.Store64(base+8, 0x0123456789abcdef); err != nil {
		t.Fatal(err)
	}
	v64, err := as.Load64(base + 8)
	if err != nil || v64 != 0x0123456789abcdef {
		t.Fatalf("Load64 = %#x, %v", v64, err)
	}
	if err := as.Store8(base+16, 0x7f); err != nil {
		t.Fatal(err)
	}
	v8, err := as.Load8(base + 16)
	if err != nil || v8 != 0x7f {
		t.Fatalf("Load8 = %#x, %v", v8, err)
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	as := NewAddressSpace()
	type span struct {
		base Addr
		size int
	}
	var spans []span
	for i := 0; i < 200; i++ {
		size := (i%5 + 1) * PageSize
		base, err := as.MapAnon(size, PermRW)
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, span{base, size})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.base < b.base+Addr(b.size) && b.base < a.base+Addr(a.size) {
				t.Fatalf("regions overlap: %#x+%d and %#x+%d", a.base, a.size, b.base, b.size)
			}
		}
	}
}

func TestRegionReuseAfterFree(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.MapAnon(4*PageSize, PermRW)
	if err := as.Unmap(base, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	base2, err := as.MapAnon(4*PageSize, PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if base2 != base {
		t.Fatalf("expected freed region to be reused: %#x != %#x", base2, base)
	}
}

func TestAddrHelpers(t *testing.T) {
	a := Addr(3*PageSize + 17)
	if a.PageNum() != 3 || a.PageOff() != 17 || a.PageBase() != 3*PageSize {
		t.Fatalf("addr helpers wrong: %d %d %#x", a.PageNum(), a.PageOff(), uint64(a.PageBase()))
	}
}

func TestPermString(t *testing.T) {
	cases := map[Perm]string{
		PermNone:           "---",
		PermRead:           "r--",
		PermRW:             "rw-",
		PermRead | PermCOW: "r-c",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("Perm(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
}

// Property: a COW clone never observes writes made by its origin after the
// clone, and vice versa, for arbitrary write sequences.
func TestQuickCOWIsolation(t *testing.T) {
	f := func(seed int64, nWrites uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		parent := NewAddressSpace()
		base, err := parent.MapAnon(4*PageSize, PermRW)
		if err != nil {
			return false
		}
		init := make([]byte, 4*PageSize)
		rng.Read(init)
		if parent.Write(base, init) != nil {
			return false
		}
		child := parent.CloneCOW()

		// Random interleaved writes to both sides.
		pImg := append([]byte(nil), init...)
		cImg := append([]byte(nil), init...)
		for i := 0; i < int(nWrites); i++ {
			off := rng.Intn(4*PageSize - 8)
			var val [8]byte
			rng.Read(val[:])
			if rng.Intn(2) == 0 {
				if parent.Write(base+Addr(off), val[:]) != nil {
					return false
				}
				copy(pImg[off:], val[:])
			} else {
				if child.Write(base+Addr(off), val[:]) != nil {
					return false
				}
				copy(cImg[off:], val[:])
			}
		}
		gotP := make([]byte, 4*PageSize)
		gotC := make([]byte, 4*PageSize)
		if parent.Read(base, gotP) != nil || child.Read(base, gotC) != nil {
			return false
		}
		return bytes.Equal(gotP, pImg) && bytes.Equal(gotC, cImg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: reads and writes within a mapped RW region always round-trip,
// regardless of offset/length straddling page boundaries.
func TestQuickReadWriteRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	const npages = 8
	base, err := as.MapAnon(npages*PageSize, PermRW)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		o := int(off) % (npages*PageSize - 1)
		if len(data) > npages*PageSize-o {
			data = data[:npages*PageSize-o]
		}
		if len(data) == 0 {
			return true
		}
		if as.Write(base+Addr(o), data) != nil {
			return false
		}
		got := make([]byte, len(data))
		if as.Read(base+Addr(o), got) != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: region allocator never returns overlapping regions under random
// alloc/free sequences.
func TestQuickRegionAllocator(t *testing.T) {
	f := func(ops []uint8) bool {
		ra := newRegionAllocator(regionBase, regionLimit)
		live := map[Addr]int{}
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				for b, s := range live {
					ra.release(b, s)
					delete(live, b)
					break
				}
				continue
			}
			size := (int(op)%4 + 1) * PageSize
			b, err := ra.alloc(size)
			if err != nil {
				return false
			}
			for ob, os := range live {
				if b < ob+Addr(os) && ob < b+Addr(size) {
					return false
				}
			}
			live[b] = size
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPageLimitEnforced: the SetPageLimit quota rejects mappings past the
// cap with ErrMemLimit and recovers budget on unmap.
func TestPageLimitEnforced(t *testing.T) {
	as := NewAddressSpace()
	as.SetPageLimit(3)
	a, err := as.MapAnon(2*PageSize, PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapAnon(2*PageSize, PermRW); !errors.Is(err, ErrMemLimit) {
		t.Fatalf("over-quota map: %v", err)
	}
	// One more page still fits.
	if _, err := as.MapAnon(PageSize, PermRW); err != nil {
		t.Fatalf("within-quota map: %v", err)
	}
	// Releasing frees budget.
	if err := as.Unmap(a, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapAnon(2*PageSize, PermRW); err != nil {
		t.Fatalf("map after unmap: %v", err)
	}
	if as.PageLimit() != 3 {
		t.Fatalf("limit drifted to %d", as.PageLimit())
	}
}
