package vm

import (
	"fmt"
	"sort"
)

// The simulated user virtual address range. The low guard region means a
// nil simulated pointer always faults, like page zero on Linux.
const (
	regionBase  Addr = 0x0001_0000
	regionLimit Addr = 0x7fff_0000
)

// regionAllocator hands out non-overlapping virtual address ranges, playing
// the role of the kernel's vm_area bookkeeping. tag_new §4.1 notes that,
// unlike mmap, tagged regions must never be merged with neighbours because
// they live in different security contexts — so the allocator inserts a
// one-page guard gap between consecutive allocations.
type regionAllocator struct {
	next  Addr
	limit Addr
	// free holds released regions for reuse, sorted by base.
	free []regionSpan
	// used tracks live regions so reserveExact can validate.
	used map[Addr]int
}

type regionSpan struct {
	base Addr
	size int
}

func newRegionAllocator(base, limit Addr) *regionAllocator {
	return &regionAllocator{next: base, limit: limit, used: make(map[Addr]int)}
}

// alloc returns a page-aligned region of exactly size bytes (size must be
// page-aligned), reusing a released span when one fits.
func (ra *regionAllocator) alloc(size int) (Addr, error) {
	if size <= 0 || size%PageSize != 0 {
		return 0, fmt.Errorf("vm: region size %d not page aligned", size)
	}
	// Best-fit search of the free list.
	best := -1
	for i, s := range ra.free {
		if s.size >= size && (best == -1 || s.size < ra.free[best].size) {
			best = i
		}
	}
	if best != -1 {
		s := ra.free[best]
		ra.free = append(ra.free[:best], ra.free[best+1:]...)
		if s.size > size {
			ra.free = append(ra.free, regionSpan{base: s.base + Addr(size), size: s.size - size})
		}
		ra.used[s.base] = size
		return s.base, nil
	}
	// Bump allocation with a one-page guard gap.
	base := ra.next
	end := base + Addr(size) + PageSize
	if end > ra.limit {
		return 0, fmt.Errorf("vm: out of simulated address space")
	}
	ra.next = end
	ra.used[base] = size
	return base, nil
}

// release returns a region to the allocator.
func (ra *regionAllocator) release(base Addr, size int) {
	delete(ra.used, base)
	ra.free = append(ra.free, regionSpan{base: base, size: size})
	sort.Slice(ra.free, func(i, j int) bool { return ra.free[i].base < ra.free[j].base })
}

// reserveExact records an externally imposed region (e.g. a shared tag
// mapped at a fixed address by ShareInto). Overlap with the bump pointer is
// prevented by advancing it.
func (ra *regionAllocator) reserveExact(base Addr, size int) {
	if _, ok := ra.used[base]; ok {
		return
	}
	ra.used[base] = size
	if end := base + Addr(size) + PageSize; end > ra.next {
		ra.next = end
	}
}

// clone duplicates the allocator state for CloneCOW.
func (ra *regionAllocator) clone() *regionAllocator {
	c := &regionAllocator{next: ra.next, limit: ra.limit, used: make(map[Addr]int, len(ra.used))}
	c.free = append(c.free, ra.free...)
	for k, v := range ra.used {
		c.used[k] = v
	}
	return c
}
