// Package vm implements the simulated memory-management substrate on which
// the Wedge primitives are built: paged virtual address spaces with per-page
// read/write/copy-on-write permissions, reference-counted physical frames,
// and copy-on-write fault handling.
//
// In the paper, Wedge relies on the hardware MMU and the Linux mm subsystem
// to enforce per-sthread memory policies. A Go runtime cannot hand out
// page-protected views of its own heap, so this package plays the role of
// the MMU: every load and store performed by simulated code goes through an
// AddressSpace, which checks the page permissions exactly where hardware
// would. Page-table copying costs (relevant to the fork-vs-sthread
// comparison in Figure 7) are therefore mechanical, not modelled.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the size of a simulated page in bytes. It matches the 4 KiB
// pages of the x86 hardware the paper evaluated on.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Addr is a simulated virtual address.
type Addr uint64

// PageNum returns the page number containing a.
func (a Addr) PageNum() uint64 { return uint64(a) >> PageShift }

// PageOff returns the offset of a within its page.
func (a Addr) PageOff() uint64 { return uint64(a) & (PageSize - 1) }

// PageBase returns the address of the first byte of the page containing a.
func (a Addr) PageBase() Addr { return Addr(uint64(a) &^ (PageSize - 1)) }

// Perm is a page permission bit set.
type Perm uint8

const (
	// PermNone grants no access.
	PermNone Perm = 0
	// PermRead grants read access.
	PermRead Perm = 1 << iota
	// PermWrite grants write access. The paper notes most CPUs cannot
	// express write-only pages; callers should always pair PermWrite with
	// PermRead, and Protect rejects write-only requests for the same
	// reason Wedge does.
	PermWrite
	// PermCOW marks a page copy-on-write: reads go to the shared frame,
	// the first write copies the frame privately and then succeeds.
	PermCOW
)

// PermRW is the common read-write permission.
const PermRW = PermRead | PermWrite

// CanRead reports whether p allows reads.
func (p Perm) CanRead() bool { return p&PermRead != 0 }

// CanWrite reports whether p allows writes, possibly via a COW fault.
func (p Perm) CanWrite() bool { return p&PermWrite != 0 || p&PermCOW != 0 }

func (p Perm) String() string {
	if p == PermNone {
		return "---"
	}
	b := []byte("---")
	if p.CanRead() {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermCOW != 0 {
		b[2] = 'c'
	}
	return string(b)
}

// ErrMemLimit is returned when a mapping would exceed the address space's
// page quota (SetPageLimit) — the simulated ENOMEM of the rlimit
// extension.
var ErrMemLimit = errors.New("vm: page quota exceeded")

// Access describes the kind of access that caused a fault.
type Access uint8

const (
	// AccessRead is a load.
	AccessRead Access = iota
	// AccessWrite is a store.
	AccessWrite
)

func (a Access) String() string {
	if a == AccessRead {
		return "read"
	}
	return "write"
}

// Fault is the simulated protection fault delivered when code accesses
// memory its address space does not permit. Under Wedge semantics an
// unhandled Fault terminates the sthread; under the emulation library it is
// logged and execution continues.
type Fault struct {
	Addr   Addr   // faulting address
	Access Access // attempted access
	Perm   Perm   // permissions actually held (PermNone if unmapped)
	Mapped bool   // whether the page was mapped at all
}

func (f *Fault) Error() string {
	if !f.Mapped {
		return fmt.Sprintf("protection fault: %s of unmapped address %#x", f.Access, uint64(f.Addr))
	}
	return fmt.Sprintf("protection fault: %s of address %#x (page perm %s)", f.Access, uint64(f.Addr), f.Perm)
}

// frameIDCounter assigns unique ids to frames, used by tests and by the
// kernel's accounting of shared frames.
var frameIDCounter atomic.Uint64

// Frame is a simulated physical page frame. Frames are shared between
// address spaces by COW snapshots and by tagged-memory grants; the reference
// count tracks how many page-table entries point at the frame.
type Frame struct {
	ID   uint64
	Data [PageSize]byte
	refs atomic.Int32
}

// NewFrame allocates a zeroed frame with a single reference.
func NewFrame() *Frame {
	f := &Frame{ID: frameIDCounter.Add(1)}
	f.refs.Store(1)
	return f
}

// Ref increments the frame's reference count.
func (f *Frame) Ref() { f.refs.Add(1) }

// Unref decrements the frame's reference count and reports whether the
// frame is now unreferenced.
func (f *Frame) Unref() bool { return f.refs.Add(-1) == 0 }

// Refs returns the current reference count.
func (f *Frame) Refs() int32 { return f.refs.Load() }

// PTE is a page-table entry: a frame pointer plus permissions.
type PTE struct {
	Frame *Frame
	Perm  Perm
}

// AddressSpace is a simulated per-task virtual address space.
//
// The page table (the structure an MMU walks) supports lock-free lookup
// — accesses, futex key resolution, and grant assembly read it without
// taking a lock, as a hardware walker would. Structural changes (map,
// unmap, scrub, clone) serialize on an internal mutex, the stand-in for
// the kernel's per-mm lock; on a live address space they install a fresh
// page-table snapshot rather than mutating the one readers may hold,
// while an address space still under assembly (no task running on it)
// is mutated in place. Tags can therefore be created and retired in a
// live address space while other threads of control access memory.
// Frame *data* is deliberately unsynchronised, like real memory:
// threads sharing a writable page must synchronise through futexes,
// exactly as the paper's compartments do.
type AddressSpace struct {
	mu        sync.Mutex // serializes structural changes and regions
	pages     atomic.Pointer[map[uint64]*PTE]
	live      atomic.Bool // a task has run on this address space
	pageCount atomic.Int64
	regions   *regionAllocator

	// pageLimit, when non-zero, caps the number of mapped pages — the
	// rlimit-style memory quota behind policy.SC.MemPages. It is an
	// extension beyond the paper, which notes (§7) that "an exploited
	// sthread may maliciously consume CPU and memory" with no direct
	// defense.
	pageLimit int

	// Stats counted mechanically; used by the benchmarks and by tests.
	cowFaults atomic.Uint64

	// released is set when the owning task exits and the address space
	// drops its frame references. Long-lived sharers (the tag registry
	// propagating arena growth to grantees) consult it to prune dead
	// address spaces instead of re-populating them.
	released atomic.Bool
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	as := &AddressSpace{
		regions: newRegionAllocator(regionBase, regionLimit),
	}
	m := make(map[uint64]*PTE)
	as.pages.Store(&m)
	return as
}

// SetLive marks the address space as having a thread of control: from
// now on structural changes go through snapshot replacement. The kernel
// calls this when a task starts running.
func (as *AddressSpace) SetLive() { as.live.Store(true) }

// snapshot returns the current page table for lock-free reading.
func (as *AddressSpace) snapshot() map[uint64]*PTE { return *as.pages.Load() }

// mutable returns a page table the caller (holding as.mu) may mutate,
// paired with a commit function. Pre-live, that is the current table and
// commit is a no-op; live, it is a copy that commit installs.
func (as *AddressSpace) mutable() (map[uint64]*PTE, func()) {
	cur := *as.pages.Load()
	if !as.live.Load() {
		return cur, func() {}
	}
	m := make(map[uint64]*PTE, len(cur))
	for k, v := range cur {
		m[k] = v
	}
	return m, func() { as.pages.Store(&m) }
}

// Pages returns the number of mapped pages (page-table entries).
func (as *AddressSpace) Pages() int { return int(as.pageCount.Load()) }

// SetPageLimit caps the address space at n mapped pages (0 = unlimited).
// Map calls that would exceed the cap fail with ErrMemLimit.
func (as *AddressSpace) SetPageLimit(n int) {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.pageLimit = n
}

// PageLimit returns the current cap (0 = unlimited).
func (as *AddressSpace) PageLimit() int {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.pageLimit
}

// COWFaults returns the number of copy-on-write faults taken so far.
func (as *AddressSpace) COWFaults() uint64 { return as.cowFaults.Load() }

// pte returns the page-table entry for the page containing a, or nil.
func (as *AddressSpace) pte(a Addr) *PTE { return as.snapshot()[a.PageNum()] }

// setPTE installs a page-table entry in m, maintaining the page count.
func (as *AddressSpace) setPTE(m map[uint64]*PTE, pn uint64, pte *PTE) {
	if _, ok := m[pn]; !ok {
		as.pageCount.Add(1)
	}
	m[pn] = pte
}

// dropPTE removes a page-table entry from m, maintaining the page count.
func (as *AddressSpace) dropPTE(m map[uint64]*PTE, pn uint64) {
	if _, ok := m[pn]; ok {
		as.pageCount.Add(-1)
		delete(m, pn)
	}
}

// Lookup returns the PTE mapping a, if any. Primarily for tests and for
// kernel bookkeeping; simulated code uses Read/Write.
func (as *AddressSpace) Lookup(a Addr) (PTE, bool) {
	p := as.pte(a)
	if p == nil {
		return PTE{}, false
	}
	return *p, true
}

// Reserve allocates a length-byte range of unused virtual addresses without
// mapping any frames, returning the page-aligned base. It is the substrate
// for mmap-like region creation.
func (as *AddressSpace) Reserve(length int) (Addr, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.regions.alloc(roundUpPages(length))
}

// Map maps n fresh zeroed frames starting at the page-aligned address base
// with permission perm. It fails if any page in the range is already mapped.
func (as *AddressSpace) Map(base Addr, length int, perm Perm) error {
	if base.PageOff() != 0 {
		return fmt.Errorf("vm: Map of unaligned base %#x", uint64(base))
	}
	if err := checkPerm(perm); err != nil {
		return err
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	n := roundUpPages(length) / PageSize
	if as.pageLimit > 0 && as.Pages()+n > as.pageLimit {
		return fmt.Errorf("%w: %d pages mapped, %d requested, limit %d",
			ErrMemLimit, as.Pages(), n, as.pageLimit)
	}
	first := base.PageNum()
	m, commit := as.mutable()
	for i := 0; i < n; i++ {
		if _, ok := m[first+uint64(i)]; ok {
			return fmt.Errorf("vm: Map overlaps existing mapping at page %#x", first+uint64(i))
		}
	}
	for i := 0; i < n; i++ {
		as.setPTE(m, first+uint64(i), &PTE{Frame: NewFrame(), Perm: perm})
	}
	commit()
	return nil
}

// MapAnon reserves a region and maps fresh zero frames into it: the
// equivalent of anonymous mmap. The cost of zeroing fresh frames is what
// makes mmap the slow bar in Figure 8.
func (as *AddressSpace) MapAnon(length int, perm Perm) (Addr, error) {
	base, err := as.Reserve(length)
	if err != nil {
		return 0, err
	}
	if err := as.Map(base, length, perm); err != nil {
		as.mu.Lock()
		as.regions.release(base, roundUpPages(length))
		as.mu.Unlock()
		return 0, err
	}
	return base, nil
}

// Unmap removes the mappings covering [base, base+length), dropping frame
// references, and releases the region.
func (as *AddressSpace) Unmap(base Addr, length int) error {
	if base.PageOff() != 0 {
		return fmt.Errorf("vm: Unmap of unaligned base %#x", uint64(base))
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	n := roundUpPages(length) / PageSize
	first := base.PageNum()
	m, commit := as.mutable()
	for i := 0; i < n; i++ {
		pte, ok := m[first+uint64(i)]
		if !ok {
			continue
		}
		pte.Frame.Unref()
		as.dropPTE(m, first+uint64(i))
	}
	commit()
	as.regions.release(base, roundUpPages(length))
	return nil
}

// Protect changes the permissions of all mapped pages in [base, base+length).
// Unmapped pages in the range are skipped, matching mprotect-on-holes
// semantics the tag layer relies on.
func (as *AddressSpace) Protect(base Addr, length int, perm Perm) error {
	if err := checkPerm(perm); err != nil {
		return err
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	n := roundUpPages(length) / PageSize
	first := base.PageNum()
	m, commit := as.mutable()
	for i := 0; i < n; i++ {
		if pte, ok := m[first+uint64(i)]; ok {
			m[first+uint64(i)] = &PTE{Frame: pte.Frame, Perm: perm}
		}
	}
	commit()
	return nil
}

// checkPerm rejects write-only permissions, which Wedge disallows because
// commodity MMUs cannot express them (§3.1).
func checkPerm(perm Perm) error {
	if perm&PermWrite != 0 && perm&PermRead == 0 {
		return fmt.Errorf("vm: write-only permission not supported; grant read-write instead")
	}
	return nil
}

// Read copies len(buf) bytes from the simulated address a into buf,
// enforcing read permission on every touched page.
func (as *AddressSpace) Read(a Addr, buf []byte) error {
	for len(buf) > 0 {
		pte := as.pte(a)
		if pte == nil {
			return &Fault{Addr: a, Access: AccessRead, Mapped: false}
		}
		if !pte.Perm.CanRead() {
			return &Fault{Addr: a, Access: AccessRead, Perm: pte.Perm, Mapped: true}
		}
		off := a.PageOff()
		n := copy(buf, pte.Frame.Data[off:])
		buf = buf[n:]
		a += Addr(n)
	}
	return nil
}

// Write copies buf into the simulated address a, enforcing write permission
// and performing copy-on-write frame duplication where required.
func (as *AddressSpace) Write(a Addr, buf []byte) error {
	for len(buf) > 0 {
		pte := as.pte(a)
		if pte == nil {
			return &Fault{Addr: a, Access: AccessWrite, Mapped: false}
		}
		if !pte.Perm.CanWrite() {
			return &Fault{Addr: a, Access: AccessWrite, Perm: pte.Perm, Mapped: true}
		}
		if pte.Perm&PermCOW != 0 {
			pte = as.cowBreak(a)
			if pte == nil {
				return &Fault{Addr: a, Access: AccessWrite, Mapped: false}
			}
			if !pte.Perm.CanWrite() {
				return &Fault{Addr: a, Access: AccessWrite, Perm: pte.Perm, Mapped: true}
			}
		}
		off := a.PageOff()
		n := copy(pte.Frame.Data[off:], buf)
		buf = buf[n:]
		a += Addr(n)
	}
	return nil
}

// cowBreak resolves a copy-on-write fault on the page containing a: if
// the frame is shared it is duplicated, and the COW bit is replaced by
// write permission. Like every structural change it runs under the
// address-space mutex and replaces the page-table entry rather than
// mutating it, so concurrent lock-free readers never observe a torn PTE
// and two racing first-writers resolve the same fault exactly once.
func (as *AddressSpace) cowBreak(a Addr) *PTE {
	as.mu.Lock()
	defer as.mu.Unlock()
	m, commit := as.mutable()
	pte := m[a.PageNum()]
	if pte == nil || pte.Perm&PermCOW == 0 {
		return pte // a racing writer already broke this page
	}
	as.cowFaults.Add(1)
	frame := pte.Frame
	if frame.Refs() > 1 {
		nf := NewFrame()
		nf.Data = frame.Data
		frame.Unref()
		frame = nf
	}
	npte := &PTE{Frame: frame, Perm: (pte.Perm &^ PermCOW) | PermRead | PermWrite}
	m[a.PageNum()] = npte
	commit()
	return npte
}

// Load8 reads one byte.
func (as *AddressSpace) Load8(a Addr) (byte, error) {
	var b [1]byte
	if err := as.Read(a, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// Store8 writes one byte.
func (as *AddressSpace) Store8(a Addr, v byte) error {
	b := [1]byte{v}
	return as.Write(a, b[:])
}

// Load32 reads a little-endian uint32.
func (as *AddressSpace) Load32(a Addr) (uint32, error) {
	var b [4]byte
	if err := as.Read(a, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// Store32 writes a little-endian uint32.
func (as *AddressSpace) Store32(a Addr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return as.Write(a, b[:])
}

// Load64 reads a little-endian uint64.
func (as *AddressSpace) Load64(a Addr) (uint64, error) {
	var b [8]byte
	if err := as.Read(a, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Store64 writes a little-endian uint64.
func (as *AddressSpace) Store64(a Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return as.Write(a, b[:])
}

// CloneCOW produces a complete copy-on-write duplicate of the address
// space: every mapped page is shared with the clone and both sides' PTEs
// are downgraded to COW where writable. This is the mechanism behind fork
// and behind the pristine pre-main snapshot sthreads receive (§4.1). The
// per-entry loop is the mechanical cost that Figure 7 charges to fork.
func (as *AddressSpace) CloneCOW() *AddressSpace {
	as.mu.Lock()
	defer as.mu.Unlock()
	clone := NewAddressSpace()
	clone.regions = as.regions.clone()
	m, commit := as.mutable()
	cm := *clone.pages.Load()
	for pn, pte := range m {
		pte.Frame.Ref()
		perm := pte.Perm
		if perm&PermWrite != 0 {
			perm = (perm &^ PermWrite) | PermCOW | PermRead
			// The parent side becomes COW too: replace the entry so
			// lock-free readers of a live parent never see a torn PTE.
			m[pn] = &PTE{Frame: pte.Frame, Perm: perm}
		}
		clone.setPTE(cm, pn, &PTE{Frame: pte.Frame, Perm: perm})
	}
	commit()
	return clone
}

// ShareInto maps the pages of [base, base+length) from as into dst at the
// same virtual addresses with permission perm, sharing the underlying
// frames. This is how tagged-memory grants appear in a child sthread's
// address space. COW grants share the frame but mark the destination COW.
func (as *AddressSpace) ShareInto(dst *AddressSpace, base Addr, length int, perm Perm) error {
	if base.PageOff() != 0 {
		return fmt.Errorf("vm: ShareInto of unaligned base %#x", uint64(base))
	}
	if err := checkPerm(perm); err != nil {
		return err
	}
	dst.mu.Lock()
	defer dst.mu.Unlock()
	// Checked under dst.mu, which Release also holds: a destination that
	// released its frames must stay empty. Without this, a grant racing
	// task exit (arena growth propagating to a just-dead grantee) would
	// re-populate the dead space and pin the shared frames forever.
	if dst.released.Load() {
		return nil
	}
	n := roundUpPages(length) / PageSize
	first := base.PageNum()
	src := as.snapshot()
	m, commit := dst.mutable()
	for i := 0; i < n; i++ {
		pte := src[first+uint64(i)]
		if pte == nil {
			return fmt.Errorf("vm: ShareInto source page %#x not mapped", first+uint64(i))
		}
		if old, ok := m[first+uint64(i)]; ok {
			old.Frame.Unref()
		}
		pte.Frame.Ref()
		dst.setPTE(m, first+uint64(i), &PTE{Frame: pte.Frame, Perm: perm})
	}
	commit()
	dst.regions.reserveExact(base, n*PageSize)
	return nil
}

// zeroFrame is the global shared all-zeroes frame. Pages remapped to it are
// marked copy-on-write, so the first store allocates a private copy. Its
// reference count is kept artificially high and it is never freed.
var zeroFrame = func() *Frame {
	f := NewFrame()
	f.refs.Store(1 << 30)
	return f
}()

// RemapZero points every mapped page of [base, base+length) at the shared
// zero frame with copy-on-write semantics, dropping the previous frames.
// This is the scrub mechanism behind tag reuse (§4.1): the old contents
// become unreachable in O(pages) page-table updates, with no memset, while
// secrecy is preserved because subsequent reads observe zeroes.
func (as *AddressSpace) RemapZero(base Addr, length int) error {
	if base.PageOff() != 0 {
		return fmt.Errorf("vm: RemapZero of unaligned base %#x", uint64(base))
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	n := roundUpPages(length) / PageSize
	first := base.PageNum()
	m, commit := as.mutable()
	for i := 0; i < n; i++ {
		pte, ok := m[first+uint64(i)]
		if !ok {
			return fmt.Errorf("vm: RemapZero of unmapped page %#x", first+uint64(i))
		}
		pte.Frame.Unref()
		zeroFrame.Ref()
		m[first+uint64(i)] = &PTE{Frame: zeroFrame, Perm: PermRead | PermCOW}
	}
	commit()
	return nil
}

// RefreshZero replaces every mapped page of [base, base+length) with a
// fresh zeroed frame, read-write, dropping the previous frames. It is the
// scrub for segments that will be shared read-write after reuse: unlike
// RemapZero it never leaves the owner on a copy-on-write zero page, so a
// later ShareInto hands every grantee the same writable frame — which
// futex keying (frame identity) and write-through visibility both depend
// on. RemapZero-then-share-RW would let a grantee scribble on the global
// zero frame while the owner's first write diverges onto a private copy.
func (as *AddressSpace) RefreshZero(base Addr, length int) error {
	if base.PageOff() != 0 {
		return fmt.Errorf("vm: RefreshZero of unaligned base %#x", uint64(base))
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	n := roundUpPages(length) / PageSize
	first := base.PageNum()
	m, commit := as.mutable()
	for i := 0; i < n; i++ {
		pte, ok := m[first+uint64(i)]
		if !ok {
			return fmt.Errorf("vm: RefreshZero of unmapped page %#x", first+uint64(i))
		}
		// A frame this address space owns exclusively is zeroed in place
		// — a memset, no allocation, and the frame keeps its identity
		// for future shared-RW grants. A frame still shared with some
		// other (possibly dead) address space is detached and replaced,
		// so no stale sharer can observe or disturb the scrubbed
		// segment.
		if pte.Frame.Refs() == 1 {
			clear(pte.Frame.Data[:])
			m[first+uint64(i)] = &PTE{Frame: pte.Frame, Perm: PermRead | PermWrite}
		} else {
			pte.Frame.Unref()
			m[first+uint64(i)] = &PTE{Frame: NewFrame(), Perm: PermRead | PermWrite}
		}
	}
	commit()
	return nil
}

// ForEachPage calls fn for every mapped page with its permission. Used by
// the emulation library to precompute what a strict policy would allow.
func (as *AddressSpace) ForEachPage(fn func(pageNum uint64, perm Perm)) {
	for pn, pte := range as.snapshot() {
		fn(pn, pte.Perm)
	}
}

// Released reports whether the owning task has exited and the address
// space has dropped its frames. A released space must not receive new
// shared mappings: nothing will ever read them, and the references would
// keep the frames alive forever.
func (as *AddressSpace) Released() bool { return as.released.Load() }

// Release drops all frame references held by the address space. The kernel
// calls it when a task exits.
func (as *AddressSpace) Release() {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.released.Store(true)
	old := *as.pages.Load()
	empty := make(map[uint64]*PTE)
	as.pages.Store(&empty)
	as.pageCount.Store(0)
	for _, pte := range old {
		pte.Frame.Unref()
	}
}

// roundUpPages rounds length up to a whole number of pages (minimum one).
func roundUpPages(length int) int {
	if length <= 0 {
		length = 1
	}
	return (length + PageSize - 1) &^ (PageSize - 1)
}
