package wedge_test

import (
	"errors"
	"strings"
	"testing"

	"wedge"
	"wedge/internal/crowbar"
	"wedge/internal/policy"
	"wedge/internal/sthread"
)

// TestEmulationGuidedPartitioning exercises the §3.4 development loop end
// to end: a programmer writes a too-tight policy, runs the refactored
// code under the sthread emulation library, queries the violation log
// through Crowbar, adds the missing grants, and re-runs strictly.
func TestEmulationGuidedPartitioning(t *testing.T) {
	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		cfgTag, _ := sys.TagNew(main)
		statsTag, _ := sys.TagNew(main)
		cfg, _ := main.Smalloc(cfgTag, 64)
		stats, _ := main.Smalloc(statsTag, 64)
		main.WriteString(cfg, "max_conns=32")

		// The refactored worker: reads the config, bumps a counter. The
		// first-draft policy forgot the stats tag.
		body := func(s *wedge.Sthread, _ wedge.Addr) wedge.Addr {
			_ = s.ReadString(cfg, 64)
			s.Store64(stats, s.Load64(stats)+1)
			return 1
		}

		draft := wedge.NewSC()
		draft.MemAdd(cfgTag, wedge.PermRead)

		// Phase 1: run under emulation. The missing grant shows up as
		// violations instead of a crash.
		emu, err := main.CreateEmulated("draft-worker", draft, body, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ret := main.JoinEmulated(emu); ret != 1 {
			t.Fatal("emulated run did not complete")
		}
		violations := sys.Violations()
		if len(violations) == 0 {
			t.Fatal("emulation logged no violations for the missing grant")
		}

		// Phase 2: feed the violations to Crowbar and read off the fix.
		logger := crowbar.NewLogger()
		logger.ImportViolations(violations)
		acc := logger.Trace().AccessedBy("draft-worker")
		fixed := draft.Clone()
		for key, a := range acc {
			if !strings.HasPrefix(key, "violation:tag:") {
				continue
			}
			var tag uint64
			if _, err := sscan(key[len("violation:tag:"):], &tag); err != nil {
				t.Fatal(err)
			}
			perm := wedge.PermRead
			if a.Write {
				perm = wedge.PermRW
			}
			if err := fixed.MemAdd(wedge.Tag(tag), perm); err != nil {
				t.Fatal(err)
			}
		}

		// Phase 3: the fixed policy runs strictly with no fault.
		strict, err := main.Create(fixed, body, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := main.Join(strict)
		if fault != nil {
			t.Fatalf("fixed policy still faults: %v", fault)
		}
		if ret != 1 {
			t.Fatal("strict run failed")
		}
		if got := main.Load64(stats); got != 2 { // emulated + strict runs
			t.Fatalf("stats counter = %d, want 2", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// sscan is a tiny strconv wrapper keeping the test dependency-light.
func sscan(s string, out *uint64) (int, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errors.New("not a number: " + s)
		}
		v = v*10 + uint64(s[i]-'0')
	}
	*out = v
	return 1, nil
}

// TestNestedCompartments: sthreads within sthreads, with monotonically
// shrinking privilege, across three generations — the "arbitrary number
// of compartments ... interconnected in whatever pattern the programmer
// specifies" claim of §8.
func TestNestedCompartments(t *testing.T) {
	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		tagA, _ := sys.TagNew(main)
		tagB, _ := sys.TagNew(main)
		a, _ := main.Smalloc(tagA, 8)
		b, _ := main.Smalloc(tagB, 8)
		main.Store64(a, 1)
		main.Store64(b, 2)

		gen1SC := wedge.NewSC()
		gen1SC.MemAdd(tagA, wedge.PermRW)
		gen1SC.MemAdd(tagB, wedge.PermRead)

		gen1, err := main.CreateNamed("gen1", gen1SC, func(s1 *wedge.Sthread, _ wedge.Addr) wedge.Addr {
			// gen2 gets only tagA, read-only.
			gen2SC := wedge.NewSC()
			gen2SC.MemAdd(tagA, wedge.PermRead)
			gen2, err := s1.CreateNamed("gen2", gen2SC, func(s2 *wedge.Sthread, _ wedge.Addr) wedge.Addr {
				if s2.Load64(a) != 1 {
					return 0
				}
				if err := s2.TryRead(b, make([]byte, 8)); err == nil {
					return 0 // tagB must be gone at this depth
				}
				// gen3 gets nothing; even tagA is out of reach.
				gen3, err := s2.CreateNamed("gen3", wedge.NewSC(), func(s3 *wedge.Sthread, _ wedge.Addr) wedge.Addr {
					if err := s3.TryRead(a, make([]byte, 8)); err == nil {
						return 0
					}
					return 1
				}, 0)
				if err != nil {
					return 0
				}
				ret, fault := s2.Join(gen3)
				if fault != nil || ret != 1 {
					return 0
				}
				return 1
			}, 0)
			if err != nil {
				return 0
			}
			ret, fault := s1.Join(gen2)
			if fault != nil || ret != 1 {
				return 0
			}
			s1.Store64(a, 11) // gen1's rw grant still works
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := main.Join(gen1)
		if fault != nil || ret != 1 {
			t.Fatalf("nested compartments failed: ret=%d fault=%v", ret, fault)
		}
		if main.Load64(a) != 11 {
			t.Fatal("gen1's write not visible through the shared tag")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCallgateChaining: a callgate's policy can itself carry callgates, so
// privileged operations can be decomposed into privilege *layers* (the
// DSA-sign-inside-auth shape).
func TestCallgateChaining(t *testing.T) {
	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		secretTag, _ := sys.TagNew(main)
		secret, _ := main.Smalloc(secretTag, 8)
		main.Store64(secret, 0xBEEF)

		// Inner gate: the only code that reads the secret.
		innerSC := wedge.NewSC()
		innerSC.MemAdd(secretTag, wedge.PermRead)
		var inner wedge.GateFunc = func(g *wedge.Sthread, _, trusted wedge.Addr) wedge.Addr {
			return wedge.Addr(g.Load64(trusted))
		}

		// Outer gate: no direct secret access, but authorized to call the
		// inner gate.
		outerSC := wedge.NewSC()
		outerSC.GateAdd(inner, innerSC, secret, "inner")
		innerSpec := outerSC.Gates[0]
		var outer wedge.GateFunc = func(g *wedge.Sthread, _, _ wedge.Addr) wedge.Addr {
			if err := g.TryRead(secret, make([]byte, 8)); err == nil {
				return 0 // outer must NOT see the secret directly
			}
			v, err := g.CallGate(innerSpec, nil, 0)
			if err != nil {
				return 0
			}
			return v + 1
		}

		workerSC := wedge.NewSC()
		workerSC.GateAdd(outer, outerSC, 0, "outer")
		outerSpec := workerSC.Gates[0]
		worker, err := main.Create(workerSC, func(w *wedge.Sthread, _ wedge.Addr) wedge.Addr {
			v, err := w.CallGate(outerSpec, nil, 0)
			if err != nil {
				return 0
			}
			return v
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := main.Join(worker)
		if fault != nil {
			t.Fatal(fault)
		}
		if ret != 0xBEF0 {
			t.Fatalf("chained gates returned %#x, want 0xBEF0", ret)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPolicyCloneDoesNotAlias: regression guard — mutating a cloned
// policy must not grant privileges through the original (a classic
// aliasing bug class in policy systems).
func TestPolicyCloneDoesNotAlias(t *testing.T) {
	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		tag, _ := sys.TagNew(main)
		buf, _ := main.Smalloc(tag, 8)

		base := wedge.NewSC()
		clone := base.Clone()
		clone.MemAdd(tag, wedge.PermRead)

		// A child created with base must still be denied.
		child, err := main.Create(base, func(s *wedge.Sthread, _ wedge.Addr) wedge.Addr {
			if err := s.TryRead(buf, make([]byte, 8)); err == nil {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := main.Join(child)
		if fault != nil || ret != 1 {
			t.Fatal("clone mutation leaked into the original policy")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = policy.InheritUID // keep the direct policy import exercised
	_ = sthread.ErrNotBooted
}
