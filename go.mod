module wedge

go 1.24

// The forward-secrecy study uses 512-bit ephemeral RSA keys
// (internal/minissl/ephemeral.go), matching the paper's ephemeral-RSA
// cost argument; Go 1.24 rejects sub-1024-bit keys by default.
godebug rsa1024min=0
