package wedge_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the four CLI tools once into a temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"cblog", "cbanalyze", "cbstatic", "wedgebench"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// TestCLIPipeline drives the paper's two-phase Crowbar workflow plus the
// cb-static extension through the real binaries: trace two workloads,
// aggregate by concatenation (§3.4), run every cbanalyze query type, lift
// to a static model and diff.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	apacheTrace := filepath.Join(dir, "apache.trace")
	sshTrace := filepath.Join(dir, "ssh.trace")

	// cblog: list and trace.
	if list := run(t, filepath.Join(bin, "cblog"), "-list"); !strings.Contains(list, "apache") ||
		!strings.Contains(list, "perlbench") {
		t.Fatalf("cblog -list missing workloads:\n%s", list)
	}
	run(t, filepath.Join(bin, "cblog"), "-workload", "apache", "-o", apacheTrace)
	run(t, filepath.Join(bin, "cblog"), "-workload", "ssh", "-o", sshTrace)

	// Aggregation by concatenation (§3.4).
	a, err := os.ReadFile(apacheTrace)
	if err != nil {
		t.Fatal(err)
	}
	s, err := os.ReadFile(sshTrace)
	if err != nil {
		t.Fatal(err)
	}
	allTrace := filepath.Join(dir, "all.trace")
	if err := os.WriteFile(allTrace, append(a, s...), 0o644); err != nil {
		t.Fatal(err)
	}

	// cbanalyze: all four query types over the aggregate.
	cba := filepath.Join(bin, "cbanalyze")
	if out := run(t, cba, "-accessed-by", "ap_process_request", allTrace); !strings.Contains(out, "server_conf") {
		t.Fatalf("query 1 lost server_conf:\n%s", out)
	}
	if out := run(t, cba, "-users-of", "global:server_conf", allTrace); !strings.Contains(out, "ap_run_handler") {
		t.Fatalf("query 2 lost ap_run_handler:\n%s", out)
	}
	if out := run(t, cba, "-writes-by", "ap_send_response", allTrace); !strings.Contains(out, "scoreboard") {
		t.Fatalf("query 3 lost scoreboard:\n%s", out)
	}
	if out := run(t, cba, "-offsets-of", "global:scoreboard", allTrace); !strings.Contains(out, "+0") {
		t.Fatalf("offset query empty:\n%s", out)
	}
	// The aggregate answers ssh questions too.
	if out := run(t, cba, "-accessed-by", "auth_password", allTrace); !strings.Contains(out, "options") {
		t.Fatalf("aggregated ssh query failed:\n%s", out)
	}

	// cbstatic: dump, extend, report the over-grant.
	cbs := filepath.Join(bin, "cbstatic")
	model := run(t, cbs, "-dump-model", apacheTrace)
	if !strings.Contains(model, "call apache_main ap_process_request") {
		t.Fatalf("lifted model missing call edge:\n%.400s", model)
	}
	extra := filepath.Join(dir, "extra.model")
	if err := os.WriteFile(extra,
		[]byte("call ap_process_request ap_die\nread ap_die global:ssl_private_key\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, cbs, "-model", extra, "-accessed-by", "ap_process_request", apacheTrace)
	if !strings.Contains(out, "global:ssl_private_key (never touched at run time)") {
		t.Fatalf("static over-grant not reported:\n%s", out)
	}
}

// TestCLIWedgebench regenerates the fast figures with reduced iteration
// counts and checks paper values appear beside measurements.
func TestCLIWedgebench(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	wb := filepath.Join(bin, "wedgebench")

	out := run(t, wb, "-fig", "7", "-iters", "40")
	for _, want := range []string{"== fig7 ==", "pthread", "recycled", "sthread", "callgate", "fork", "(paper:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 output missing %q:\n%s", want, out)
		}
	}
	out = run(t, wb, "-fig", "8", "-iters", "200")
	for _, want := range []string{"== fig8 ==", "malloc", "tag_new (reuse)", "mmap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig8 output missing %q:\n%s", want, out)
		}
	}
	out = run(t, wb, "-table", "2", "-conns", "6", "-scp", "65536")
	for _, want := range []string{"== table2 ==", "apache vanilla cached", "ssh wedge login"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 output missing %q:\n%s", want, out)
		}
	}
	out = run(t, wb, "-metrics")
	for _, want := range []string{"== metrics ==", "callgate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
	// The privsep ladder (fork-per-connection monitor vs pooled monitor
	// gates) runs through the same -pool door as the other three apps.
	out = run(t, wb, "-pool", "-app", "privsep", "-poolconns", "2", "-poollevels", "1")
	for _, want := range []string{"app=privsep", "privsep ", "pooled "} {
		if !strings.Contains(out, want) {
			t.Fatalf("privsep pool output missing %q:\n%s", want, out)
		}
	}

	// -json writes machine-readable results with the structured identity
	// fields (app, variant, conns, metric, value) CI tracks trends from.
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	run(t, wb, "-pool", "-app", "pop3", "-poolconns", "2", "-poollevels", "1,2", "-json", jsonPath)
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("-json wrote nothing: %v", err)
	}
	var rows []struct {
		Experiment string  `json:"experiment"`
		App        string  `json:"app"`
		Variant    string  `json:"variant"`
		Conns      int     `json:"conns"`
		Value      float64 `json:"value"`
		Unit       string  `json:"unit"`
		Metric     string  `json:"metric"`
	}
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, raw)
	}
	// 3 variants x 2 levels x 3 metrics (rps, p50, p99).
	if len(rows) != 18 {
		t.Fatalf("-json rows = %d, want 18:\n%s", len(rows), raw)
	}
	seenPooled := false
	for _, r := range rows {
		if r.Experiment != "figpool" || r.App != "pop3" {
			t.Fatalf("-json row %+v: wrong identity fields", r)
		}
		switch r.Metric {
		case "rps":
			if r.Unit != "req/s" {
				t.Fatalf("-json rps row %+v: wrong unit", r)
			}
		case "p50", "p99":
			if r.Unit != "ms" {
				t.Fatalf("-json latency row %+v: wrong unit", r)
			}
		default:
			t.Fatalf("-json row %+v: unknown metric", r)
		}
		if r.Conns != 1 && r.Conns != 2 {
			t.Fatalf("-json row %+v: conns outside the requested ladder", r)
		}
		if r.Variant == "pooled" {
			seenPooled = true
			if r.Value <= 0 {
				t.Fatalf("-json pooled row has non-positive value: %+v", r)
			}
		}
	}
	if !seenPooled {
		t.Fatalf("-json output missing the pooled variant:\n%s", raw)
	}
}

// TestCLIWedgebenchFlagValidation: negative sizes and counts are a usage
// error (exit 2 with a message), not silently-misbehaving inputs.
func TestCLIWedgebenchFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	wb := filepath.Join(bin, "wedgebench")

	cases := [][]string{
		{"-pool", "-poolsize", "-1"},
		{"-pool", "-poolconns", "-8"},
		{"-fig", "7", "-iters", "-10"},
		{"-table", "2", "-conns", "-3"},
		{"-table", "2", "-scp", "-1"},
		{"-pool", "-poollevels", "1,-4"},
		{"-pool", "-app", "imap"},
		// -app is validated before any experiment runs, with or without
		// -pool, and "all" does not make unknown names slip through.
		{"-app", "imap"},
		{"-pool", "-app", "ALL"},
	}
	for _, args := range cases {
		cmd := exec.Command(wb, args...)
		out, err := cmd.CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%v: expected a usage-error exit, got err=%v\n%s", args, err, out)
		}
		if code := ee.ExitCode(); code != 2 {
			t.Fatalf("%v: exit %d, want 2\n%s", args, code, out)
		}
		if !strings.Contains(string(out), "wedgebench:") {
			t.Fatalf("%v: no diagnostic printed:\n%s", args, out)
		}
	}
}
